//! Bulk (untargeted) adversaries: raw insertion/deletion pressure.

use popstab_core::params::Params;
use popstab_core::state::AgentState;
use popstab_sim::{Adversary, Alteration, RoundContext, SimRng};
use rand::Rng;

use crate::majority_round;

/// Deletes `k` uniformly random agents per round, chosen with full knowledge
/// of the state slice (though for uniform deletion the knowledge is unused).
#[derive(Debug, Clone, Copy)]
pub struct RandomDeleter {
    k: usize,
}

impl RandomDeleter {
    /// Deletes `k` agents per round.
    pub fn new(k: usize) -> Self {
        RandomDeleter { k }
    }
}

impl Adversary<AgentState> for RandomDeleter {
    fn name(&self) -> &'static str {
        "random-delete"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        sample_distinct(agents.len(), self.k, rng)
            .into_iter()
            .map(Alteration::Delete)
            .collect()
    }
}

/// A *state-oblivious* deleter: removes the `k` oldest slots (lowest
/// indices) each round, a schedule fixed in advance that never depends on
/// agent state or coin flips. This is the weak adversary model of §1.3.1
/// under which Attempt 1 is sound.
#[derive(Debug, Clone, Copy)]
pub struct ObliviousDeleter {
    k: usize,
}

impl ObliviousDeleter {
    /// Deletes `k` agents per round by fixed schedule.
    pub fn new(k: usize) -> Self {
        ObliviousDeleter { k }
    }
}

impl Adversary<AgentState> for ObliviousDeleter {
    fn name(&self) -> &'static str {
        "oblivious-delete"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        (0..self.k.min(agents.len()))
            .map(Alteration::Delete)
            .collect()
    }
}

/// Inserts `k` fresh agents per round, forged with the honest majority round
/// so they blend in immediately (the strongest pure-growth pressure: the
/// consistency check never catches them).
#[derive(Debug, Clone)]
pub struct RandomInserter {
    params: Params,
    k: usize,
}

impl RandomInserter {
    /// Inserts `k` agents per round.
    pub fn new(params: Params, k: usize) -> Self {
        RandomInserter { params, k }
    }
}

impl Adversary<AgentState> for RandomInserter {
    fn name(&self) -> &'static str {
        "random-insert"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        let round = majority_round(agents).unwrap_or(0);
        (0..self.k)
            .map(|_| Alteration::Insert(AgentState::desynced(&self.params, round)))
            .collect()
    }
}

/// Half deletions, half insertions each round: maximum turnover with zero
/// net direct pressure — every agent the protocol colored may vanish and be
/// replaced by a blank one.
#[derive(Debug, Clone)]
pub struct Churn {
    params: Params,
    k: usize,
}

impl Churn {
    /// Performs `⌊k/2⌋` deletions and `⌈k/2⌉` insertions per round.
    pub fn new(params: Params, k: usize) -> Self {
        Churn { params, k }
    }
}

impl Adversary<AgentState> for Churn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        let deletes = self.k / 2;
        let inserts = self.k - deletes;
        let round = majority_round(agents).unwrap_or(0);
        let mut out: Vec<Alteration<AgentState>> = sample_distinct(agents.len(), deletes, rng)
            .into_iter()
            .map(Alteration::Delete)
            .collect();
        out.extend(
            (0..inserts).map(|_| Alteration::Insert(AgentState::desynced(&self.params, round))),
        );
        out
    }
}

/// Samples up to `k` distinct indices from `0..len` (all of them if
/// `k ≥ len`), returned in ascending order.
pub(crate) fn sample_distinct(len: usize, k: usize, rng: &mut SimRng) -> Vec<usize> {
    if k >= len {
        return (0..len).collect();
    }
    // Floyd's algorithm: k distinct samples in O(k log k) time. The set is
    // ordered on purpose: a HashSet here would hand back the sampled
    // indices in per-process random order, and that order reaches results —
    // the engine truncates an over-budget alteration list positionally
    // (`take(adversary_budget)`), so *which* deletions survive would depend
    // on the hash seed, not on the simulation seed.
    use std::collections::BTreeSet;
    let mut chosen = BTreeSet::new();
    for j in (len - k)..len {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::rng::rng_from_seed;

    fn params() -> Params {
        Params::for_target(1024).unwrap()
    }

    fn ctx(budget: usize) -> RoundContext {
        RoundContext {
            round: 0,
            budget,
            target: 1024,
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let s = sample_distinct(50, 20, &mut rng);
            assert_eq!(s.len(), 20);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 20);
            assert!(sorted.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_distinct_saturates() {
        let mut rng = rng_from_seed(2);
        assert_eq!(sample_distinct(5, 10, &mut rng).len(), 5);
        assert!(sample_distinct(0, 3, &mut rng).is_empty());
    }

    #[test]
    fn random_deleter_emits_k_deletes() {
        let p = params();
        let agents = vec![AgentState::fresh(&p); 30];
        let mut adv = RandomDeleter::new(4);
        let out = adv.act(&ctx(4), &agents, &mut rng_from_seed(3));
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|a| a.is_delete()));
    }

    #[test]
    fn oblivious_deleter_is_schedule_based() {
        let p = params();
        let agents = vec![AgentState::fresh(&p); 10];
        let mut adv = ObliviousDeleter::new(3);
        let out = adv.act(&ctx(3), &agents, &mut rng_from_seed(4));
        assert_eq!(
            out,
            vec![
                Alteration::Delete(0),
                Alteration::Delete(1),
                Alteration::Delete(2)
            ]
        );
    }

    #[test]
    fn inserter_forges_majority_round() {
        let p = params();
        let agents = vec![AgentState::desynced(&p, 42); 10];
        let mut adv = RandomInserter::new(p.clone(), 2);
        let out = adv.act(&ctx(2), &agents, &mut rng_from_seed(5));
        assert_eq!(out.len(), 2);
        for alt in out {
            match alt {
                Alteration::Insert(s) => assert_eq!(s.round, 42),
                other => panic!("expected insert, got {other:?}"),
            }
        }
    }

    #[test]
    fn churn_mixes_deletes_and_inserts() {
        let p = params();
        let agents = vec![AgentState::fresh(&p); 20];
        let mut adv = Churn::new(p.clone(), 5);
        let out = adv.act(&ctx(5), &agents, &mut rng_from_seed(6));
        let deletes = out.iter().filter(|a| a.is_delete()).count();
        let inserts = out.iter().filter(|a| a.is_insert()).count();
        assert_eq!(deletes, 2);
        assert_eq!(inserts, 3);
    }
}
