//! Combining adversaries.

use popstab_core::state::AgentState;
use popstab_sim::{Adversary, Alteration, RoundContext, SimRng};

/// Runs several sub-strategies each round, concatenating their alterations
/// in order. The engine's budget still applies to the *total*, so earlier
/// strategies have priority; deletions from different sub-strategies may
/// target the same index, in which case the engine deduplicates.
pub struct Composite {
    name: &'static str,
    parts: Vec<Box<dyn Adversary<AgentState>>>,
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite")
            .field("name", &self.name)
            .field(
                "parts",
                &self.parts.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Composite {
    /// Combines `parts` under a display `name`.
    pub fn new(name: &'static str, parts: Vec<Box<dyn Adversary<AgentState>>>) -> Self {
        Composite { name, parts }
    }

    /// Number of sub-strategies.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether there are no sub-strategies.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Adversary<AgentState> for Composite {
    fn name(&self) -> &'static str {
        self.name
    }

    fn act(
        &mut self,
        ctx: &RoundContext,
        agents: &[AgentState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        let mut out = Vec::new();
        for part in &mut self.parts {
            out.extend(part.act(ctx, agents, rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::{ObliviousDeleter, RandomInserter};
    use popstab_core::params::Params;
    use popstab_sim::rng::rng_from_seed;

    #[test]
    fn composite_concatenates_in_order() {
        let p = Params::for_target(1024).unwrap();
        let mut adv = Composite::new(
            "combo",
            vec![
                Box::new(ObliviousDeleter::new(2)),
                Box::new(RandomInserter::new(p.clone(), 1)),
            ],
        );
        assert_eq!(adv.len(), 2);
        assert!(!adv.is_empty());
        let agents = vec![AgentState::fresh(&p); 10];
        let ctx = RoundContext {
            round: 0,
            budget: 3,
            target: 1024,
        };
        let out = adv.act(&ctx, &agents, &mut rng_from_seed(1));
        assert_eq!(out.len(), 3);
        assert!(out[0].is_delete() && out[1].is_delete() && out[2].is_insert());
        assert_eq!(adv.name(), "combo");
    }

    #[test]
    fn empty_composite_is_noop() {
        let p = Params::for_target(1024).unwrap();
        let mut adv = Composite::new("empty", vec![]);
        assert!(adv.is_empty());
        let ctx = RoundContext {
            round: 0,
            budget: 3,
            target: 1024,
        };
        assert!(adv
            .act(&ctx, &[AgentState::fresh(&p)], &mut rng_from_seed(2))
            .is_empty());
    }
}
