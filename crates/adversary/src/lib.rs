//! Adversary strategies for the population stability problem.
//!
//! The paper's adversary (§2) observes the memory contents of every agent
//! and may insert agents with arbitrary state, delete arbitrary agents, or
//! modify agent memory — up to `K` operations per round. This crate
//! implements the concrete attacks the paper identifies as most dangerous,
//! plus generic churn and the one-shot "trauma" events used by the
//! biological-motivation experiments:
//!
//! * [`RandomDeleter`] / [`RandomInserter`] / [`Churn`] — bulk pressure,
//! * [`ObliviousDeleter`] — state-blind deletion (the weak adversary model
//!   under which Attempt 1 works),
//! * [`LeaderSniper`] — deletes leaders as soon as they are chosen, the
//!   attack that kills leader-election-style protocols (§1.3.1),
//! * [`ColorFlooder`] — inserts leaders of one fixed color to bias the
//!   color distribution (footnote 9),
//! * [`ClusterPoisoner`] — deletes active agents of the minority color to
//!   amplify color imbalance at evaluation time,
//! * [`DesyncInserter`] — inserts agents with wrong round counters to
//!   confuse the epoch clock (the attack Algorithm 7 defends against),
//! * [`DeviationAmplifier`] — pushes the population away from the target,
//!   whichever direction it is already drifting,
//! * [`Trauma`] — one-shot deletion/insertion of a large fraction of the
//!   population (injury / hyper-proliferation),
//! * [`Composite`] — round-robin combination of sub-strategies.

pub mod bulk;
pub mod composite;
pub mod targeted;
pub mod throttle;
pub mod trauma;

pub use bulk::{Churn, ObliviousDeleter, RandomDeleter, RandomInserter};
pub use composite::Composite;
pub use targeted::{
    ClusterPoisoner, ColorFlooder, DesyncInserter, DeviationAmplifier, LeaderSniper,
};
pub use throttle::Throttle;
pub use trauma::{Trauma, TraumaKind};

use popstab_core::state::AgentState;

/// Returns the most common `round` value among the given agents, or `None`
/// if the slice is empty. Adversaries use this to forge agents that blend
/// in with (or deliberately clash with) the honest clock.
pub fn majority_round(agents: &[AgentState]) -> Option<u32> {
    use std::collections::BTreeMap;
    // Ordered so the tie-break is deterministic (largest round value wins):
    // the result seeds forged agents, so a HashMap's per-process random
    // tie-break would leak into trajectories.
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for a in agents {
        *counts.entry(a.round).or_insert(0) += 1;
    }
    counts.into_iter().max_by_key(|&(_, c)| c).map(|(r, _)| r)
}

/// The full attack suite at raw (per-round) budget `k`: every strategy the
/// paper's analysis must survive. At simulation scales you almost always
/// want [`throttled_suite`] instead — see [`throttle`] for why.
pub fn attack_suite(
    params: &popstab_core::params::Params,
    k: usize,
) -> Vec<Box<dyn popstab_sim::Adversary<AgentState>>> {
    use popstab_core::state::Color;
    vec![
        Box::new(RandomDeleter::new(k)),
        Box::new(RandomInserter::new(params.clone(), k)),
        Box::new(Churn::new(params.clone(), k)),
        Box::new(LeaderSniper::new(k, None)),
        Box::new(LeaderSniper::new(k, Some(Color::One))),
        Box::new(ColorFlooder::new(params.clone(), k, Color::Zero)),
        Box::new(ClusterPoisoner::new(k)),
        Box::new(DesyncInserter::new(params.clone(), k, 7)),
        Box::new(DeviationAmplifier::new(params.clone(), k)),
    ]
}

/// The attack suite metered to `k` alterations **per epoch** (the
/// scale-faithful budget; see [`throttle`]). Each strategy fires once per
/// epoch in round 1, right after leader selection — the protocol's most
/// sensitive moment.
pub fn throttled_suite(
    params: &popstab_core::params::Params,
    k: usize,
) -> Vec<Box<dyn popstab_sim::Adversary<AgentState>>> {
    let epoch = params.epoch_len();
    attack_suite(params, k)
        .into_iter()
        .map(|inner| {
            Box::new(Throttle::per_epoch(inner, epoch))
                as Box<dyn popstab_sim::Adversary<AgentState>>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_core::params::Params;

    #[test]
    fn majority_round_of_empty_is_none() {
        assert_eq!(majority_round(&[]), None);
    }

    #[test]
    fn majority_round_picks_mode() {
        let p = Params::for_target(1024).unwrap();
        let mut agents = vec![AgentState::desynced(&p, 7); 5];
        agents.push(AgentState::desynced(&p, 3));
        agents.push(AgentState::desynced(&p, 3));
        assert_eq!(majority_round(&agents), Some(7));
    }

    #[test]
    fn attack_suite_is_nonempty_and_named() {
        let p = Params::for_target(1024).unwrap();
        let suite = attack_suite(&p, 3);
        assert!(suite.len() >= 8);
        let mut names: Vec<&str> = suite.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() >= 8, "strategy names should be distinct");
    }
}
