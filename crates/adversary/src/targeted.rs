//! State-aware attacks: the adversary reads every agent's memory and strikes
//! at the protocol's structure.

use popstab_core::params::Params;
use popstab_core::state::{AgentState, Color};
use popstab_sim::{Adversary, Alteration, RoundContext, SimRng};

use crate::bulk::sample_distinct;
use crate::majority_round;

/// Deletes leaders as soon as they appear (optionally only leaders of one
/// color). This is the attack that breaks leader-election-based protocols
/// (§1.3.1, Attempt 1): here it merely nudges the leader count, because the
/// protocol selects `Θ(√N)` leaders and the budget is `N^{1/4−ε}`.
#[derive(Debug, Clone, Copy)]
pub struct LeaderSniper {
    k: usize,
    color: Option<Color>,
}

impl LeaderSniper {
    /// Deletes up to `k` leaders per round, optionally restricted to `color`.
    pub fn new(k: usize, color: Option<Color>) -> Self {
        LeaderSniper { k, color }
    }
}

impl Adversary<AgentState> for LeaderSniper {
    fn name(&self) -> &'static str {
        match self.color {
            None => "leader-sniper",
            Some(Color::Zero) => "leader-sniper-c0",
            Some(Color::One) => "leader-sniper-c1",
        }
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        agents
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_leader && a.active && self.color.is_none_or(|c| a.color == c))
            .take(self.k)
            .map(|(i, _)| Alteration::Delete(i))
            .collect()
    }
}

/// Inserts forged *leaders* of one fixed color, with the correct majority
/// round, every round of the leader-selection/early-recruitment window.
/// Each forged leader recruits a `√N` cluster of the attacker's color —
/// the paper's footnote 9 attack on the color distribution.
#[derive(Debug, Clone)]
pub struct ColorFlooder {
    params: Params,
    k: usize,
    color: Color,
    next_lineage: u64,
}

impl ColorFlooder {
    /// Inserts up to `k` forged leaders of `color` per round.
    pub fn new(params: Params, k: usize, color: Color) -> Self {
        // Forged clusters get **even** lineage tags: honest leaders draw
        // random tags forced odd (`protocol::determine_if_leader`), so the
        // two ranges are disjoint by parity.
        ColorFlooder {
            params,
            k,
            color,
            next_lineage: 1 << 62,
        }
    }
}

impl Adversary<AgentState> for ColorFlooder {
    fn name(&self) -> &'static str {
        "color-flooder"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        let round = majority_round(agents).unwrap_or(0);
        // Forged leaders only help the attacker while recruitment can still
        // complete; inserting one mid-epoch yields a partial cluster, which
        // is still adversarially useful, so insert whenever.
        (0..self.k)
            .map(|_| {
                let mut s = AgentState::leader(&self.params, self.color, self.next_lineage);
                self.next_lineage += 2;
                s.round = round.max(1);
                s.to_recruit = self.params.to_recruit_at(s.round.max(1));
                Alteration::Insert(s)
            })
            .collect()
    }
}

/// Deletes active agents of the *minority* color each round, widening the
/// color imbalance so that same-color meetings (and hence splits) become
/// more likely — an attempt to drive the population upward through the
/// variance channel rather than by raw insertion.
#[derive(Debug, Clone, Copy)]
pub struct ClusterPoisoner {
    k: usize,
}

impl ClusterPoisoner {
    /// Deletes up to `k` minority-color agents per round.
    pub fn new(k: usize) -> Self {
        ClusterPoisoner { k }
    }
}

impl Adversary<AgentState> for ClusterPoisoner {
    fn name(&self) -> &'static str {
        "cluster-poisoner"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        let c0 = agents
            .iter()
            .filter(|a| a.active && a.color == Color::Zero)
            .count();
        let c1 = agents
            .iter()
            .filter(|a| a.active && a.color == Color::One)
            .count();
        let minority = if c0 <= c1 { Color::Zero } else { Color::One };
        agents
            .iter()
            .enumerate()
            .filter(|(_, a)| a.active && a.color == minority)
            .take(self.k)
            .map(|(i, _)| Alteration::Delete(i))
            .collect()
    }
}

/// Inserts agents whose round counter is offset from the honest majority,
/// trying to build up a parasitic sub-population running a shifted epoch.
/// Algorithm 7 (`CheckRoundConsistency`) is the paper's defense; Lemma 3
/// bounds the survivors by `O(N^{1/4})`.
#[derive(Debug, Clone)]
pub struct DesyncInserter {
    params: Params,
    k: usize,
    offset: u32,
}

impl DesyncInserter {
    /// Inserts up to `k` agents per round whose clock is `offset` rounds
    /// ahead of the honest majority.
    pub fn new(params: Params, k: usize, offset: u32) -> Self {
        DesyncInserter { params, k, offset }
    }
}

impl Adversary<AgentState> for DesyncInserter {
    fn name(&self) -> &'static str {
        "desync-inserter"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[AgentState],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        let t = self.params.epoch_len();
        let round = (majority_round(agents).unwrap_or(0) + self.offset) % t;
        (0..self.k)
            .map(|_| Alteration::Insert(AgentState::desynced(&self.params, round)))
            .collect()
    }
}

/// Watches the population and pushes it further away from the target:
/// inserts blank agents whenever the population is at or above target,
/// deletes random agents whenever it is below. The hardest *directional*
/// test of the restoring drift (Lemma 8).
#[derive(Debug, Clone)]
pub struct DeviationAmplifier {
    params: Params,
    k: usize,
}

impl DeviationAmplifier {
    /// Applies up to `k` push-outward operations per round.
    pub fn new(params: Params, k: usize) -> Self {
        DeviationAmplifier { params, k }
    }
}

impl Adversary<AgentState> for DeviationAmplifier {
    fn name(&self) -> &'static str {
        "deviation-amplifier"
    }

    fn act(
        &mut self,
        ctx: &RoundContext,
        agents: &[AgentState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        let target = ctx.target as usize;
        if agents.len() >= target {
            let round = majority_round(agents).unwrap_or(0);
            (0..self.k)
                .map(|_| Alteration::Insert(AgentState::desynced(&self.params, round)))
                .collect()
        } else {
            sample_distinct(agents.len(), self.k, rng)
                .into_iter()
                .map(Alteration::Delete)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::rng::rng_from_seed;

    fn params() -> Params {
        Params::for_target(1024).unwrap()
    }

    fn ctx(budget: usize, target: u64) -> RoundContext {
        RoundContext {
            round: 0,
            budget,
            target,
        }
    }

    #[test]
    fn leader_sniper_targets_leaders_only() {
        let p = params();
        let mut agents = vec![AgentState::fresh(&p); 10];
        agents.push(AgentState::leader(&p, Color::One, 1));
        agents.push(AgentState::leader(&p, Color::Zero, 2));
        let mut adv = LeaderSniper::new(5, None);
        let out = adv.act(&ctx(5, 1024), &agents, &mut rng_from_seed(1));
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|a| matches!(a, Alteration::Delete(i) if *i >= 10)));
    }

    #[test]
    fn leader_sniper_respects_color_filter() {
        let p = params();
        let mut agents = vec![AgentState::leader(&p, Color::One, 1)];
        agents.push(AgentState::leader(&p, Color::Zero, 2));
        let mut adv = LeaderSniper::new(5, Some(Color::Zero));
        let out = adv.act(&ctx(5, 1024), &agents, &mut rng_from_seed(2));
        assert_eq!(out, vec![Alteration::Delete(1)]);
        assert_eq!(adv.name(), "leader-sniper-c0");
    }

    #[test]
    fn color_flooder_forges_leaders_at_majority_round() {
        let p = params();
        let agents = vec![AgentState::desynced(&p, 33); 8];
        let mut adv = ColorFlooder::new(p.clone(), 3, Color::One);
        let out = adv.act(&ctx(3, 1024), &agents, &mut rng_from_seed(3));
        assert_eq!(out.len(), 3);
        let mut lineages = Vec::new();
        for alt in out {
            match alt {
                Alteration::Insert(s) => {
                    assert_eq!(s.round, 33);
                    assert!(s.active && s.is_leader);
                    assert_eq!(s.color, Color::One);
                    lineages.push(s.lineage);
                }
                other => panic!("expected insert, got {other:?}"),
            }
        }
        lineages.dedup();
        assert_eq!(lineages.len(), 3, "forged lineages must be distinct");
    }

    #[test]
    fn cluster_poisoner_deletes_minority_color() {
        let p = params();
        let mut agents = vec![AgentState::active_at(&p, 5, Color::One); 6];
        agents.push(AgentState::active_at(&p, 5, Color::Zero));
        agents.push(AgentState::active_at(&p, 5, Color::Zero));
        let mut adv = ClusterPoisoner::new(10);
        let out = adv.act(&ctx(10, 1024), &agents, &mut rng_from_seed(4));
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|a| matches!(a, Alteration::Delete(i) if *i >= 6)));
    }

    #[test]
    fn desync_inserter_offsets_the_clock() {
        let p = params();
        let agents = vec![AgentState::desynced(&p, 10); 4];
        let mut adv = DesyncInserter::new(p.clone(), 2, 7);
        let out = adv.act(&ctx(2, 1024), &agents, &mut rng_from_seed(5));
        for alt in out {
            match alt {
                Alteration::Insert(s) => assert_eq!(s.round, 17),
                other => panic!("expected insert, got {other:?}"),
            }
        }
    }

    #[test]
    fn desync_offset_wraps_mod_t() {
        let p = params();
        let t = p.epoch_len();
        let agents = vec![AgentState::desynced(&p, t - 1); 4];
        let mut adv = DesyncInserter::new(p.clone(), 1, 2);
        let out = adv.act(&ctx(1, 1024), &agents, &mut rng_from_seed(6));
        match &out[0] {
            Alteration::Insert(s) => assert_eq!(s.round, 1),
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn deviation_amplifier_switches_direction() {
        let p = params();
        let agents = vec![AgentState::fresh(&p); 10];
        let mut adv = DeviationAmplifier::new(p.clone(), 2);
        // Below target: deletes.
        let out = adv.act(&ctx(2, 100), &agents, &mut rng_from_seed(7));
        assert!(out.iter().all(|a| a.is_delete()));
        // At/above target: inserts.
        let out = adv.act(&ctx(2, 10), &agents, &mut rng_from_seed(8));
        assert!(out.iter().all(|a| a.is_insert()));
    }
}
