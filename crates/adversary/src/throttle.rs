//! Rate-limiting combinator: convert per-round strategies into per-epoch
//! (or any-period) strategies.
//!
//! ### Why this exists — the laptop-scale budget translation
//!
//! The paper's Theorem 1 lets the adversary alter `K = N^{1/4−ε}` agents
//! *per round*, but its proof (Lemma 3) needs `K·T ≤ N^{1/4}/8` — satisfied
//! only when `N^ε ≥ 4·log³N`, i.e. at astronomically large `N`. At any
//! simulable scale even `K = 1` per round injects `T = Θ(log³N)` agents per
//! epoch, exceeding the protocol's entire per-epoch restoring capacity of
//! `γ(√N − 8)/8` agents (see `popstab-analysis::equilibrium`).
//!
//! The scale-faithful translation is therefore to meter budgets **per
//! epoch**: wrapping a strategy in [`Throttle`] with `period = T` gives the
//! adversary `K` alterations per epoch, and the measured tolerance curve
//! `K_max(N)` (experiment F3) then grows polynomially in `N` exactly as the
//! paper's analysis predicts — who wins, and how the crossover scales, is
//! preserved; only the unreachable asymptotic constant is dropped. See
//! DESIGN.md §4.

use popstab_sim::{Adversary, Alteration, RoundContext, SimRng};

/// Lets the inner adversary act only on rounds `≡ phase (mod period)`.
#[derive(Debug, Clone)]
pub struct Throttle<A> {
    inner: A,
    period: u64,
    phase: u64,
}

impl<A> Throttle<A> {
    /// Fires the inner strategy on rounds `≡ phase (mod period)`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `phase ≥ period`.
    pub fn new(inner: A, period: u64, phase: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(phase < period, "phase must be below period");
        Throttle {
            inner,
            period,
            phase,
        }
    }

    /// Fires once per epoch of length `epoch_len`, in round 1 of the epoch
    /// (right after leader selection — the most sensitive moment).
    pub fn per_epoch(inner: A, epoch_len: u32) -> Self {
        Throttle::new(inner, u64::from(epoch_len), 1)
    }

    /// The inner strategy.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<S, A: Adversary<S>> Adversary<S> for Throttle<A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn act(&mut self, ctx: &RoundContext, agents: &[S], rng: &mut SimRng) -> Vec<Alteration<S>> {
        if ctx.round % self.period == self.phase {
            self.inner.act(ctx, agents, rng)
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::RandomDeleter;
    use popstab_core::params::Params;
    use popstab_core::state::AgentState;
    use popstab_sim::rng::rng_from_seed;

    fn ctx(round: u64) -> RoundContext {
        RoundContext {
            round,
            budget: 10,
            target: 1024,
        }
    }

    #[test]
    fn fires_only_on_phase_rounds() {
        let p = Params::for_target(1024).unwrap();
        let agents = vec![AgentState::fresh(&p); 10];
        let mut adv = Throttle::new(RandomDeleter::new(2), 5, 1);
        let mut rng = rng_from_seed(1);
        for round in 0..20u64 {
            let out = adv.act(&ctx(round), &agents, &mut rng);
            if round % 5 == 1 {
                assert_eq!(out.len(), 2, "round {round}");
            } else {
                assert!(out.is_empty(), "round {round}");
            }
        }
    }

    #[test]
    fn per_epoch_uses_round_one() {
        let p = Params::for_target(1024).unwrap();
        let agents = vec![AgentState::fresh(&p); 10];
        let mut adv = Throttle::per_epoch(RandomDeleter::new(1), 500);
        let mut rng = rng_from_seed(2);
        assert!(adv.act(&ctx(0), &agents, &mut rng).is_empty());
        assert_eq!(adv.act(&ctx(1), &agents, &mut rng).len(), 1);
        assert!(adv.act(&ctx(2), &agents, &mut rng).is_empty());
        assert_eq!(adv.act(&ctx(501), &agents, &mut rng).len(), 1);
        assert_eq!(adv.name(), "random-delete");
    }

    #[test]
    #[should_panic(expected = "phase must be below period")]
    fn phase_out_of_range_panics() {
        Throttle::new(RandomDeleter::new(1), 3, 3);
    }
}
