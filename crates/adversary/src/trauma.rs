//! One-shot mass alteration events — the biological motivation of the paper
//! (injury, inflammation, hyper-proliferation).
//!
//! These events exceed the paper's per-round budget `K` by design: the
//! healing experiment (F6 in DESIGN.md) asks how fast the protocol *recovers*
//! from a shock larger than what its stability guarantee covers.

use popstab_core::params::Params;
use popstab_core::state::AgentState;
use popstab_sim::{Adversary, Alteration, RoundContext, SimRng};

use crate::bulk::sample_distinct;
use crate::majority_round;

/// What the trauma does to the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraumaKind {
    /// Delete a fraction of all agents (injury / cell loss).
    Injury,
    /// Insert blank agents amounting to a fraction of the population
    /// (inflammation / excessive proliferation).
    Proliferation,
}

/// A single mass event at a fixed round, inert otherwise.
#[derive(Debug, Clone)]
pub struct Trauma {
    params: Params,
    kind: TraumaKind,
    fraction: f64,
    at_round: u64,
    fired: bool,
}

impl Trauma {
    /// Schedules a `kind` event touching `fraction` of the population at
    /// global round `at_round`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn new(params: Params, kind: TraumaKind, fraction: f64, at_round: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        Trauma {
            params,
            kind,
            fraction,
            at_round,
            fired: false,
        }
    }

    /// Whether the event has already fired.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl Adversary<AgentState> for Trauma {
    fn name(&self) -> &'static str {
        match self.kind {
            TraumaKind::Injury => "trauma-injury",
            TraumaKind::Proliferation => "trauma-proliferation",
        }
    }

    fn act(
        &mut self,
        ctx: &RoundContext,
        agents: &[AgentState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<AgentState>> {
        if self.fired || ctx.round != self.at_round {
            return Vec::new();
        }
        self.fired = true;
        let count = (self.fraction * agents.len() as f64).round() as usize;
        match self.kind {
            TraumaKind::Injury => sample_distinct(agents.len(), count, rng)
                .into_iter()
                .map(Alteration::Delete)
                .collect(),
            TraumaKind::Proliferation => {
                let round = majority_round(agents).unwrap_or(0);
                (0..count)
                    .map(|_| Alteration::Insert(AgentState::desynced(&self.params, round)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::rng::rng_from_seed;

    fn params() -> Params {
        Params::for_target(1024).unwrap()
    }

    fn ctx(round: u64) -> RoundContext {
        RoundContext {
            round,
            budget: usize::MAX,
            target: 1024,
        }
    }

    #[test]
    fn injury_fires_once_at_the_scheduled_round() {
        let p = params();
        let agents = vec![AgentState::fresh(&p); 100];
        let mut adv = Trauma::new(p.clone(), TraumaKind::Injury, 0.3, 5);
        assert!(adv.act(&ctx(4), &agents, &mut rng_from_seed(1)).is_empty());
        let hit = adv.act(&ctx(5), &agents, &mut rng_from_seed(1));
        assert_eq!(hit.len(), 30);
        assert!(hit.iter().all(|a| a.is_delete()));
        assert!(adv.fired());
        assert!(adv.act(&ctx(5), &agents, &mut rng_from_seed(1)).is_empty());
        assert!(adv.act(&ctx(6), &agents, &mut rng_from_seed(1)).is_empty());
    }

    #[test]
    fn proliferation_inserts_blanks_at_majority_round() {
        let p = params();
        let agents = vec![AgentState::desynced(&p, 12); 50];
        let mut adv = Trauma::new(p.clone(), TraumaKind::Proliferation, 0.5, 0);
        let hit = adv.act(&ctx(0), &agents, &mut rng_from_seed(2));
        assert_eq!(hit.len(), 25);
        for alt in hit {
            match alt {
                Alteration::Insert(s) => {
                    assert_eq!(s.round, 12);
                    assert!(!s.active);
                }
                other => panic!("expected insert, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn rejects_bad_fraction() {
        Trauma::new(params(), TraumaKind::Injury, 1.5, 0);
    }
}
