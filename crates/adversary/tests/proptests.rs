//! Property-based tests for the attack library: every strategy emits only
//! well-formed alterations, and the throttle gate is exact.

use proptest::prelude::*;

use popstab_adversary::{
    majority_round, Churn, ClusterPoisoner, ColorFlooder, DesyncInserter, DeviationAmplifier,
    LeaderSniper, ObliviousDeleter, RandomDeleter, RandomInserter, Throttle,
};
use popstab_core::params::Params;
use popstab_core::state::{AgentState, Color};
use popstab_sim::rng::rng_from_seed;
use popstab_sim::{Adversary, Alteration, RoundContext};

fn params() -> Params {
    Params::for_target(1024).unwrap()
}

/// A mixed population: idle agents, actives of both colors, some leaders.
fn arb_population() -> impl Strategy<Value = Vec<AgentState>> {
    prop::collection::vec(
        (0u32..500, 0u8..4, any::<bool>()).prop_map(|(round, kind, color_bit)| {
            let p = params();
            let color = Color::from_bit(u8::from(color_bit));
            match kind {
                0 => AgentState::desynced(&p, round),
                1 => AgentState::active_at(&p, round.max(1), color),
                2 => AgentState::leader(&p, color, u64::from(round) + 1),
                _ => AgentState::fresh(&p),
            }
        }),
        0..120,
    )
}

fn assert_well_formed(alts: &[Alteration<AgentState>], population: usize, k: usize) {
    assert!(
        alts.len() <= k.max(population),
        "emitted {} > budget-ish {}",
        alts.len(),
        k
    );
    for alt in alts {
        match alt {
            Alteration::Delete(i) | Alteration::Modify(i, _) => {
                assert!(*i < population, "index {i} out of range {population}");
            }
            Alteration::Insert(_) => {}
        }
    }
}

proptest! {
    // Bounded (64 cases by default, PROPTEST_CASES overrides) and
    // deterministic (the shim seeds each property from its name), so
    // tier-1 stays fast and failures reproduce exactly.

    #[test]
    fn all_strategies_emit_well_formed_alterations(
        pop in arb_population(),
        k in 0usize..12,
        seed in 0u64..200,
        round in 0u64..2000,
    ) {
        let p = params();
        let ctx = RoundContext { round, budget: k, target: 1024 };
        let mut rng = rng_from_seed(seed);
        let mut strategies: Vec<Box<dyn Adversary<AgentState>>> = vec![
            Box::new(RandomDeleter::new(k)),
            Box::new(ObliviousDeleter::new(k)),
            Box::new(RandomInserter::new(p.clone(), k)),
            Box::new(Churn::new(p.clone(), k)),
            Box::new(LeaderSniper::new(k, None)),
            Box::new(LeaderSniper::new(k, Some(Color::One))),
            Box::new(ColorFlooder::new(p.clone(), k, Color::Zero)),
            Box::new(ClusterPoisoner::new(k)),
            Box::new(DesyncInserter::new(p.clone(), k, 7)),
            Box::new(DeviationAmplifier::new(p.clone(), k)),
        ];
        for strategy in &mut strategies {
            let alts = strategy.act(&ctx, &pop, &mut rng);
            assert_well_formed(&alts, pop.len(), k);
        }
    }

    #[test]
    fn deleters_never_exceed_population(
        pop in arb_population(),
        k in 0usize..200,
        seed in 0u64..100,
    ) {
        let ctx = RoundContext { round: 0, budget: k, target: 1024 };
        let mut rng = rng_from_seed(seed);
        let mut del = RandomDeleter::new(k);
        let alts = del.act(&ctx, &pop, &mut rng);
        prop_assert!(alts.len() <= pop.len());
        // All indices distinct.
        let mut idx: Vec<usize> = alts
            .iter()
            .map(|a| match a {
                Alteration::Delete(i) => *i,
                _ => unreachable!("deleter emitted non-delete"),
            })
            .collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), alts.len());
    }

    #[test]
    fn desync_inserts_differ_from_majority(pop in arb_population(), seed in 0u64..100) {
        prop_assume!(!pop.is_empty());
        let p = params();
        let ctx = RoundContext { round: 0, budget: 3, target: 1024 };
        let mut rng = rng_from_seed(seed);
        let offset = 7u32;
        let mut adv = DesyncInserter::new(p.clone(), 3, offset);
        // The mode may be tied; accept any round that is offset from *a* mode.
        let mut counts = std::collections::BTreeMap::new();
        for a in &pop {
            *counts.entry(a.round).or_insert(0usize) += 1;
        }
        let max_count = *counts.values().max().unwrap();
        let _ = majority_round(&pop);
        for alt in adv.act(&ctx, &pop, &mut rng) {
            match alt {
                Alteration::Insert(s) => {
                    let base = (s.round + p.epoch_len() - offset % p.epoch_len()) % p.epoch_len();
                    prop_assert_eq!(
                        counts.get(&base).copied().unwrap_or(0),
                        max_count,
                        "inserted round {} not offset from a modal round",
                        s.round
                    );
                }
                other => prop_assert!(false, "expected insert, got {:?}", other),
            }
        }
    }

    #[test]
    fn throttle_gates_exactly(
        period in 1u64..100,
        phase_seed in 0u64..100,
        k in 1usize..5,
        rounds in 1u64..300,
    ) {
        let phase = phase_seed % period;
        let p = params();
        let pop = vec![AgentState::fresh(&p); 20];
        let mut adv = Throttle::new(ObliviousDeleter::new(k), period, phase);
        let mut rng = rng_from_seed(1);
        let mut fired = 0u64;
        for round in 0..rounds {
            let ctx = RoundContext { round, budget: k, target: 1024 };
            let alts = adv.act(&ctx, &pop, &mut rng);
            if round % period == phase {
                prop_assert_eq!(alts.len(), k.min(20));
                fired += 1;
            } else {
                prop_assert!(alts.is_empty());
            }
        }
        let expected = if rounds > phase { (rounds - phase).div_ceil(period) } else { 0 };
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn leader_sniper_only_hits_leaders(pop in arb_population(), seed in 0u64..100) {
        let ctx = RoundContext { round: 0, budget: 64, target: 1024 };
        let mut rng = rng_from_seed(seed);
        let mut adv = LeaderSniper::new(64, None);
        for alt in adv.act(&ctx, &pop, &mut rng) {
            match alt {
                Alteration::Delete(i) => prop_assert!(pop[i].is_leader && pop[i].active),
                other => prop_assert!(false, "expected delete, got {:?}", other),
            }
        }
    }

    #[test]
    fn cluster_poisoner_only_hits_minority_color(pop in arb_population(), seed in 0u64..100) {
        let c0 = pop.iter().filter(|a| a.active && a.color == Color::Zero).count();
        let c1 = pop.iter().filter(|a| a.active && a.color == Color::One).count();
        let minority = if c0 <= c1 { Color::Zero } else { Color::One };
        let ctx = RoundContext { round: 0, budget: 8, target: 1024 };
        let mut rng = rng_from_seed(seed);
        let mut adv = ClusterPoisoner::new(8);
        for alt in adv.act(&ctx, &pop, &mut rng) {
            match alt {
                Alteration::Delete(i) => {
                    prop_assert!(pop[i].active);
                    prop_assert_eq!(pop[i].color, minority);
                }
                other => prop_assert!(false, "expected delete, got {:?}", other),
            }
        }
    }
}
