//! Chernoff–Hoeffding helpers.
//!
//! The paper's guarantees hold "with all but negligible probability"; the
//! experiments translate each into a concrete tolerance using these bounds,
//! so that a passing check corresponds to an event whose failure probability
//! under the paper's claim is quantifiably tiny.

/// Hoeffding tail for the mean of `n` samples bounded in `[lo, hi]`
/// deviating from its expectation by at least `t`:
/// `P(|X̄ − E| ≥ t) ≤ 2·exp(−2nt²/(hi−lo)²)`.
pub fn hoeffding_tail(n: u64, t: f64, lo: f64, hi: f64) -> f64 {
    assert!(hi > lo, "range must be nonempty");
    let width = hi - lo;
    (2.0 * (-2.0 * n as f64 * t * t / (width * width)).exp()).min(1.0)
}

/// The deviation `t` such that the Hoeffding tail is at most `delta`:
/// `t = (hi−lo)·sqrt(ln(2/δ)/(2n))`.
pub fn hoeffding_radius(n: u64, delta: f64, lo: f64, hi: f64) -> f64 {
    assert!(hi > lo, "range must be nonempty");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (hi - lo) * ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Multiplicative Chernoff tail for a Binomial(n, p) exceeding `(1+δ)np`:
/// `exp(−δ²np/3)` for `0 < δ ≤ 1`.
pub fn chernoff_upper_tail(n: u64, p: f64, delta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    assert!(delta > 0.0);
    let mu = n as f64 * p;
    let d = delta.min(1.0);
    (-d * d * mu / 3.0).exp().min(1.0)
}

/// Multiplicative Chernoff tail for a Binomial(n, p) falling below
/// `(1−δ)np`: `exp(−δ²np/2)`.
pub fn chernoff_lower_tail(n: u64, p: f64, delta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    assert!(delta > 0.0 && delta <= 1.0);
    let mu = n as f64 * p;
    (-delta * delta * mu / 2.0).exp().min(1.0)
}

/// Standard deviation of a Binomial(n, p) — the yardstick for "the effect of
/// the adversary is dominated by the sampling noise" arguments (§1.3.2).
pub fn binomial_sd(n: u64, p: f64) -> f64 {
    (n as f64 * p * (1.0 - p)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_tail_decreases_in_n_and_t() {
        assert!(hoeffding_tail(100, 0.1, 0.0, 1.0) > hoeffding_tail(1000, 0.1, 0.0, 1.0));
        assert!(hoeffding_tail(100, 0.1, 0.0, 1.0) > hoeffding_tail(100, 0.2, 0.0, 1.0));
        assert!(hoeffding_tail(10, 0.0, 0.0, 1.0) >= 1.0 - 1e-12);
    }

    #[test]
    fn hoeffding_radius_inverts_tail() {
        let n = 500;
        let delta = 0.01;
        let t = hoeffding_radius(n, delta, 0.0, 1.0);
        let tail = hoeffding_tail(n, t, 0.0, 1.0);
        assert!((tail - delta).abs() < 1e-9, "tail={tail}");
    }

    #[test]
    fn radius_scales_with_range() {
        let narrow = hoeffding_radius(100, 0.05, 0.0, 1.0);
        let wide = hoeffding_radius(100, 0.05, -5.0, 5.0);
        assert!((wide / narrow - 10.0).abs() < 1e-9);
    }

    #[test]
    fn chernoff_tails_shrink_with_n() {
        assert!(chernoff_upper_tail(100, 0.5, 0.2) > chernoff_upper_tail(10_000, 0.5, 0.2));
        assert!(chernoff_lower_tail(100, 0.5, 0.2) > chernoff_lower_tail(10_000, 0.5, 0.2));
    }

    #[test]
    fn binomial_sd_matches_hand_computation() {
        assert!((binomial_sd(100, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(binomial_sd(0, 0.5), 0.0);
        assert_eq!(binomial_sd(100, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "range must be nonempty")]
    fn empty_range_panics() {
        hoeffding_tail(10, 0.1, 1.0, 1.0);
    }
}
