//! Empirical measurement of the per-epoch restoring drift (Lemma 8).
//!
//! [`measure_drift`] starts engines at a chosen off-target population,
//! runs exactly one epoch, and summarizes the observed population change
//! across independent seeds. [`drift_field`] sweeps a range of starting
//! populations to trace the full restoring-force curve that the harness
//! prints as experiment F1.
//!
//! Trials are independent `(config, seed)` jobs and run through
//! [`BatchRunner`], so they fan out across cores; per-trial seeds are fixed
//! functions of the caller's seed, so the summary is bit-identical for any
//! worker count.

use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_sim::{Adversary, BatchRunner, MatchingModel, RunSpec, Scenario, SimConfig};

use crate::equilibrium::{equilibrium_population, exact_epoch_drift};
use crate::stats::Summary;

/// One point of the drift field.
#[derive(Debug, Clone, Copy)]
pub struct DriftPoint {
    /// Epoch-start population.
    pub m0: usize,
    /// Observed drift summary over trials.
    pub observed: Summary,
    /// Model prediction from [`exact_epoch_drift`] (the finite-`N` Poisson
    /// model, not the linear CLT approximation).
    pub predicted: f64,
}

/// Runs `trials` single-epoch simulations starting at population `m0` with
/// no adversary and returns the summary of `Δ = end − start`.
pub fn measure_drift(params: &Params, m0: usize, gamma: f64, trials: u32, seed: u64) -> Summary {
    measure_drift_with(
        params,
        m0,
        gamma,
        trials,
        seed,
        || popstab_sim::NoOpAdversary,
        0,
    )
}

/// As [`measure_drift`], but under an adversary built per-trial by
/// `make_adversary`, with per-round budget `k`.
///
/// Trials fan out across a [`BatchRunner::from_env`] worker pool;
/// `make_adversary` is therefore called from worker threads (hence `Fn +
/// Sync`), once per trial, on the thread that runs that trial. Per-trial
/// seeds depend only on `seed` and the trial index, so the result does not
/// depend on the worker count.
pub fn measure_drift_with<A, F>(
    params: &Params,
    m0: usize,
    gamma: f64,
    trials: u32,
    seed: u64,
    make_adversary: F,
    k: usize,
) -> Summary
where
    A: Adversary<popstab_core::state::AgentState>,
    F: Fn() -> A + Sync,
{
    let epoch = u64::from(params.epoch_len());
    let deltas = BatchRunner::from_env().run((0..trials).collect(), |_, trial: u32| {
        let cfg = SimConfig::builder()
            .seed(
                seed.wrapping_add(u64::from(trial))
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
            .matching(if gamma >= 1.0 {
                MatchingModel::Full
            } else {
                MatchingModel::ExactFraction(gamma)
            })
            .adversary_budget(k)
            .target(params.target())
            .build()
            .expect("valid drift config");
        let protocol = PopulationStability::new(params.clone());
        let scenario = Scenario::new(protocol, cfg, m0).against(make_adversary());
        let (engine, _) = scenario.run(RunSpec::rounds(epoch), &mut ());
        engine.population() as f64 - m0 as f64
    });
    let mut summary = Summary::new();
    for delta in deltas {
        summary.push(delta);
    }
    summary
}

/// Sweeps `fractions`·m* starting populations and measures the drift at
/// each, producing the restoring-force curve.
pub fn drift_field(
    params: &Params,
    fractions: &[f64],
    gamma: f64,
    trials: u32,
    seed: u64,
) -> Vec<DriftPoint> {
    let m_star = equilibrium_population(params);
    fractions
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let m0 = (f * m_star).round().max(2.0) as usize;
            let observed = measure_drift(
                params,
                m0,
                gamma,
                trials,
                seed.wrapping_add(i as u64 * 7919),
            );
            let predicted = exact_epoch_drift(params, m0 as f64, gamma);
            DriftPoint {
                m0,
                observed,
                predicted,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_restoring_empirically() {
        // Sample far from the exact equilibrium (≈ 0.78·m* at N = 1024)
        // where the per-trial signal-to-noise is highest — 0.05·m* below
        // (predicted ≈ +1.9, sd ≈ 5) and 2·m* above (predicted ≈ −4.1,
        // sd ≈ 8.3); at these trial counts the expected sign sits ≥ 4σ
        // from zero, so a fixed seed passes with wide margin. Nearer
        // fractions (the 0.3·m* the test used before stream v3) have
        // ≤ 0.15σ per trial and need thousands of trials for a stable sign.
        let params = Params::for_target(1024).unwrap();
        let m_star = equilibrium_population(&params) as usize; // 768
        let below = measure_drift(&params, (m_star as f64 * 0.05) as usize, 1.0, 160, 11);
        let above = measure_drift(&params, (m_star as f64 * 2.0) as usize, 1.0, 80, 12);
        assert!(
            below.mean() > 0.0,
            "below equilibrium should grow, got {}",
            below.mean()
        );
        assert!(
            above.mean() < 0.0,
            "above equilibrium should shrink, got {}",
            above.mean()
        );
    }

    #[test]
    fn drift_field_has_one_point_per_fraction() {
        let params = Params::for_target(1024).unwrap();
        let points = drift_field(&params, &[0.4, 1.0, 1.6], 1.0, 2, 5);
        assert_eq!(points.len(), 3);
        assert!(points[0].m0 < points[1].m0 && points[1].m0 < points[2].m0);
        for p in &points {
            assert_eq!(p.observed.count(), 2);
        }
        // Predictions bracket zero across the sweep.
        assert!(points[0].predicted > 0.0);
        assert!(points[2].predicted < 0.0);
    }
}
