//! The exact finite-size drift model and its equilibrium.
//!
//! Let `m` be the population at the start of an epoch, `s = 2^-b` the
//! no-split probability (`s = 16/√N` by default) and `γ` the matched
//! fraction. In the absence of an adversary:
//!
//! * leaders: `m/(8√N)` in expectation; every leader recruits a full
//!   cluster of `√N` (Lemma 5), so the active fraction at evaluation is
//!   `1/8`;
//! * for a matched active agent whose neighbor is active, the probability
//!   of *same color* is `p = ½ + x` with `x = 4√N/m` (same-cluster
//!   probability `8√N/m`, independent coin otherwise);
//! * its expected population contribution is
//!   `p·(1−s)·(+1) + (1−p)·(−1) = 2x − s/2 − s·x`.
//!
//! With `γ·m` matched agents, each seeing an active neighbor with
//! probability `1/8` and being active itself with probability `1/8` — i.e.
//! `γ·m/64` *evaluating* agents — the expected epoch drift is
//!
//! `E[Δ] = γ·m/64 · (2x − s/2 − s·x)`.
//!
//! Substituting `x` and the default `s = 16/√N`, the drift is exactly
//! **linear** in `m`:
//!
//! `E[Δ] = γ·(√N − 8)/8  −  γ·m/(8√N)`,
//!
//! with the unique equilibrium `m* = √N(√N − 8) = N − 8√N`
//! (in general `m* = 8√N·(2−s)/s`). Three constants every experiment in
//! this repository leans on:
//!
//! * **restoring slope** `−γ/(8√N)` per epoch → exponential approach with
//!   time constant `8√N/γ` epochs ([`time_constant_epochs`]);
//! * **maximum growth rate** `γ(√N−8)/8` agents/epoch as `m → 0`
//!   ([`max_growth_rate`]) — the hard ceiling on how much sustained
//!   deletion the protocol can absorb;
//! * shrink rate `γ·m/(8√N) − γ(√N−8)/8`, unbounded in `m`.
//!
//! This is Lemma 8's restoring force with its exact finite-`N` constants.
//! Note the paper's `Ω(√N)` drift applies at deviations `|m − m*| = Θ(N)`;
//! near the equilibrium the force is proportionally weaker.

use popstab_core::params::Params;

use crate::stats::ordered_sum;

/// The no-split probability `s = 2^-b` of `params`.
pub fn no_split_probability(params: &Params) -> f64 {
    0.5f64.powi(params.split_bias_exp() as i32)
}

/// The exact equilibrium population `m* = 8√N·(2−s)/s`.
///
/// For the paper's default `s = 16/√N` this simplifies to `N − 8√N`
/// (e.g. 768 for `N = 1024`, 63 488 for `N = 65 536`): a `Θ(1/√N)`
/// relative correction that vanishes asymptotically.
///
/// ```
/// let p = popstab_core::params::Params::for_target(1024)?;
/// assert_eq!(popstab_analysis::equilibrium::equilibrium_population(&p), 768.0);
/// # Ok::<(), popstab_core::params::ParamsError>(())
/// ```
pub fn equilibrium_population(params: &Params) -> f64 {
    let s = no_split_probability(params);
    8.0 * params.sqrt_n() as f64 * (2.0 - s) / s
}

/// Expected one-epoch population drift `E[Δ]` at epoch-start population `m`
/// with matched fraction `gamma`, per the model above.
pub fn expected_epoch_drift(params: &Params, m: f64, gamma: f64) -> f64 {
    assert!(m > 0.0, "population must be positive");
    let s = no_split_probability(params);
    let x = 4.0 * params.sqrt_n() as f64 / m;
    gamma * m / 64.0 * (2.0 * x - s / 2.0 - s * x)
}

/// The drift normalized by `√N` — the paper states the restoring force is
/// `Ω(√N)` per epoch once `|m − m*| = Ω(N)`.
pub fn normalized_drift(params: &Params, m: f64, gamma: f64) -> f64 {
    expected_epoch_drift(params, m, gamma) / (params.sqrt_n() as f64)
}

/// Maximum sustainable growth rate, `γ(√N − 8)/8` agents per epoch (for the
/// default split bias): a sustained deletion pressure above this collapses
/// the population no matter what.
pub fn max_growth_rate(params: &Params, gamma: f64) -> f64 {
    // drift(m) = γ(√N/8 − s·√N/16 − m·s/128); the limit m → 0 keeps the
    // first two terms: γ·√N·(2−s)/16, which is γ(√N−8)/8 at s = 16/√N.
    let s = no_split_probability(params);
    gamma * params.sqrt_n() as f64 * (2.0 - s) / 16.0
}

/// Exponential time constant of the approach to `m*`, in epochs: the
/// reciprocal of the restoring slope `γ·s/128` (equals `8√N/γ` for the
/// default `s = 16/√N`).
pub fn time_constant_epochs(params: &Params, gamma: f64) -> f64 {
    128.0 / (gamma * no_split_probability(params))
}

/// The **exact** finite-`N` expected epoch drift, conditioning on the
/// realized leader count.
///
/// The linear model above takes expectations through the nonlinearity — it
/// is only valid when the leader count `L ~ Binomial(m, 1/(8√N))` is large.
/// At simulable scales `λ = m/(8√N)` is single-digit (λ = 3 at `N = 1024`,
/// `m = m*`), and Jensen effects shift the equilibrium visibly. The exact
/// computation: given `L` leaders, there are `a = L·√N` active agents in
/// monochromatic clusters of `√N`; a matched active agent's partner is
/// active with probability `(a−1)/(m−1)`, same-colored with probability
/// `p(L) = (√N−1 + (a−√N)/2)/(a−1)`, and the agent's expected contribution
/// is `p·(1−s) − (1−p)`. Summing over the Poisson law of `L`:
///
/// `E[Δ] = Σ_L Pois_λ(L) · γ·a·(a−1)/(m−1) · (p(L)(2−s) − 1)`.
///
/// Validated against simulation to within sampling error (see the drift
/// experiments); the measured eval-round drift at `N = 4096, m = 3584` is
/// −1.0 vs −0.98 from this formula, where the linear model predicts 0.
pub fn exact_epoch_drift(params: &Params, m: f64, gamma: f64) -> f64 {
    assert!(m > 1.0, "population must exceed 1");
    let s = no_split_probability(params);
    let sqrt_n = params.cluster_size() as f64;
    let lambda = m * 0.5f64.powi(params.leader_bias_exp() as i32);

    // Per-leader-count drift contribution.
    let drift_given = |l: u64| -> f64 {
        if l == 0 {
            return 0.0;
        }
        let a = (l as f64 * sqrt_n).min(m); // recruitment cannot exceed m
        if a <= 1.0 {
            return 0.0;
        }
        let same_cluster = (sqrt_n - 1.0).min(a - 1.0);
        let p = (same_cluster + (a - sqrt_n).max(0.0) / 2.0) / (a - 1.0);
        let evaluating = gamma * a * (a - 1.0) / (m - 1.0);
        evaluating * (p * (2.0 - s) - 1.0)
    };

    // Poisson expectation via a mode-centered normalized recursion, which
    // avoids the e^{-λ} underflow of the textbook recursion for large λ.
    let mode = lambda.floor().max(0.0) as u64;
    let halfwidth = (12.0 * lambda.sqrt() + 12.0).ceil() as u64;
    let lo = mode.saturating_sub(halfwidth);
    let hi = mode + halfwidth;
    // Term order is part of the result: the upward sweep from the mode
    // (relative weight 1 there), then the downward sweep below it — and
    // `ordered_sum` is a fixed left fold, so both reductions accumulate in
    // exactly this sequence.
    let mut terms: Vec<(u64, f64)> = Vec::with_capacity((hi - lo + 2) as usize);
    let mut w = 1.0;
    for l in mode..=hi {
        if l > mode {
            w *= lambda / l as f64;
        }
        terms.push((l, w));
    }
    w = 1.0;
    for l in (lo..mode).rev() {
        w *= (l + 1) as f64 / lambda;
        terms.push((l, w));
    }
    let weight_sum = ordered_sum(terms.iter().map(|&(_, w)| w));
    let value_sum = ordered_sum(terms.iter().map(|&(l, w)| w * drift_given(l)));
    value_sum / weight_sum
}

/// The maximum of [`exact_epoch_drift`] over `m` (grid search), returned as
/// `(argmax_m, max_drift)`. This is a *conservative lower bound* on the
/// per-epoch deletion tolerance: deleting inactive agents mid-epoch raises
/// the active fraction (leaders were already chosen from the larger
/// population), which further boosts the split rate, so the realized
/// tolerance is typically several times higher — see experiment F3.
pub fn max_exact_drift(params: &Params, gamma: f64) -> (f64, f64) {
    let n = params.target() as f64;
    let mut best = (2.0, f64::NEG_INFINITY);
    let mut m = 2.0;
    while m <= 2.0 * n {
        let d = exact_epoch_drift(params, m, gamma);
        if d > best.1 {
            best = (m, d);
        }
        m *= 1.05;
    }
    best
}

/// The root of [`exact_epoch_drift`] in `m` — the true finite-`N`
/// equilibrium, found by bisection. At `N = 1024` this is ≈ 0.78·m*; the
/// ratio tends to 1 as `N → ∞`.
pub fn exact_equilibrium(params: &Params, gamma: f64) -> f64 {
    let mut lo = params.sqrt_n() as f64;
    let mut hi = 4.0 * params.target() as f64;
    debug_assert!(exact_epoch_drift(params, lo, gamma) > 0.0);
    debug_assert!(exact_epoch_drift(params, hi, gamma) < 0.0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if exact_epoch_drift(params, mid, gamma) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u64) -> Params {
        Params::for_target(n).unwrap()
    }

    #[test]
    fn equilibrium_is_n_minus_8_sqrt_n() {
        for log2_n in [10u32, 12, 14, 16, 20] {
            let n = 1u64 << log2_n;
            let p = params(n);
            let expected = n as f64 - 8.0 * p.sqrt_n() as f64;
            assert!(
                (equilibrium_population(&p) - expected).abs() < 1e-6,
                "N={n}: {} vs {expected}",
                equilibrium_population(&p)
            );
        }
    }

    #[test]
    fn drift_vanishes_at_equilibrium() {
        for n in [1024u64, 65536] {
            let p = params(n);
            let m_star = equilibrium_population(&p);
            let d = expected_epoch_drift(&p, m_star, 1.0);
            assert!(d.abs() < 1e-9, "drift at m* = {d}");
        }
    }

    #[test]
    fn drift_is_restoring() {
        let p = params(4096);
        let m_star = equilibrium_population(&p);
        assert!(expected_epoch_drift(&p, 0.7 * m_star, 1.0) > 0.0);
        assert!(expected_epoch_drift(&p, 1.3 * m_star, 1.0) < 0.0);
        // Monotone decreasing through the equilibrium.
        let lo = expected_epoch_drift(&p, 0.9 * m_star, 1.0);
        let mid = expected_epoch_drift(&p, m_star, 1.0);
        let hi = expected_epoch_drift(&p, 1.1 * m_star, 1.0);
        assert!(lo > mid && mid > hi);
    }

    #[test]
    fn drift_magnitude_is_order_sqrt_n_at_constant_relative_deviation() {
        // At m = c·m*, the normalized drift tends to (1−c)/8 as N grows
        // (0.025 for c = 0.8): a Θ(1) constant independent of N.
        let mut values = Vec::new();
        for log2_n in [12u32, 16, 20] {
            let p = params(1u64 << log2_n);
            let m_star = equilibrium_population(&p);
            values.push(normalized_drift(&p, 0.8 * m_star, 1.0));
        }
        for v in &values {
            assert!(
                *v > 0.01 && *v < 1.0,
                "normalized drift {v} out of Θ(1) range"
            );
        }
        // And it converges to the asymptotic constant from below/above.
        assert!(
            (values[2] - 0.025).abs() < 0.01,
            "N=2^20 drift {}",
            values[2]
        );
    }

    #[test]
    fn drift_scales_linearly_with_gamma() {
        let p = params(4096);
        let d1 = expected_epoch_drift(&p, 3000.0, 1.0);
        let d2 = expected_epoch_drift(&p, 3000.0, 0.25);
        assert!((d1 * 0.25 - d2).abs() < 1e-9);
    }

    #[test]
    fn max_growth_rate_matches_linear_model() {
        // drift(m) = max_growth − m·γ·s/128; check at two points.
        let p = params(1024);
        let g = max_growth_rate(&p, 1.0);
        assert!((g - 3.0).abs() < 1e-9, "N=1024 max growth {g}");
        let d0 = expected_epoch_drift(&p, 1.0, 1.0);
        assert!((d0 - (g - 1.0 / 256.0)).abs() < 1e-9);
        let p = params(4096);
        assert!((max_growth_rate(&p, 1.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn time_constant_is_8_sqrt_n_over_gamma() {
        let p = params(1024);
        assert!((time_constant_epochs(&p, 1.0) - 256.0).abs() < 1e-9);
        assert!((time_constant_epochs(&p, 0.5) - 512.0).abs() < 1e-9);
        let p = params(65536);
        assert!((time_constant_epochs(&p, 1.0) - 8.0 * 256.0).abs() < 1e-9);
    }

    #[test]
    fn drift_is_linear_in_m() {
        let p = params(4096);
        let d1 = expected_epoch_drift(&p, 1000.0, 1.0);
        let d2 = expected_epoch_drift(&p, 2000.0, 1.0);
        let d3 = expected_epoch_drift(&p, 3000.0, 1.0);
        assert!(((d1 - d2) - (d2 - d3)).abs() < 1e-9, "not linear");
    }

    #[test]
    fn exact_drift_matches_hand_computation_at_n4096() {
        // Hand-computed Poisson sum at m = 3584 gives ≈ −0.98 (and the
        // instrumented simulation measured −1.0 over 30 trials).
        let p = params(4096);
        let d = exact_epoch_drift(&p, 3584.0, 1.0);
        assert!((-1.6..=-0.5).contains(&d), "exact drift {d}");
    }

    #[test]
    fn exact_equilibrium_sits_below_clt_equilibrium() {
        for n in [1024u64, 4096, 16384] {
            let p = params(n);
            let m_star = equilibrium_population(&p);
            let m_exact = exact_equilibrium(&p, 1.0);
            assert!(m_exact < m_star, "N={n}: exact {m_exact} >= CLT {m_star}");
            assert!(
                m_exact > 0.5 * m_star,
                "N={n}: exact {m_exact} implausibly low"
            );
        }
    }

    #[test]
    fn exact_equilibrium_converges_to_clt_as_n_grows() {
        let ratio = |n: u64| {
            let p = params(n);
            exact_equilibrium(&p, 1.0) / equilibrium_population(&p)
        };
        let r_small = ratio(1024);
        let r_big = ratio(1 << 22);
        assert!(
            r_big > r_small,
            "ratios {r_small} -> {r_big} should increase"
        );
        assert!(r_big > 0.95, "N=2^22 ratio {r_big} should be near 1");
    }

    #[test]
    fn exact_drift_is_restoring_around_exact_equilibrium() {
        let p = params(1024);
        let m0 = exact_equilibrium(&p, 1.0);
        assert!(exact_epoch_drift(&p, 0.8 * m0, 1.0) > 0.0);
        assert!(exact_epoch_drift(&p, 1.2 * m0, 1.0) < 0.0);
        assert!(exact_epoch_drift(&p, m0, 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        expected_epoch_drift(&params(1024), 0.0, 1.0);
    }
}
