//! The variance-based population estimator (§1.3.2).
//!
//! The paper's key idea: after the coloring process, the color counts
//! `(c₀, c₁)` at evaluation satisfy `c₀ − c₁ = √N·(L₀ − L₁)` where `L_b` is
//! the number of leaders that drew color `b`. Since leader coins are fair
//! and independent, `E[(L₀−L₁)²] = L ≈ m/(8√N)`, hence
//!
//! `E[(c₀ − c₁)²] = N · m/(8√N) = m·√N/8`,
//!
//! so averaging the squared imbalance over epochs yields the estimate
//! `m̂ = 8·avg((c₀−c₁)²)/√N`. A single epoch's sample is a (scaled) χ² with
//! one degree of freedom — wildly noisy, exactly as the paper says ("each
//! individual agent's estimate is noisy") — but the average concentrates.

use popstab_core::params::Params;
use popstab_sim::RoundStats;

use crate::stats::Summary;

/// Accumulates per-epoch color imbalances and estimates the population.
#[derive(Debug, Clone)]
pub struct VarianceEstimator {
    sqrt_n: f64,
    squared_imbalance: Summary,
}

impl VarianceEstimator {
    /// Creates an estimator for the given protocol parameters.
    pub fn new(params: &Params) -> VarianceEstimator {
        VarianceEstimator {
            sqrt_n: params.sqrt_n() as f64,
            squared_imbalance: Summary::new(),
        }
    }

    /// Adds one epoch's color counts at evaluation time.
    pub fn push_counts(&mut self, color0: usize, color1: usize) {
        let d = color0 as f64 - color1 as f64;
        self.squared_imbalance.push(d * d);
    }

    /// Harvests every evaluation-round record from a metrics trace.
    pub fn push_trace(&mut self, params: &Params, rounds: &[RoundStats]) {
        let eval = params.eval_round();
        for s in rounds
            .iter()
            .filter(|s| s.majority_round == Some(eval) && s.active > 0)
        {
            self.push_counts(s.color0, s.color1);
        }
    }

    /// Number of epochs sampled so far.
    pub fn samples(&self) -> u64 {
        self.squared_imbalance.count()
    }

    /// The population estimate `m̂ = 8·avg(d²)/√N`, or `None` before any
    /// sample arrives.
    pub fn estimate(&self) -> Option<f64> {
        if self.samples() == 0 {
            None
        } else {
            Some(8.0 * self.squared_imbalance.mean() / self.sqrt_n)
        }
    }

    /// Relative standard error of the estimate. The per-epoch sample is
    /// `≈ χ²₁`-distributed, whose relative sd is `√2`, so the estimate's
    /// relative error shrinks as `√(2/k)` over `k` epochs.
    pub fn relative_stderr(&self) -> Option<f64> {
        let k = self.samples();
        if k == 0 {
            None
        } else {
            Some((2.0 / k as f64).sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_core::protocol::PopulationStability;
    use popstab_sim::{Engine, SimConfig};

    #[test]
    fn empty_estimator_returns_none() {
        let params = Params::for_target(1024).unwrap();
        let est = VarianceEstimator::new(&params);
        assert_eq!(est.estimate(), None);
        assert_eq!(est.relative_stderr(), None);
    }

    #[test]
    fn synthetic_imbalances_invert_exactly() {
        // If every epoch had imbalance d with d² = m√N/8, the estimate is m.
        let params = Params::for_target(4096).unwrap();
        let m = 3000.0;
        let d = (m * params.sqrt_n() as f64 / 8.0).sqrt();
        let mut est = VarianceEstimator::new(&params);
        est.push_counts((1000.0 + d / 2.0) as usize, 1000);
        // push_counts floors; use the exact route instead.
        let mut est = VarianceEstimator::new(&params);
        for _ in 0..10 {
            est.push_counts(d as usize, 0);
        }
        let m_hat = est.estimate().unwrap();
        let expected = 8.0 * (d as usize as f64).powi(2) / params.sqrt_n() as f64;
        assert!((m_hat - expected).abs() < 1e-9);
        assert!((expected - m).abs() / m < 0.02);
    }

    #[test]
    fn estimates_simulated_population_within_factor_two() {
        // 40 epochs of the real protocol at N=1024: relative stderr ~22%, so
        // a factor-2 check is safe while still meaningful. Runs on the
        // recording-light stride: only the evaluation-round snapshots the
        // estimator harvests are recorded (phase T−1 of the epoch stride).
        let params = Params::for_target(1024).unwrap();
        let epoch = u64::from(params.epoch_len());
        let cfg = SimConfig::builder().seed(31).target(1024).build().unwrap();
        let mut engine =
            Engine::with_population(PopulationStability::new(params.clone()), cfg, 1024);
        let mut rec = popstab_sim::MetricsRecorder::new();
        engine.run(
            popstab_sim::RunSpec::rounds(40 * epoch),
            &mut popstab_sim::RecordStats::stride(&mut rec, epoch, epoch - 1),
        );
        let mut est = VarianceEstimator::new(&params);
        est.push_trace(&params, rec.rounds());
        assert!(
            est.samples() >= 30,
            "only {} eval rounds seen",
            est.samples()
        );
        let m_hat = est.estimate().unwrap();
        let truth = 768.0; // equilibrium for N=1024
        assert!(
            m_hat > truth / 2.0 && m_hat < truth * 2.0,
            "estimate {m_hat} vs true ~{truth}"
        );
    }

    #[test]
    fn relative_stderr_shrinks() {
        let params = Params::for_target(1024).unwrap();
        let mut est = VarianceEstimator::new(&params);
        est.push_counts(10, 0);
        let e1 = est.relative_stderr().unwrap();
        for _ in 0..99 {
            est.push_counts(10, 0);
        }
        let e2 = est.relative_stderr().unwrap();
        assert!(e2 < e1 / 5.0);
    }
}
