//! Checkers for the paper's bookkeeping lemmas (§4.1–4.2) against recorded
//! metrics.
//!
//! Each check converts a lemma's asymptotic bound into a concrete tolerance
//! with an explicit constant (generous, since the paper's constants are
//! implicit) and reports the observed extremum next to it.

use popstab_core::params::Params;
use popstab_sim::RoundStats;

/// Result of checking one lemma over a run.
#[derive(Debug, Clone, Copy)]
pub struct Check {
    /// The observed extremal value.
    pub observed: f64,
    /// The tolerance derived from the lemma.
    pub bound: f64,
    /// Whether `observed ≤ bound`.
    pub pass: bool,
}

impl Check {
    fn new(observed: f64, bound: f64) -> Check {
        Check {
            observed,
            bound,
            pass: observed <= bound,
        }
    }
}

/// All lemma checks for one run.
#[derive(Debug, Clone, Copy)]
pub struct InvariantReport {
    /// Lemma 3: agents with the wrong round value never exceed
    /// `c·(1 + γ⁻¹)·N^{1/4}`.
    pub lemma3_wrong_round: Check,
    /// Lemma 4: at most half the agents are active at any time.
    pub lemma4_active_fraction: Check,
    /// Lemma 6: per-color counts at evaluation are `m/16 ± c·N^{3/4}`.
    pub lemma6_color_deviation: Check,
    /// Lemma 7: per-epoch population deviation is at most `c·√N·log N`.
    pub lemma7_epoch_deviation: Check,
}

impl InvariantReport {
    /// Whether every check passed.
    pub fn all_pass(&self) -> bool {
        self.lemma3_wrong_round.pass
            && self.lemma4_active_fraction.pass
            && self.lemma6_color_deviation.pass
            && self.lemma7_epoch_deviation.pass
    }
}

/// Multiplicative slack applied to each asymptotic bound (the paper's
/// constants are implicit; 4 is comfortable at simulation scales).
pub const SLACK: f64 = 4.0;

/// Checks Lemmas 3, 4, 6 and 7 over a recorded run.
///
/// `gamma` is the guaranteed matched fraction of the run's matching model.
/// Evaluation rounds are identified as records whose `majority_round`
/// equals `T − 1`.
pub fn check_invariants(params: &Params, gamma: f64, rounds: &[RoundStats]) -> InvariantReport {
    let n = params.target() as f64;
    let sqrt_n = params.sqrt_n() as f64;
    let quarter = n.powf(0.25);

    // Lemma 3: wrong-round agents ≤ slack·((1 + 1/γ)·N^{1/4} + I) where I is
    // the largest number of adversarial insertions in any single epoch. The
    // paper's statement assumes K·T ≤ N^{1/4}/8 (its proof's first line), a
    // regime unreachable at simulation scale; adding the observed per-epoch
    // insertion volume recovers the proof's actual mechanism: survivors are
    // at most one epoch's insertions plus the purge residue.
    let epoch = u64::from(params.epoch_len());
    let mut max_epoch_insertions = 0u64;
    let mut current = 0u64;
    let mut current_epoch = u64::MAX;
    for s in rounds {
        let e = s.round / epoch;
        if e != current_epoch {
            current_epoch = e;
            current = 0;
        }
        current += s.adv_inserted as u64;
        max_epoch_insertions = max_epoch_insertions.max(current);
    }
    let max_wrong = rounds.iter().map(|s| s.wrong_round).max().unwrap_or(0) as f64;
    let lemma3 = Check::new(
        max_wrong,
        SLACK * ((1.0 + 1.0 / gamma) * quarter + max_epoch_insertions as f64),
    );

    // Lemma 4: active fraction ≤ 1/2 (no slack: the paper's bound already
    // has plenty — the honest active fraction is ~1/8).
    let max_active = rounds
        .iter()
        .map(|s| s.active_fraction())
        .fold(0.0, f64::max);
    let lemma4 = Check::new(max_active, 0.5);

    // Lemma 6: at evaluation rounds, per-color counts within
    // m/16 ± slack·N^{3/4} (using the round's own population as m).
    let eval_round = params.eval_round();
    let mut max_color_dev = 0.0f64;
    for s in rounds
        .iter()
        .filter(|s| s.majority_round == Some(eval_round))
    {
        let m16 = s.population as f64 / 16.0;
        max_color_dev = max_color_dev
            .max((s.color0 as f64 - m16).abs())
            .max((s.color1 as f64 - m16).abs());
    }
    let lemma6 = Check::new(max_color_dev, SLACK * n.powf(0.75));

    // Lemma 7: population change between consecutive epoch boundaries is
    // at most slack·√N·log₂N.
    let epoch = u64::from(params.epoch_len());
    let mut epoch_pops: Vec<usize> = Vec::new();
    for s in rounds {
        if s.round % epoch == epoch - 1 {
            epoch_pops.push(s.population);
        }
    }
    let max_epoch_dev = epoch_pops
        .windows(2)
        .map(|w| w[1].abs_diff(w[0]))
        .max()
        .unwrap_or(0) as f64;
    let lemma7 = Check::new(max_epoch_dev, SLACK * sqrt_n * f64::from(params.log2_n()));

    InvariantReport {
        lemma3_wrong_round: lemma3,
        lemma4_active_fraction: lemma4,
        lemma6_color_deviation: lemma6,
        lemma7_epoch_deviation: lemma7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_core::protocol::PopulationStability;
    use popstab_sim::{Engine, SimConfig};

    #[test]
    fn clean_run_passes_all_invariants() {
        let params = Params::for_target(1024).unwrap();
        let epoch = u64::from(params.epoch_len());
        let cfg = SimConfig::builder().seed(21).target(1024).build().unwrap();
        let mut engine =
            Engine::with_population(PopulationStability::new(params.clone()), cfg, 1024);
        let mut rec = popstab_sim::MetricsRecorder::new();
        engine.run(
            popstab_sim::RunSpec::rounds(4 * epoch),
            &mut popstab_sim::RecordStats::new(&mut rec),
        );
        let report = check_invariants(&params, 1.0, rec.rounds());
        assert!(
            report.lemma3_wrong_round.pass,
            "{:?}",
            report.lemma3_wrong_round
        );
        assert!(
            report.lemma4_active_fraction.pass,
            "{:?}",
            report.lemma4_active_fraction
        );
        assert!(
            report.lemma6_color_deviation.pass,
            "{:?}",
            report.lemma6_color_deviation
        );
        assert!(
            report.lemma7_epoch_deviation.pass,
            "{:?}",
            report.lemma7_epoch_deviation
        );
        assert!(report.all_pass());
        // And the run actually had active agents (the checks weren't vacuous).
        assert!(rec.rounds().iter().any(|s| s.active > 0));
    }

    #[test]
    fn fabricated_violation_fails_lemma4() {
        let params = Params::for_target(1024).unwrap();
        let stats = RoundStats {
            round: 0,
            population: 100,
            active: 80,
            ..RoundStats::default()
        };
        let report = check_invariants(&params, 1.0, &[stats]);
        assert!(!report.lemma4_active_fraction.pass);
        assert!(!report.all_pass());
    }

    #[test]
    fn fabricated_wrong_round_fails_lemma3() {
        let params = Params::for_target(1024).unwrap();
        let stats = RoundStats {
            round: 0,
            population: 1024,
            wrong_round: 500,
            ..RoundStats::default()
        };
        let report = check_invariants(&params, 1.0, &[stats]);
        assert!(!report.lemma3_wrong_round.pass);
    }

    #[test]
    fn empty_run_passes_vacuously() {
        let params = Params::for_target(1024).unwrap();
        let report = check_invariants(&params, 1.0, &[]);
        assert!(report.all_pass());
    }
}
