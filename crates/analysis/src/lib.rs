//! Analysis toolkit for the population stability reproduction.
//!
//! * [`stats`] — streaming summaries (Welford), Wilson confidence intervals,
//! * [`concentration`] — Chernoff–Hoeffding bound helpers used to set the
//!   tolerances that play the role of the paper's "with overwhelming
//!   probability" statements,
//! * [`equilibrium`] — the exact finite-size equilibrium `m* = N − 8√N` of
//!   the one-epoch expected drift, and the drift model itself,
//! * [`drift`] — empirical measurement of the per-epoch restoring drift
//!   (Lemma 8),
//! * [`invariants`] — checkers for the bookkeeping lemmas (Lemmas 3–7)
//!   against recorded metrics,
//! * [`estimator`] — the variance-based population estimator implicit in
//!   §1.3.2 ("the population size is encoded in the variance of the
//!   distribution of colors"),
//! * [`report`] — fixed-width tables for the experiment harness.

pub mod concentration;
pub mod drift;
pub mod equilibrium;
pub mod estimator;
pub mod invariants;
pub mod report;
pub mod stats;

pub use equilibrium::equilibrium_population;
pub use estimator::VarianceEstimator;
pub use invariants::InvariantReport;
pub use stats::Summary;
