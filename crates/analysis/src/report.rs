//! Fixed-width tables for the experiment harness.

use std::fmt::Write as _;

/// A simple right-aligned fixed-width table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a pass/fail flag.
pub fn fmt_pass(pass: bool) -> String {
    if pass {
        "PASS".to_string()
    } else {
        "FAIL".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_pass(true), "PASS");
        assert_eq!(fmt_pass(false), "FAIL");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        assert_eq!(t.to_string(), t.render());
    }
}
