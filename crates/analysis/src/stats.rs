//! Streaming statistics and confidence intervals.

use std::fmt;

/// Streaming mean/variance via Welford's algorithm, plus min/max.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Summary {
        let mut s = Summary::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`−∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Order-fixed float sum: a plain left fold, `(((0 + x₀) + x₁) + …)`, in
/// exactly the iterator's order.
///
/// Float addition is not associative, so the *value* of a sum depends on
/// its association order; `Iterator::sum` happens to left-fold today, but
/// nothing in its contract says so, and a refactor to chunked or parallel
/// reduction would silently move every reported statistic. This helper
/// pins the order by construction — it is the reduction the
/// `float-order-determinism` lint rule points to, and swapping its body
/// for a compensated (Kahan) or pairwise scheme is a *results-affecting
/// change* that must be treated like a stream bump, not a cleanup.
pub fn ordered_sum<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}

/// Wilson score interval for a binomial proportion: the interval that
/// experiments use to report "the protocol stayed in bounds in `s` of `n`
/// trials".
///
/// Returns `(lo, hi)` at `z` standard normal quantiles (e.g. `z = 1.96` for
/// 95 %). For `n = 0` returns `(0, 1)`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
    }

    #[test]
    fn matches_naive_mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_samples(xs.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(20);
        let mut sa = Summary::from_samples(a.iter().copied());
        let sb = Summary::from_samples(b.iter().copied());
        sa.merge(&sb);
        let sall = Summary::from_samples(xs.iter().copied());
        assert_eq!(sa.count(), sall.count());
        assert!((sa.mean() - sall.mean()).abs() < 1e-9);
        assert!((sa.variance() - sall.variance()).abs() < 1e-9);
        assert_eq!(sa.min(), sall.min());
        assert_eq!(sa.max(), sall.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_samples([1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_trait() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_samples([1.0]);
        assert!(s.to_string().contains("n=1"));
    }

    #[test]
    fn ordered_sum_is_the_left_fold_bit_for_bit() {
        // A sequence chosen so association order visibly moves the result:
        // (1.0 + 1e16) loses the 1.0, so summing left-to-right gives 0.0
        // while the reversed order cancels first and keeps the 1.0.
        let xs = [1.0, 1e16, -1e16];
        let left_fold = xs.iter().copied().fold(0.0, |a, x| a + x);
        assert_eq!(
            ordered_sum(xs.iter().copied()).to_bits(),
            left_fold.to_bits()
        );
        // And the order genuinely matters for this input.
        let reversed = xs.iter().rev().copied().fold(0.0, |a, x| a + x);
        assert_ne!(left_fold.to_bits(), reversed.to_bits());
    }

    #[test]
    fn ordered_sum_of_nothing_is_zero() {
        assert_eq!(ordered_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // All successes: interval hugs 1 but stays below it.
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.9);
        assert!(hi <= 1.0);
        // No trials.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_interval(50, 100, 1.96);
        let (lo2, hi2) = wilson_interval(500, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }
}
