//! Property-based tests for the analysis toolkit: streaming statistics
//! against naive references, interval bounds, model coherence and the
//! estimator's algebra.

use proptest::prelude::*;

use popstab_analysis::concentration::{hoeffding_radius, hoeffding_tail};
use popstab_analysis::equilibrium::{
    equilibrium_population, exact_epoch_drift, exact_equilibrium, expected_epoch_drift,
};
use popstab_analysis::estimator::VarianceEstimator;
use popstab_analysis::stats::{wilson_interval, Summary};
use popstab_core::params::Params;

fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() < 2 {
        0.0
    } else {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    };
    (mean, var)
}

proptest! {
    // Bounded (64 cases by default, PROPTEST_CASES overrides) and
    // deterministic (the shim seeds each property from its name), so
    // tier-1 stays fast and failures reproduce exactly.

    #[test]
    fn summary_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_samples(xs.iter().copied());
        let (mean, var) = naive_mean_var(&xs);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    #[test]
    fn summary_merge_equals_concat(
        a in prop::collection::vec(-1e5f64..1e5, 0..100),
        b in prop::collection::vec(-1e5f64..1e5, 0..100),
    ) {
        let mut sa = Summary::from_samples(a.iter().copied());
        let sb = Summary::from_samples(b.iter().copied());
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let sall = Summary::from_samples(all.iter().copied());
        prop_assert_eq!(sa.count(), sall.count());
        if !all.is_empty() {
            prop_assert!((sa.mean() - sall.mean()).abs() <= 1e-6 * (1.0 + sall.mean().abs()));
            prop_assert!((sa.variance() - sall.variance()).abs() <= 1e-4 * (1.0 + sall.variance().abs()));
        }
    }

    #[test]
    fn wilson_interval_contains_point_estimate(successes in 0u64..1000, extra in 0u64..1000) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let (lo, hi) = wilson_interval(successes, trials, 1.96);
        let p = successes as f64 / trials as f64;
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "p={p} not in [{lo}, {hi}]");
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn hoeffding_radius_inverts_tail(n in 1u64..10_000, delta in 0.0001f64..0.5) {
        let t = hoeffding_radius(n, delta, 0.0, 1.0);
        let tail = hoeffding_tail(n, t, 0.0, 1.0);
        prop_assert!((tail - delta).abs() < 1e-6, "tail {tail} vs delta {delta}");
    }

    #[test]
    fn drift_models_agree_on_sign_far_from_equilibrium(half_log in 5u32..=10) {
        let params = Params::for_target(1u64 << (2 * half_log)).unwrap();
        let m_star = equilibrium_population(&params);
        // Far below: both positive. Far above: both negative.
        for (m, positive) in [(0.2 * m_star, true), (3.0 * m_star, false)] {
            let clt = expected_epoch_drift(&params, m, 1.0);
            let exact = exact_epoch_drift(&params, m, 1.0);
            prop_assert_eq!(clt > 0.0, positive, "CLT at m={}", m);
            prop_assert_eq!(exact > 0.0, positive, "exact at m={}", m);
        }
    }

    #[test]
    fn exact_equilibrium_is_a_root(half_log in 5u32..=9) {
        let params = Params::for_target(1u64 << (2 * half_log)).unwrap();
        let m_eq = exact_equilibrium(&params, 1.0);
        let d = exact_epoch_drift(&params, m_eq, 1.0);
        prop_assert!(d.abs() < 0.01, "drift at equilibrium {d}");
        // And it is restoring around the root.
        prop_assert!(exact_epoch_drift(&params, 0.9 * m_eq, 1.0) > 0.0);
        prop_assert!(exact_epoch_drift(&params, 1.1 * m_eq, 1.0) < 0.0);
    }

    #[test]
    fn drift_is_homogeneous_in_gamma(
        half_log in 5u32..=9,
        m_frac in 0.2f64..3.0,
        gamma in 0.1f64..=1.0,
    ) {
        let params = Params::for_target(1u64 << (2 * half_log)).unwrap();
        let m = m_frac * params.target() as f64;
        let full = exact_epoch_drift(&params, m, 1.0);
        let part = exact_epoch_drift(&params, m, gamma);
        prop_assert!((part - gamma * full).abs() < 1e-9 * (1.0 + full.abs()));
    }

    #[test]
    fn estimator_inverts_constant_imbalance(
        half_log in 5u32..=9,
        d in 1u32..4000,
        k in 1usize..50,
    ) {
        // If every epoch reports imbalance exactly d, the estimate is
        // 8d²/√N regardless of how many epochs were pushed.
        let params = Params::for_target(1u64 << (2 * half_log)).unwrap();
        let mut est = VarianceEstimator::new(&params);
        for _ in 0..k {
            est.push_counts(d as usize, 0);
        }
        let expect = 8.0 * f64::from(d) * f64::from(d) / params.sqrt_n() as f64;
        let got = est.estimate().unwrap();
        prop_assert!((got - expect).abs() < 1e-6 * (1.0 + expect));
        prop_assert_eq!(est.samples(), k as u64);
    }

    #[test]
    fn estimator_is_symmetric_in_colors(c0 in 0usize..5000, c1 in 0usize..5000) {
        let params = Params::for_target(4096).unwrap();
        let mut a = VarianceEstimator::new(&params);
        let mut b = VarianceEstimator::new(&params);
        a.push_counts(c0, c1);
        b.push_counts(c1, c0);
        prop_assert_eq!(a.estimate(), b.estimate());
    }
}
