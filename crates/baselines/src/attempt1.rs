//! Attempt 1 (§1.3.1): non-interactive leader election.
//!
//! Each epoch, every agent flips a coin that is 1 with probability `2/N`
//! ("I am a leader"), then the single bit is gossiped for `Θ(log N)` rounds.
//! At the end of the epoch every agent knows (w.h.p.) whether *any* leader
//! exists; the probability that none was drawn is `q(m) ≈ e^{−2m/N}`, which
//! decreases in the population `m` — so "no leader heard" is evidence that
//! the population is small. Each agent splits with probability `p_split`
//! when it heard no leader and dies with probability `p_die` when it heard
//! one.
//!
//! Because the heard bit is **global**, all agents act in the same
//! direction each epoch and the population multiplies by `≈ (1 + p_split)`
//! or `≈ (1 − p_die)` wholesale: the process is a multiplicative random
//! walk whose restoring force lives in `log m`. We therefore balance the
//! *logarithmic* drift at `m = N`:
//! `q(N)·ln(1+p_split) = (1 − q(N))·(−ln(1−p_die))`,
//! which keeps the stationary distribution centered on `N` (within a few
//! tens of percent — this baseline is *supposed* to be crude).
//!
//! Against an **oblivious, delete-only** adversary the statistics are
//! untouched and the protocol holds. Against the paper's adaptive adversary
//! it is hopeless with a budget of one alteration per epoch:
//!
//! * [`SignalFlooder`] inserts a single `signal = 1` agent each epoch →
//!   every epoch looks overcrowded → sustained shrinkage → collapse;
//! * [`SignalSuppressor`] deletes signal carriers the moment the coins are
//!   flipped → every epoch looks empty → sustained growth → explosion.

use popstab_sim::snapshot::{self, SnapshotError, SnapshotReader, SnapshotState};
use popstab_sim::{
    Action, Adversary, Alteration, Observable, Observation, Protocol, RoundContext, SimRng,
};
use rand::Rng;

/// Baseline protocol: non-interactive leader election.
#[derive(Debug, Clone)]
pub struct Attempt1 {
    target: u64,
    epoch_len: u32,
    p_split: f64,
    p_die: f64,
}

impl Attempt1 {
    /// Creates the baseline for target `n` with gossip epochs of
    /// `4·log₂ n + 2` rounds, `Pr[leader] = 2/n` and `p_split = 0.1`
    /// (with `p_die` set by the log-drift balance described in the module
    /// docs).
    pub fn new(n: u64) -> Attempt1 {
        assert!(n >= 8, "target must be at least 8");
        let log2n = 64 - (n - 1).leading_zeros();
        let p_split: f64 = 0.1;
        let q = (-2.0f64).exp(); // P(no leader | m = N), Pr[leader] = 2/N
        let p_die = 1.0 - (-(q / (1.0 - q)) * (1.0 + p_split).ln()).exp();
        Attempt1 {
            target: n,
            epoch_len: 4 * log2n + 2,
            p_split,
            p_die,
        }
    }

    /// The epoch length in rounds.
    pub fn epoch_len(&self) -> u32 {
        self.epoch_len
    }

    /// The population target.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Per-epoch split probability on a "no leader" verdict.
    pub fn p_split(&self) -> f64 {
        self.p_split
    }

    /// Per-epoch death probability on a "leader heard" verdict.
    pub fn p_die(&self) -> f64 {
        self.p_die
    }
}

/// Attempt-1 agent state: a clock and the one-bit signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct A1State {
    /// Round within the epoch.
    pub round: u32,
    /// Whether this agent flipped 1 or has heard a 1 this epoch.
    pub signal: bool,
}

impl Observable for A1State {
    fn observe(&self) -> Observation {
        Observation {
            round_in_epoch: Some(self.round),
            active: self.signal,
            ..Observation::default()
        }
    }
}

impl SnapshotState for A1State {
    fn state_tag() -> String {
        "attempt1".to_string()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        snapshot::write_u32(out, self.round);
        snapshot::write_bool(out, self.signal);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(A1State {
            round: r.u32()?,
            signal: r.bool()?,
        })
    }
}

impl Protocol for Attempt1 {
    type State = A1State;
    type Message = bool;

    fn initial_state(&self, _rng: &mut SimRng) -> A1State {
        A1State {
            round: 0,
            signal: false,
        }
    }

    fn message(&self, state: &A1State) -> bool {
        state.signal
    }

    fn step(&self, s: &mut A1State, incoming: Option<&bool>, rng: &mut SimRng) -> Action {
        s.round %= self.epoch_len;
        if s.round == 0 {
            // Leader coin: Pr[1] = 2/N.
            s.signal = rng.random_range(0..self.target / 2) == 0;
            s.round = 1;
            Action::Continue
        } else if s.round < self.epoch_len - 1 {
            if let Some(&heard) = incoming {
                s.signal |= heard;
            }
            s.round += 1;
            Action::Continue
        } else {
            let heard = s.signal || incoming.copied().unwrap_or(false);
            s.signal = false;
            s.round = 0;
            if heard {
                if rng.random_bool(self.p_die) {
                    Action::Die
                } else {
                    Action::Continue
                }
            } else if rng.random_bool(self.p_split) {
                Action::Split
            } else {
                Action::Continue
            }
        }
    }
}

/// Adaptive attack: inserts one `signal = 1` agent per epoch, right after
/// the coins are flipped. Cost: one alteration per epoch (`≪ K`), yet the
/// population collapses.
#[derive(Debug, Clone, Copy)]
pub struct SignalFlooder {
    epoch_len: u32,
}

impl SignalFlooder {
    /// Attacks epochs of the given length.
    pub fn new(epoch_len: u32) -> Self {
        SignalFlooder { epoch_len }
    }
}

impl Adversary<A1State> for SignalFlooder {
    fn name(&self) -> &'static str {
        "signal-flooder"
    }

    fn act(
        &mut self,
        ctx: &RoundContext,
        _agents: &[A1State],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<A1State>> {
        if ctx.round % u64::from(self.epoch_len) == 1 {
            vec![Alteration::Insert(A1State {
                round: 1,
                signal: true,
            })]
        } else {
            Vec::new()
        }
    }
}

/// Adaptive attack: reads every agent's memory and deletes signal carriers
/// right after the coin flips, so no epoch ever reports a leader and the
/// population grows without bound. Needs budget ≈ `2m/N` per round — a
/// small constant.
#[derive(Debug, Clone, Copy)]
pub struct SignalSuppressor;

impl Adversary<A1State> for SignalSuppressor {
    fn name(&self) -> &'static str {
        "signal-suppressor"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        agents: &[A1State],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<A1State>> {
        agents
            .iter()
            .enumerate()
            .filter(|(_, a)| a.signal)
            .map(|(i, _)| Alteration::Delete(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::{Engine, HaltReason, RunSpec, SimConfig};

    const N: u64 = 1024;

    fn cfg(seed: u64, budget: usize) -> SimConfig {
        SimConfig::builder()
            .seed(seed)
            .adversary_budget(budget)
            .target(N)
            .max_population(16 * N as usize)
            .build()
            .unwrap()
    }

    #[test]
    fn log_drift_balances_at_target() {
        let p = Attempt1::new(N);
        let q = (-2.0f64).exp();
        let growth = q * (1.0 + p.p_split()).ln();
        let shrink = (1.0 - q) * (1.0 - p.p_die()).ln();
        assert!(
            (growth + shrink).abs() < 1e-12,
            "log drift {}",
            growth + shrink
        );
    }

    #[test]
    fn stable_without_adversary() {
        // Crude stability: within a factor of 3 over 30 epochs. The paper's
        // point is not that Attempt 1 is tight, but that it *works* absent
        // an adaptive adversary and shatters with one.
        let proto = Attempt1::new(N);
        let epoch = u64::from(proto.epoch_len());
        let mut engine = Engine::with_population(proto, cfg(1, 0), N as usize);
        let (lo, hi) = engine
            .run(RunSpec::rounds(30 * epoch), &mut ())
            .population_range();
        assert_eq!(engine.halted(), None);
        assert!(lo > N as usize / 3, "fell to {lo}");
        assert!(hi < 3 * N as usize, "rose to {hi}");
    }

    #[test]
    fn stable_under_oblivious_deletion() {
        // One deletion every 4 rounds ≈ 1% of N per epoch: well within the
        // restoring capacity.
        let proto = Attempt1::new(N);
        let epoch = u64::from(proto.epoch_len());
        let adv = crate::ObliviousDeleter::with_period(1, 4);
        let mut engine = Engine::with_adversary(proto, adv, cfg(2, 1), N as usize);
        let (lo, hi) = engine
            .run(RunSpec::rounds(30 * epoch), &mut ())
            .population_range();
        assert_eq!(engine.halted(), None);
        assert!(lo > N as usize / 3, "fell to {lo}");
        assert!(hi < 3 * N as usize, "rose to {hi}");
    }

    #[test]
    fn signal_flooder_collapses_population() {
        let proto = Attempt1::new(N);
        let epoch = u64::from(proto.epoch_len());
        let p_die = proto.p_die();
        let adv = SignalFlooder::new(proto.epoch_len());
        let mut engine = Engine::with_adversary(proto, adv, cfg(3, 1), N as usize);
        // Enough epochs that (1−p_die)^epochs < 1/4; stop as soon as the
        // collapse threshold is crossed.
        let epochs = ((0.25f64).ln() / (1.0 - p_die).ln()).ceil() as u64 * 2;
        engine.run(
            RunSpec::until(epochs * epoch, |r| r.population_after < N as usize / 2),
            &mut (),
        );
        assert!(
            engine.population() < N as usize / 2,
            "population {} did not collapse",
            engine.population()
        );
    }

    #[test]
    fn signal_suppressor_explodes_population() {
        let proto = Attempt1::new(N);
        let epoch = u64::from(proto.epoch_len());
        let adv = SignalSuppressor;
        // Budget 64 per round is plenty to kill the ~2 leaders per epoch;
        // stop as soon as the explosion threshold is crossed.
        let mut engine = Engine::with_adversary(proto, adv, cfg(4, 64), N as usize);
        engine.run(
            RunSpec::until(60 * epoch, |r| r.population_after > 2 * N as usize),
            &mut (),
        );
        assert!(
            engine.population() > 2 * N as usize || engine.halted() == Some(HaltReason::Exploded),
            "population {} did not explode",
            engine.population()
        );
    }

    #[test]
    fn observation_maps_signal_to_active() {
        let s = A1State {
            round: 3,
            signal: true,
        };
        let obs = s.observe();
        assert!(obs.active);
        assert_eq!(obs.round_in_epoch, Some(3));
    }
}
