//! Attempt 2 (§1.3.1): independent coloring.
//!
//! Every epoch (three rounds here): each agent flips a fair color, then
//! observes the colors of its neighbors in the next two rounds and compares
//! *them*. Meeting the same agent twice forces equality, so
//! `P(equal) = ½ + 1/(2(m−1))` at population `m` — a vanishing signal about
//! `m`. With split probability `1 − 2/N` on "equal" and certain death on
//! "unequal", the expected drift is zero exactly at `m = N`… but the
//! restoring force is `Θ(1)` per epoch while the noise is `Θ(√m)`, so the
//! population behaves like a random walk and wanders `Θ(√(epochs·m))` away
//! — "even worse than the empty protocol", as the paper puts it, and the
//! reason the real protocol correlates colors through clusters instead.

use popstab_sim::snapshot::{self, SnapshotError, SnapshotReader, SnapshotState};
use popstab_sim::{Action, Observable, Observation, Protocol, SimRng};
use rand::Rng;

/// Baseline protocol: independent coloring.
#[derive(Debug, Clone, Copy)]
pub struct Attempt2 {
    target: u64,
}

/// Epoch length of [`Attempt2`] in rounds.
pub const EPOCH_LEN: u32 = 3;

impl Attempt2 {
    /// Creates the baseline for target `n`.
    pub fn new(n: u64) -> Attempt2 {
        assert!(n >= 4, "target must be at least 4");
        Attempt2 { target: n }
    }

    /// The population target.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// The split probability on equal colors, `1 − 2/N`.
    pub fn split_probability(&self) -> f64 {
        1.0 - 2.0 / self.target as f64
    }
}

/// Attempt-2 agent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct A2State {
    /// Round within the 3-round epoch.
    pub round: u32,
    /// This epoch's own color.
    pub color: bool,
    /// The first observed neighbor color, if any.
    pub first: Option<bool>,
}

impl Observable for A2State {
    fn observe(&self) -> Observation {
        Observation {
            round_in_epoch: Some(self.round),
            active: true,
            color: Some(self.color),
            ..Observation::default()
        }
    }
}

impl SnapshotState for A2State {
    fn state_tag() -> String {
        "attempt2".to_string()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        snapshot::write_u32(out, self.round);
        snapshot::write_bool(out, self.color);
        // The optional first-neighbor color as a 3-way tag.
        snapshot::write_u8(
            out,
            match self.first {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            },
        );
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(A2State {
            round: r.u32()?,
            color: r.bool()?,
            first: match r.u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                _ => return Err(r.malformed("unknown attempt2 first-color tag")),
            },
        })
    }
}

impl Protocol for Attempt2 {
    type State = A2State;
    type Message = bool;

    fn initial_state(&self, rng: &mut SimRng) -> A2State {
        A2State {
            round: 0,
            color: rng.random(),
            first: None,
        }
    }

    fn message(&self, state: &A2State) -> bool {
        state.color
    }

    fn step(&self, s: &mut A2State, incoming: Option<&bool>, rng: &mut SimRng) -> Action {
        s.round %= EPOCH_LEN;
        match s.round {
            0 => {
                s.color = rng.random();
                s.first = None;
                s.round = 1;
                Action::Continue
            }
            1 => {
                s.first = incoming.copied();
                s.round = 2;
                Action::Continue
            }
            _ => {
                let second = incoming.copied();
                let action = match (s.first, second) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            if rng.random_bool(self.split_probability()) {
                                Action::Split
                            } else {
                                Action::Continue
                            }
                        } else {
                            Action::Die
                        }
                    }
                    // Unmatched in either round: abstain this epoch.
                    _ => Action::Continue,
                };
                s.first = None;
                s.round = 0;
                action
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_analysis::stats::Summary;
    use popstab_sim::{Engine, RunSpec, SimConfig};

    const N: u64 = 1024;

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::builder()
            .seed(seed)
            .target(N)
            .max_population(64 * N as usize)
            .build()
            .unwrap()
    }

    #[test]
    fn drift_is_near_zero_at_target() {
        // One epoch from m = N: expected change ≈ 0 (weak restoring force).
        // 20 independent single-epoch trials as one batch.
        let deltas_vec =
            popstab_sim::BatchRunner::from_env().run((0..20u64).collect(), |_, seed| {
                let mut engine = Engine::with_population(Attempt2::new(N), cfg(seed), N as usize);
                engine.run(RunSpec::rounds(u64::from(EPOCH_LEN)), &mut ());
                engine.population() as f64 - N as f64
            });
        let mut deltas = Summary::new();
        for d in deltas_vec {
            deltas.push(d);
        }
        // Per-epoch sd is Θ(√N) ≈ 30; the mean over 20 trials should be small.
        assert!(deltas.mean().abs() < 25.0, "mean drift {}", deltas.mean());
    }

    #[test]
    fn population_random_walks_far_from_target() {
        // Over many epochs the deviation grows far beyond what the real
        // protocol allows; with no adversary at all. Each seed is one batch
        // job on the fast path, stopping as soon as its walk leaves the 20%
        // band (the run is existential: only the max deviation matters).
        let devs = popstab_sim::BatchRunner::from_env().run((100..104u64).collect(), |_, seed| {
            let mut engine = Engine::with_population(Attempt2::new(N), cfg(seed), N as usize);
            let mut dev = 0f64;
            engine.run(
                RunSpec::until(3000 * u64::from(EPOCH_LEN), |r| {
                    dev = dev.max((r.population_after as f64 - N as f64).abs());
                    dev > N as f64 * 0.2
                }),
                &mut (),
            );
            dev
        });
        let max_dev = devs.into_iter().fold(0f64, f64::max);
        assert!(
            max_dev > N as f64 * 0.2,
            "random walk stayed within 20% over 3000 epochs (dev={max_dev}); \
             that would contradict the paper's Attempt-2 analysis"
        );
    }

    #[test]
    fn unmatched_agents_abstain() {
        let proto = Attempt2::new(N);
        let mut rng = popstab_sim::rng::rng_from_seed(5);
        let mut s = A2State {
            round: 2,
            color: true,
            first: Some(true),
        };
        // No second observation: must continue and reset.
        assert_eq!(proto.step(&mut s, None, &mut rng), Action::Continue);
        assert_eq!(s.round, 0);
        assert_eq!(s.first, None);
    }

    #[test]
    fn unequal_observations_kill() {
        let proto = Attempt2::new(N);
        let mut rng = popstab_sim::rng::rng_from_seed(6);
        let mut s = A2State {
            round: 2,
            color: true,
            first: Some(true),
        };
        assert_eq!(proto.step(&mut s, Some(&false), &mut rng), Action::Die);
    }

    #[test]
    fn equal_observations_mostly_split() {
        let proto = Attempt2::new(N);
        let mut rng = popstab_sim::rng::rng_from_seed(7);
        let mut splits = 0;
        for _ in 0..1000 {
            let mut s = A2State {
                round: 2,
                color: false,
                first: Some(true),
            };
            if proto.step(&mut s, Some(&true), &mut rng) == Action::Split {
                splits += 1;
            }
        }
        assert!(splits > 950, "splits={splits}, want ≈ 1000·(1−2/N)");
    }
}
