//! The high-memory unique-ID protocol (§1.2).
//!
//! With memory constraints lifted, population stability against a
//! delete-only adversary is trivial: every agent draws a (w.h.p. unique)
//! random identifier, gossips the set of identifiers it has seen for
//! `Θ(log N)` rounds — full-matching epidemic spreading doubles knowledge
//! each round — and then *counts* the set to decide whether to split or
//! die. We use 64-bit identifiers instead of the paper's `N`-bit ones; at
//! simulation scales the collision probability is ≪ 2⁻⁴⁰ and the memory
//! accounting below reports what the faithful `N`-bit variant would cost.
//!
//! The protocol is **not** robust to insertions: an adversary may insert an
//! agent whose set is pre-filled with forged identifiers, inflating every
//! count it touches and triggering mass self-destruction. The test
//! `forged_ids_break_the_protocol` reproduces exactly that, motivating the
//! paper's harder problem statement.

use std::collections::BTreeSet;

use popstab_sim::snapshot::{self, SnapshotError, SnapshotReader, SnapshotState};
use popstab_sim::{Action, Observable, Observation, Protocol, SimRng};
use rand::Rng;

/// Baseline protocol: gossip unique IDs, count, correct.
#[derive(Debug, Clone, Copy)]
pub struct HighMemory {
    target: u64,
    epoch_len: u32,
}

impl HighMemory {
    /// Creates the baseline for target `n`, with epochs of `2·log₂ n + 4`
    /// rounds (enough for epidemic spreading under full matching).
    pub fn new(n: u64) -> HighMemory {
        assert!(n >= 2, "target must be at least 2");
        let log2n = 64 - (n - 1).leading_zeros();
        HighMemory {
            target: n,
            epoch_len: 2 * log2n + 4,
        }
    }

    /// The epoch length in rounds.
    pub fn epoch_len(&self) -> u32 {
        self.epoch_len
    }

    /// Memory a faithful implementation would need, in bits, for an agent
    /// currently holding `ids` identifiers: `N` bits per identifier.
    pub fn faithful_memory_bits(&self, ids: usize) -> u128 {
        ids as u128 * u128::from(self.target)
    }
}

/// High-memory agent state: own ID plus every ID heard this epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmState {
    /// Round within the epoch.
    pub round: u32,
    /// This agent's identifier for the current epoch.
    pub id: u64,
    /// All identifiers seen this epoch (including `id`).
    pub ids: BTreeSet<u64>,
}

impl Observable for HmState {
    fn observe(&self) -> Observation {
        Observation {
            round_in_epoch: Some(self.round),
            active: true,
            ..Observation::default()
        }
    }
}

impl SnapshotState for HmState {
    fn state_tag() -> String {
        "highmem".to_string()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        snapshot::write_u32(out, self.round);
        snapshot::write_u64(out, self.id);
        snapshot::write_u64(out, self.ids.len() as u64);
        // BTreeSet iterates in key order, so the encoding is canonical.
        for &id in &self.ids {
            snapshot::write_u64(out, id);
        }
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let round = r.u32()?;
        let id = r.u64()?;
        let n = r.u64()?;
        let mut ids = BTreeSet::new();
        for _ in 0..n {
            ids.insert(r.u64()?);
        }
        if ids.len() as u64 != n {
            return Err(r.malformed("duplicate highmem ids"));
        }
        Ok(HmState { round, id, ids })
    }
}

impl Protocol for HighMemory {
    type State = HmState;
    type Message = BTreeSet<u64>;

    fn initial_state(&self, rng: &mut SimRng) -> HmState {
        let id = rng.random();
        HmState {
            round: 0,
            id,
            ids: BTreeSet::from([id]),
        }
    }

    fn message(&self, state: &HmState) -> BTreeSet<u64> {
        state.ids.clone()
    }

    fn step(&self, s: &mut HmState, incoming: Option<&BTreeSet<u64>>, rng: &mut SimRng) -> Action {
        s.round %= self.epoch_len;
        if s.round == 0 {
            s.id = rng.random();
            s.ids = BTreeSet::from([s.id]);
            s.round = 1;
            return Action::Continue;
        }
        if let Some(heard) = incoming {
            s.ids.extend(heard.iter().copied());
        }
        if s.round < self.epoch_len - 1 {
            s.round += 1;
            return Action::Continue;
        }
        // Evaluation: the set size estimates the population over the epoch.
        let estimate = s.ids.len() as f64;
        let n = self.target as f64;
        s.round = 0;
        if estimate < n {
            // Split with probability (N − m̂)/m̂ so E[next] ≈ N.
            let p = ((n - estimate) / estimate).min(1.0);
            if rng.random_bool(p) {
                return Action::Split;
            }
        } else if estimate > n {
            let p = ((estimate - n) / estimate).min(0.5);
            if rng.random_bool(p) {
                return Action::Die;
            }
        }
        Action::Continue
    }
}

/// The attack that breaks the high-memory protocol: inserts one agent per
/// round whose ID set is pre-filled with `4N` forged identifiers. Every
/// agent that gossips with it believes the population is ~5N and
/// self-destructs with high probability — which is why the paper's
/// insert+delete adversary model makes even unbounded memory insufficient.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdFlooder;

impl popstab_sim::Adversary<HmState> for IdFlooder {
    fn name(&self) -> &'static str {
        "id-flooder"
    }

    fn act(
        &mut self,
        ctx: &popstab_sim::RoundContext,
        agents: &[HmState],
        _rng: &mut SimRng,
    ) -> Vec<popstab_sim::Alteration<HmState>> {
        let round = agents.first().map_or(0, |a| a.round);
        let forged: BTreeSet<u64> = (0..4 * ctx.target).map(|i| u64::MAX - i).collect();
        vec![popstab_sim::Alteration::Insert(HmState {
            round,
            id: 0,
            ids: forged,
        })]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::{Engine, RunSpec, SimConfig};

    const N: u64 = 1024;

    fn cfg(seed: u64, budget: usize) -> SimConfig {
        SimConfig::builder()
            .seed(seed)
            .adversary_budget(budget)
            .target(N)
            .max_population(16 * N as usize)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_and_stays_stable_without_adversary() {
        let proto = HighMemory::new(N);
        let epoch = u64::from(proto.epoch_len());
        let mut engine = Engine::with_population(proto, cfg(1, 0), N as usize);
        let (lo, hi) = engine
            .run(RunSpec::rounds(10 * epoch), &mut ())
            .population_range();
        assert_eq!(engine.halted(), None);
        assert!(lo > (N as usize * 9) / 10, "fell to {lo}");
        assert!(hi < (N as usize * 11) / 10, "rose to {hi}");
    }

    #[test]
    fn recovers_from_sustained_oblivious_deletion() {
        let proto = HighMemory::new(N);
        let epoch = u64::from(proto.epoch_len());
        let adv = crate::ObliviousDeleter::new(4);
        let mut engine = Engine::with_adversary(proto, adv, cfg(2, 4), N as usize);
        let (lo, _) = engine
            .run(RunSpec::rounds(10 * epoch), &mut ())
            .population_range();
        assert_eq!(engine.halted(), None);
        // 4 deletions/round × 24-round epochs ≈ 96 per epoch. The counter
        // measures the epoch-*start* population, so the steady state sits
        // about two epochs' deletions below N; 65% is a safe floor.
        assert!(lo > (N as usize * 65) / 100, "fell to {lo}");
    }

    #[test]
    fn forged_ids_break_the_protocol() {
        let proto = HighMemory::new(N);
        let epoch = u64::from(proto.epoch_len());
        let mut engine = Engine::with_adversary(proto, IdFlooder, cfg(3, 1), N as usize);
        // Collapse is existential: stop as soon as it happens.
        engine.run(
            RunSpec::until(10 * epoch, |r| r.population_after < N as usize / 2),
            &mut (),
        );
        // Every agent that hears the forged set believes the population is
        // ~5N and dies with probability ~1/2 per epoch: collapse.
        assert!(
            engine.population() < N as usize / 2,
            "population {} survived id flooding",
            engine.population()
        );
    }

    #[test]
    fn faithful_memory_cost_is_enormous() {
        let proto = HighMemory::new(N);
        // An agent knowing all N identifiers would hold N² bits — vastly
        // more than the real protocol's Θ(log log N).
        assert_eq!(
            proto.faithful_memory_bits(N as usize),
            u128::from(N) * u128::from(N)
        );
    }
}
