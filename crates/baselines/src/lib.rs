//! Baseline protocols from the paper's discussion sections.
//!
//! These exist to reproduce the paper's *negative* results — each one fails
//! in exactly the way §1.2–1.3.1 describes:
//!
//! * [`Attempt1`] — non-interactive leader election: sound against an
//!   oblivious delete-only adversary, but an adaptive adversary that inserts
//!   or deletes a **single** signal-carrying agent per epoch drives the
//!   population to collapse or explosion ([`attempt1::SignalFlooder`],
//!   [`attempt1::SignalSuppressor`]),
//! * [`Attempt2`] — independent coloring: no special states to attack, but
//!   the restoring force is `Θ(1)` per epoch, so the population random-walks
//!   away from the target *even with no adversary at all*,
//! * [`Empty`] — the do-nothing protocol (re-exported from `popstab-sim`):
//!   perfectly stable without an adversary, helpless with one,
//! * [`HighMemory`] — the unique-ID protocol of §1.2: with unbounded memory
//!   it counts the population outright and is stable under deletions, but
//!   adversarial *insertions* of forged ID sets break it — which is why the
//!   paper calls the low-memory insert+delete setting the interesting one.
//!
//! Baselines are simulation probes, not memory-faithful artifacts: they use
//! floating-point thresholds and (for [`HighMemory`]) unbounded sets, and
//! document where they exceed the paper's agent model.

pub mod attempt1;
pub mod attempt2;
pub mod highmem;

pub use attempt1::Attempt1;
pub use attempt2::Attempt2;
pub use highmem::HighMemory;
pub use popstab_sim::protocols::Inert as Empty;

use popstab_sim::{Adversary, Alteration, RoundContext, SimRng};

/// A state-blind deleter usable against any baseline: removes the first `k`
/// slots on every `period`-th round by fixed schedule (the "oblivious"
/// adversary of §1.3.1 — its actions never depend on agent state or coins).
#[derive(Debug, Clone, Copy)]
pub struct ObliviousDeleter {
    k: usize,
    period: u64,
}

impl ObliviousDeleter {
    /// Deletes `k` agents every round.
    pub fn new(k: usize) -> Self {
        ObliviousDeleter { k, period: 1 }
    }

    /// Deletes `k` agents every `period` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_period(k: usize, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        ObliviousDeleter { k, period }
    }
}

impl<S> Adversary<S> for ObliviousDeleter {
    fn name(&self) -> &'static str {
        "oblivious-delete"
    }

    fn act(&mut self, ctx: &RoundContext, agents: &[S], _rng: &mut SimRng) -> Vec<Alteration<S>> {
        if !ctx.round.is_multiple_of(self.period) {
            return Vec::new();
        }
        (0..self.k.min(agents.len()))
            .map(Alteration::Delete)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::protocols::Inert;
    use popstab_sim::{Engine, SimConfig};

    #[test]
    fn oblivious_deleter_shrinks_inert_population() {
        let cfg = SimConfig::builder()
            .seed(1)
            .adversary_budget(2)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(Inert, ObliviousDeleter::new(2), cfg, 20);
        engine.run(popstab_sim::RunSpec::rounds(5), &mut ());
        assert_eq!(engine.population(), 10);
    }
}
