//! Criterion micro-benchmarks for the struct-of-arrays hot path: the
//! lane-batched coin kernel against its scalar twin, and full engine
//! rounds on the columnar step path against the scalar `Protocol::step`
//! loop — the same opt-in (`Engine::set_columnar`) the `experiments bench`
//! workloads and the CI columnar smoke leg drive, at the two scales where
//! the layout starts to matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_sim::rng::{biased_coin, biased_coin_x8, round_key, slot_key_x8, slot_rng, LANES};
use popstab_sim::{Engine, RunSpec, SimConfig};

const SLOTS: u64 = 65_536;

fn bench_biased_coin(c: &mut Criterion) {
    // One epoch-style sweep: a biased coin for every slot of a 64k round.
    // The scalar side pays per-slot stream construction plus one finalizer
    // per draw; the `_x8` side derives eight slot keys per call and packs
    // the verdicts into a bit mask — the kernel the columnar word loops
    // consume. Same draws, same verdicts, measured per slot. At one draw
    // per coin the two forms do identical finalizer work, so on baseline
    // (non-AVX) codegen they bench close together: the `_x8` form's win
    // shows up downstream, where its packed mask feeds the word-level
    // columnar kernels without per-lane re-derivation (the `step_path`
    // group below measures that end to end).
    let mut group = c.benchmark_group("biased_coin");
    group.throughput(Throughput::Elements(SLOTS));
    let exp = 6u32;
    group.bench_function("scalar_64k", |b| {
        b.iter(|| {
            let rkey = round_key(9, 3);
            let mut heads = 0u64;
            for slot in 0..SLOTS {
                heads += u64::from(biased_coin(exp, &mut slot_rng(rkey, slot)));
            }
            heads
        })
    });
    group.bench_function("x8_64k", |b| {
        b.iter(|| {
            let rkey = round_key(9, 3);
            let mut heads = 0u64;
            for base in (0..SLOTS).step_by(LANES) {
                let keys = slot_key_x8(rkey, base);
                heads += u64::from(biased_coin_x8(exp, &keys).count_ones());
            }
            heads
        })
    });
    group.finish();
}

fn engine_at(n: u64, columnar: bool) -> Engine<PopulationStability> {
    let params = Params::for_target(n).expect("bench scale is a power of four");
    let cfg = SimConfig::builder().seed(5).target(n).build().unwrap();
    let mut engine = Engine::with_population(PopulationStability::new(params), cfg, n as usize);
    engine.set_columnar(columnar);
    engine
}

fn bench_step_paths(c: &mut Criterion) {
    // Whole engine rounds (matching + step + apply) through the driver's
    // recording-free fast path, scalar vs columnar, bit-identical
    // trajectories. Throughput is agent-rounds, so the two rows are
    // directly comparable per scale.
    let mut group = c.benchmark_group("step_path");
    group.sample_size(10);
    for n in [16_384u64, 65_536] {
        let rounds = if n == 16_384 { 40 } else { 10 };
        group.throughput(Throughput::Elements(n * rounds));
        let mut engine = engine_at(n, false);
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| engine.run(RunSpec::rounds(rounds), &mut ()))
        });
        let mut engine = engine_at(n, true);
        group.bench_with_input(BenchmarkId::new("columnar", n), &n, |b, _| {
            b.iter(|| engine.run(RunSpec::rounds(rounds), &mut ()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_biased_coin, bench_step_paths);
criterion_main!(benches);
