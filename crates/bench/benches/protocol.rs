//! Criterion micro-benchmarks for the protocol hot paths: full rounds and
//! whole epochs on the engine paths the `experiments` figures drive
//! ([`Engine::run`] serial and sharded, [`BatchRunner`] — not a bespoke
//! serial loop), the per-agent step, the biased coin and the wire codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use popstab_core::coin::toss_biased_coin;
use popstab_core::message::Message;
use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_core::state::{AgentState, Color};
use popstab_sim::batch::job_seed;
use popstab_sim::rng::rng_from_seed;
use popstab_sim::{BatchRunner, Engine, Protocol, RunSpec, SimConfig};

fn popstab_engine(n: u64, seed: u64) -> Engine<PopulationStability> {
    let params = Params::for_target(n).unwrap();
    let cfg = SimConfig::builder().seed(seed).target(n).build().unwrap();
    Engine::with_population(PopulationStability::new(params), cfg, n as usize)
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput");
    group.sample_size(10);
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    for n in [1024u64, 4096, 16384] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("run_serial", n), &n, |b, &n| {
            let mut engine = popstab_engine(n, 1);
            b.iter(|| engine.run(RunSpec::rounds(1), &mut ()));
        });
        group.bench_with_input(
            BenchmarkId::new(format!("run_sharded_{threads}t"), n),
            &n,
            |b, &n| {
                let mut engine = popstab_engine(n, 1);
                b.iter(|| engine.run(RunSpec::rounds(1).sharded(threads), &mut ()));
            },
        );
    }
    group.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch");
    group.sample_size(10);
    let n = 1024u64;
    let params = Params::for_target(n).unwrap();
    let epoch = u64::from(params.epoch_len());
    group.throughput(Throughput::Elements(epoch * n));
    group.bench_function("n1024_run_serial", |b| {
        let mut engine = popstab_engine(n, 2);
        b.iter(|| engine.run(RunSpec::rounds(epoch), &mut ()));
    });
    // One epoch per job across a BatchRunner fan-out — the shape every
    // experiment sweep (`ksweep`, `gamma`, `attack`, …) actually runs.
    let jobs = 4u64;
    group.throughput(Throughput::Elements(epoch * n * jobs));
    group.bench_function(format!("n1024_batch_{jobs}jobs"), |b| {
        let runner = BatchRunner::from_env();
        b.iter(|| {
            let engines: Vec<_> = (0..jobs)
                .map(|j| popstab_engine(n, job_seed(2, j)))
                .collect();
            runner
                .run(engines, |_, mut e| {
                    e.run(RunSpec::rounds(epoch), &mut ());
                    e.population()
                })
                .len()
        });
    });
    group.finish();
}

fn bench_agent_step(c: &mut Criterion) {
    let params = Params::for_target(4096).unwrap();
    let protocol = PopulationStability::new(params.clone());
    let mut rng = rng_from_seed(3);
    c.bench_function("agent_step_recruitment", |b| {
        let recruiter = AgentState::leader(&params, Color::One, 1);
        let msg = protocol.message(&recruiter);
        let mut idle = AgentState::fresh(&params);
        idle.round = 1;
        b.iter(|| {
            let mut s = idle;
            protocol.step(&mut s, Some(&msg), &mut rng)
        });
    });
    c.bench_function("agent_step_eval", |b| {
        let eval = params.eval_round();
        let partner = AgentState::active_at(&params, eval, Color::One);
        let msg = protocol.message(&partner);
        let me = AgentState::active_at(&params, eval, Color::One);
        b.iter(|| {
            let mut s = me;
            protocol.step(&mut s, Some(&msg), &mut rng)
        });
    });
}

fn bench_coin_and_codec(c: &mut Criterion) {
    let mut rng = rng_from_seed(4);
    c.bench_function("biased_coin_exp8", |b| {
        b.iter(|| toss_biased_coin(8, &mut rng))
    });
    let params = Params::for_target(4096).unwrap();
    let state = AgentState::leader(&params, Color::One, 7);
    let msg = Message::compose(&state, false);
    c.bench_function("wire_encode_decode", |b| {
        b.iter(|| {
            let w = msg.to_wire();
            (w.in_eval_phase(), w.active(), w.recruiting(), w.color())
        })
    });
}

criterion_group!(
    benches,
    bench_round_throughput,
    bench_epoch,
    bench_agent_step,
    bench_coin_and_codec
);
criterion_main!(benches);
