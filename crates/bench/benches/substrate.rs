//! Criterion micro-benchmarks for the simulation substrate: matching
//! sampling (serial and pool-sharded), counter-output agent RNG, metrics
//! observation, the estimator, and the engine execution paths the
//! `experiments` binary actually drives ([`Engine::run`] serial and
//! sharded, [`BatchRunner`]) — the benches exercise the same code paths as
//! the figures, not a bespoke serial loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use popstab_analysis::estimator::VarianceEstimator;
use popstab_core::params::Params;
use popstab_core::state::AgentState;
use popstab_sim::batch::{job_seed, ShardPool};
use popstab_sim::matching::{
    sample_matching, sample_matching_into, sample_matching_into_par, Matching, MatchingModel,
};
use popstab_sim::protocols::Inert;
use popstab_sim::rng::counter_seed;
use popstab_sim::{BatchRunner, Engine, RoundStats, RunSpec, SimConfig};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for m in [1024usize, 16384, 262_144] {
        group.throughput(Throughput::Elements(m as u64));
        let mut out = Matching::default();
        let mut scratch = Vec::new();
        let mut round = 0u64;
        group.bench_with_input(BenchmarkId::new("full", m), &m, |b, &m| {
            b.iter(|| {
                round += 1;
                sample_matching_into(
                    &mut out,
                    &mut scratch,
                    m,
                    MatchingModel::Full,
                    counter_seed(1, round, 0),
                );
                out.len()
            })
        });
        let mut round = 0u64;
        group.bench_with_input(BenchmarkId::new("quarter", m), &m, |b, &m| {
            b.iter(|| {
                round += 1;
                sample_matching_into(
                    &mut out,
                    &mut scratch,
                    m,
                    MatchingModel::ExactFraction(0.25),
                    counter_seed(2, round, 0),
                );
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_matching_par(c: &mut Criterion) {
    // The pool-sharded sampler at the largest scale, on every core the
    // host offers — the configuration a sharded `Engine::run` uses. On a
    // single-core host this measures the dispatch overhead over the serial
    // sampler above.
    let m = 262_144usize;
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("matching_par");
    group.throughput(Throughput::Elements(m as u64));
    let mut out = Matching::default();
    let mut scratch = Vec::new();
    let mut round = 0u64;
    group.bench_function(BenchmarkId::new(format!("full_{shards}shards"), m), |b| {
        ShardPool::with(shards, |pool| {
            b.iter(|| {
                round += 1;
                sample_matching_into_par(
                    &mut out,
                    &mut scratch,
                    m,
                    MatchingModel::Full,
                    counter_seed(3, round, 0),
                    pool,
                );
                out.len()
            })
        })
    });
    group.finish();
}

fn bench_partner_table(c: &mut Criterion) {
    let m = 16384usize;
    let matching = sample_matching(m, MatchingModel::Full, counter_seed(4, 0, 0));
    c.bench_function("partner_table_16k", |b| {
        b.iter(|| matching.partner_table(m))
    });
}

fn bench_counter_rng(c: &mut Criterion) {
    // Cost of constructing + drawing one value from the per-agent counter
    // stream for every slot of a 64k-agent round (the step phase's fixed
    // per-agent RNG overhead; since stream v3 construction is free and
    // each draw is one finalizer).
    use rand::Rng;
    c.bench_function("counter_rng_64k_slots", |b| {
        b.iter(|| {
            let rkey = popstab_sim::rng::round_key(1, 7);
            let mut acc = 0u64;
            for slot in 0..65_536u64 {
                acc ^= popstab_sim::rng::slot_rng(rkey, slot).random::<u64>();
            }
            acc
        })
    });
}

fn inert_engine(n: usize, seed: u64) -> Engine<Inert> {
    let cfg = SimConfig::builder().seed(seed).build().unwrap();
    Engine::with_population(Inert, cfg, n)
}

fn bench_engine_paths(c: &mut Criterion) {
    // The three execution paths the `experiments` binary drives, on the
    // substrate alone (Inert protocol — pure engine overhead, no protocol
    // logic): the recording-free serial fast path, the intra-round sharded
    // path, and a BatchRunner fan-out of independent engines.
    let n = 16384usize;
    let rounds = 20u64;
    let mut group = c.benchmark_group("engine_paths");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64 * rounds));

    let mut engine = inert_engine(n, 1);
    group.bench_function("run_serial_16k", |b| {
        b.iter(|| engine.run(RunSpec::rounds(rounds), &mut ()))
    });

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut engine = inert_engine(n, 2);
    group.bench_function(format!("run_sharded_16k_{threads}t"), |b| {
        b.iter(|| engine.run(RunSpec::rounds(rounds).sharded(threads), &mut ()))
    });

    let jobs = 4u64;
    let runner = BatchRunner::from_env();
    group.bench_function(format!("batch_runner_16k_{jobs}jobs"), |b| {
        b.iter(|| {
            let engines: Vec<_> = (0..jobs).map(|j| inert_engine(n, job_seed(3, j))).collect();
            runner
                .run(engines, |_, mut e| {
                    e.run(RunSpec::rounds(rounds), &mut ());
                    e.population()
                })
                .len()
        })
    });
    group.finish();
}

fn bench_observe(c: &mut Criterion) {
    let params = Params::for_target(4096).unwrap();
    let agents: Vec<AgentState> = (0..4096)
        .map(|i| {
            if i % 8 == 0 {
                AgentState::active_at(&params, 5, popstab_core::state::Color::One)
            } else {
                AgentState::fresh(&params)
            }
        })
        .collect();
    c.bench_function("round_stats_observe_4k", |b| {
        b.iter(|| RoundStats::observe(0, &agents))
    });
}

fn bench_estimator(c: &mut Criterion) {
    let params = Params::for_target(4096).unwrap();
    c.bench_function("variance_estimator_100_epochs", |b| {
        b.iter(|| {
            let mut est = VarianceEstimator::new(&params);
            for i in 0..100u64 {
                est.push_counts(250 + (i % 17) as usize, 250);
            }
            est.estimate()
        })
    });
}

criterion_group!(
    benches,
    bench_matching,
    bench_matching_par,
    bench_partner_table,
    bench_counter_rng,
    bench_engine_paths,
    bench_observe,
    bench_estimator
);
criterion_main!(benches);
