//! Criterion micro-benchmarks for the simulation substrate: matching
//! sampling, partner tables, metrics observation and the estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use popstab_analysis::estimator::VarianceEstimator;
use popstab_core::params::Params;
use popstab_core::state::AgentState;
use popstab_sim::matching::{sample_matching, MatchingModel};
use popstab_sim::rng::rng_from_seed;
use popstab_sim::RoundStats;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for m in [1024usize, 16384, 262_144] {
        group.throughput(Throughput::Elements(m as u64));
        let mut rng = rng_from_seed(1);
        group.bench_with_input(BenchmarkId::new("full", m), &m, |b, &m| {
            b.iter(|| sample_matching(m, MatchingModel::Full, &mut rng))
        });
        let mut rng = rng_from_seed(2);
        group.bench_with_input(BenchmarkId::new("quarter", m), &m, |b, &m| {
            b.iter(|| sample_matching(m, MatchingModel::ExactFraction(0.25), &mut rng))
        });
    }
    group.finish();
}

fn bench_partner_table(c: &mut Criterion) {
    let m = 16384usize;
    let mut rng = rng_from_seed(3);
    let matching = sample_matching(m, MatchingModel::Full, &mut rng);
    c.bench_function("partner_table_16k", |b| {
        b.iter(|| matching.partner_table(m))
    });
}

fn bench_counter_rng(c: &mut Criterion) {
    // Cost of constructing + drawing one value from the per-agent counter
    // stream for every slot of a 64k-agent round (the step phase's fixed
    // per-agent RNG overhead).
    use rand::Rng;
    c.bench_function("counter_rng_64k_slots", |b| {
        b.iter(|| {
            let rkey = popstab_sim::rng::round_key(1, 7);
            let mut acc = 0u64;
            for slot in 0..65_536u64 {
                acc ^= popstab_sim::rng::slot_rng(rkey, slot).random::<u64>();
            }
            acc
        })
    });
}

fn bench_observe(c: &mut Criterion) {
    let params = Params::for_target(4096).unwrap();
    let agents: Vec<AgentState> = (0..4096)
        .map(|i| {
            if i % 8 == 0 {
                AgentState::active_at(&params, 5, popstab_core::state::Color::One)
            } else {
                AgentState::fresh(&params)
            }
        })
        .collect();
    c.bench_function("round_stats_observe_4k", |b| {
        b.iter(|| RoundStats::observe(0, &agents))
    });
}

fn bench_estimator(c: &mut Criterion) {
    let params = Params::for_target(4096).unwrap();
    c.bench_function("variance_estimator_100_epochs", |b| {
        b.iter(|| {
            let mut est = VarianceEstimator::new(&params);
            for i in 0..100u64 {
                est.push_counts(250 + (i % 17) as usize, 250);
            }
            est.estimate()
        })
    });
}

criterion_group!(
    benches,
    bench_matching,
    bench_partner_table,
    bench_counter_rng,
    bench_observe,
    bench_estimator
);
criterion_main!(benches);
