//! Experiment harness CLI.
//!
//! ```sh
//! experiments [--quick] [--jobs N] [--round-threads N] [--n LIST] <id>...
//! experiments all
//! experiments --list
//! experiments scenario <name>...
//! experiments snapshot <name> --at <round> -o <file>
//! experiments resume <file> [--rounds N] [--trace]
//! experiments run-recoverable <name> --rounds N [--every K] [--keep M]
//!             [--checkpoints BASE] [--kill-at R] [--trace]
//! ```
//!
//! Ids (see DESIGN.md §4): `stability` (T1), `lemmas` (T2–T6), `drift`
//! (F1), `attack` (F2), `ksweep` (F3), `baselines` (F4 + T8), `gamma`
//! (F5), `accounting` (T7), `healing` (F6), `estimator` (F7),
//! `equilibrium` (F7b), `bench` (B1 → `BENCH_engine.json`).
//!
//! `--list` prints the named scenario registry (protocol, adversary,
//! config summary) and `scenario <name>...` runs registry entries by name.
//!
//! `--jobs N` caps the worker count of every `BatchRunner` trial fan-out
//! (default: `POPSTAB_JOBS` or the machine's available parallelism).
//! `--round-threads N` shards the step phase *inside* every protocol round
//! across N workers (default: `POPSTAB_ROUND_THREADS` or serial rounds).
//! By the determinism contracts the figures are identical for every value
//! of both flags — CI diffs `--round-threads 1` against `--round-threads 4`
//! to prove it.
//!
//! `--n LIST` (comma-separated population targets, each a power of four
//! ≥ 1024) overrides the `bench` experiment's scale plan — e.g.
//! `experiments --n 1048576,4194304 bench` for a large-N-only sweep.
//! Other experiments ignore it.
//!
//! `--columnar` (or `POPSTAB_COLUMNAR=1`) opts every scenario/snapshot/
//! resume engine into the columnar (struct-of-arrays) step path. Also a
//! pure performance knob: the columnar kernels replay the scalar
//! trajectory bit-for-bit, which the CI columnar smoke leg diffs at
//! `N = 2^20` to prove.
//!
//! `snapshot <name> --at R -o FILE` runs registry entry `<name>` to round
//! `R` and writes the engine state as a versioned snapshot; `resume FILE
//! --rounds N` restores it (rebuilding protocol and adversary from the
//! entry the snapshot is labeled with) and runs `N` more rounds. By the
//! snapshot contract a resumed run is bit-identical to the uninterrupted
//! one, which the CI snapshot-determinism leg enforces via `--trace`
//! (golden-format per-round lines on stdout, nothing else).
//!
//! `run-recoverable <name> --rounds N` is the crash-safe driver: it
//! auto-checkpoints registry entry `<name>` every `--every K` rounds (default
//! 10) into a rotation of `--keep M` files (default 3) under `--checkpoints
//! BASE` (default `<name>.ckpt`), and on startup scans that rotation for the
//! latest *valid* checkpoint — corrupt or truncated files are reported to
//! stderr and skipped — resuming from it instead of starting over. A run
//! that crashes mid-way (simulate one with `--kill-at R`, which exits with
//! code 42 after round `R`) and is re-invoked therefore finishes with the
//! exact trace suffix of an uninterrupted run, which the CI fault-injection
//! leg diffs byte for byte.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use popstab_bench::experiments;
use popstab_sim::{Checkpoint, OnRound, RoundReport, RunSpec, Snapshot, Tee, Threads};

/// (id, description, runner) — the runner receives the `--quick` flag.
type Experiment = (&'static str, &'static str, fn(bool));

const IDS: &[Experiment] = &[
    (
        "stability",
        "T1: stability with no adversary",
        experiments::stability::run,
    ),
    (
        "lemmas",
        "T2-T6: bookkeeping lemmas 3-7",
        experiments::lemmas::run,
    ),
    (
        "drift",
        "F1: restoring drift field (Lemma 8)",
        experiments::drift::run,
    ),
    (
        "attack",
        "F2: stability under the attack suite",
        experiments::attack::run,
    ),
    (
        "ksweep",
        "F3: adversary tolerance threshold",
        experiments::ksweep::run,
    ),
    (
        "baselines",
        "F4/T8: baseline failure modes",
        experiments::baselines::run,
    ),
    (
        "gamma",
        "F5: matching-fraction robustness",
        experiments::gamma::run,
    ),
    (
        "accounting",
        "T7: states/memory/message accounting",
        experiments::accounting::run,
    ),
    ("healing", "F6: trauma recovery", experiments::healing::run),
    (
        "estimator",
        "F7: variance-based size estimation",
        experiments::estimator::run,
    ),
    (
        "equilibrium",
        "F7b: finite-size equilibrium",
        experiments::equilibrium::run,
    ),
    (
        "malice",
        "F8: malicious agents (extended model)",
        experiments::malice::run,
    ),
    (
        "ablation",
        "F9: constant ablations",
        experiments::ablation::run,
    ),
    (
        "bench",
        "B1: engine throughput -> BENCH_engine.json",
        experiments::bench::run,
    ),
];

fn usage() {
    eprintln!(
        "usage: experiments [--quick] [--jobs N] [--round-threads N] [--n LIST] [--columnar] \
         <id>... | all"
    );
    eprintln!("       experiments --list | scenario <name>...");
    eprintln!("       experiments snapshot <name> --at <round> -o <file>");
    eprintln!("       experiments resume <file> [--rounds N] [--trace]");
    eprintln!(
        "       experiments run-recoverable <name> --rounds N [--every K] [--keep M] \
         [--checkpoints BASE] [--kill-at R] [--trace]"
    );
    eprintln!("experiments:");
    for (id, desc, _) in IDS {
        eprintln!("  {id:<12} {desc}");
    }
}

/// `experiments snapshot <name> --at R -o FILE`.
fn cmd_snapshot(name: &str, at: u64, out: Option<&str>) -> ExitCode {
    let Some(out) = out else {
        eprintln!("snapshot needs an output path (-o FILE)");
        return ExitCode::FAILURE;
    };
    let Some(entry) = popstab_bench::scenario::find(name) else {
        eprintln!("unknown scenario `{name}`; see `experiments --list`");
        return ExitCode::FAILURE;
    };
    let Some(hook) = entry.snapshot else {
        eprintln!("scenario `{name}` has no snapshot support (non-PopulationStability state)");
        return ExitCode::FAILURE;
    };
    let mut engine = hook().engine();
    engine.run(RunSpec::rounds(at).threads(Threads::from_env()), &mut ());
    let mut snap = engine.snapshot();
    snap.label = name.to_string();
    if let Err(e) = snap.write_to_file(out) {
        eprintln!("writing snapshot to `{out}`: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "snapshot {name}: round={} population={} -> {out}",
        snap.round(),
        snap.population()
    );
    ExitCode::SUCCESS
}

/// One golden-format trace line: the per-round format the CI determinism
/// legs byte-diff across thread counts, resumes and crash recoveries.
fn print_trace_line(r: &RoundReport) {
    println!(
        "{} {} {} {} {} {} {} {} {}",
        r.round,
        r.population_before,
        r.population_after,
        r.inserted,
        r.deleted,
        r.modified,
        r.matched,
        r.splits,
        r.deaths
    );
}

/// `experiments run-recoverable <name> --rounds N [--every K] [--keep M]
/// [--checkpoints BASE] [--kill-at R] [--trace]`.
fn cmd_run_recoverable(
    name: &str,
    rounds: u64,
    every: u64,
    keep: usize,
    checkpoints: Option<&str>,
    kill_at: Option<u64>,
    trace: bool,
) -> ExitCode {
    let Some(entry) = popstab_bench::scenario::find(name) else {
        eprintln!("unknown scenario `{name}`; see `experiments --list`");
        return ExitCode::FAILURE;
    };
    let Some(hook) = entry.snapshot else {
        eprintln!("scenario `{name}` has no snapshot support (non-PopulationStability state)");
        return ExitCode::FAILURE;
    };
    let base = checkpoints
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{name}.ckpt")));
    // Crash recovery: scan the rotation for the newest checkpoint that
    // decodes cleanly. Corrupt or truncated slots are reported and skipped
    // — a half-written file from the crash must never poison the resume.
    let scan = Checkpoint::scan(&base, keep);
    for (path, err) in &scan.skipped {
        eprintln!("skipping checkpoint `{}`: {err}", path.display());
    }
    let (mut engine, from) = match scan.best {
        Some((path, snap)) => {
            if snap.label != name {
                eprintln!(
                    "checkpoint `{}` is labeled `{}`, not `{name}`; refusing to resume",
                    path.display(),
                    snap.label
                );
                return ExitCode::FAILURE;
            }
            let scenario = hook();
            match popstab_sim::Engine::restore(scenario.protocol, scenario.adversary, &snap) {
                Ok(mut engine) => {
                    engine.set_columnar(popstab_sim::batch::columnar_default());
                    eprintln!(
                        "resuming `{name}` from `{}` at round {}",
                        path.display(),
                        snap.round()
                    );
                    (engine, snap.round())
                }
                Err(e) => {
                    eprintln!("restoring `{}`: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => (hook().engine(), 0),
    };
    if from >= rounds {
        eprintln!("`{name}` already ran {from} of {rounds} rounds; nothing to do");
        return ExitCode::SUCCESS;
    }
    let mut checkpoint = Checkpoint::every(every, &base).keep(keep).label(name);
    let spec = RunSpec::rounds(rounds - from).threads(Threads::from_env());
    // The checkpoint observer runs *first* in the tee: when `--kill-at`
    // fires mid-round-callback, the round's checkpoint (if due) is already
    // on disk, exactly as it would be in a real crash after a write.
    engine.run(
        spec,
        &mut Tee(
            &mut checkpoint,
            OnRound(|r: &RoundReport| {
                if trace {
                    print_trace_line(r);
                }
                if kill_at.is_some_and(|k| r.round + 1 >= k) {
                    // Simulated crash: abandon the process without unwinding,
                    // like a SIGKILL would. 42 lets harnesses tell scheduled
                    // crashes from real failures.
                    std::process::exit(42);
                }
            }),
        ),
    );
    for (round, err) in checkpoint.errors() {
        eprintln!("checkpoint at round {round} failed: {err}");
    }
    if !trace {
        println!(
            "run-recoverable {name}: from_round={from} rounds={} population={} checkpoints={}",
            rounds - from,
            engine.population(),
            checkpoint.written()
        );
    }
    ExitCode::SUCCESS
}

/// `experiments resume FILE [--rounds N] [--trace]`.
fn cmd_resume(file: &str, rounds: u64, trace: bool) -> ExitCode {
    let snap = match Snapshot::read_from_file(file) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("reading snapshot `{file}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(entry) = popstab_bench::scenario::find(&snap.label) else {
        eprintln!(
            "snapshot `{file}` is labeled `{}`, which is not a registry scenario",
            snap.label
        );
        return ExitCode::FAILURE;
    };
    let Some(hook) = entry.snapshot else {
        eprintln!("scenario `{}` has no snapshot support", snap.label);
        return ExitCode::FAILURE;
    };
    let scenario = hook();
    let mut engine =
        match popstab_sim::Engine::restore(scenario.protocol, scenario.adversary, &snap) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("restoring `{file}`: {e}");
                return ExitCode::FAILURE;
            }
        };
    engine.set_columnar(popstab_sim::batch::columnar_default());
    let spec = RunSpec::rounds(rounds).threads(Threads::from_env());
    if trace {
        // Golden-trace format, one line per executed round, nothing else:
        // the CI snapshot-determinism leg byte-diffs this output.
        engine.run(spec, &mut OnRound(print_trace_line));
    } else {
        let outcome = engine.run(spec, &mut ());
        println!(
            "resumed {}: from_round={} rounds={} population={} halted={}",
            snap.label,
            snap.round(),
            outcome.executed,
            engine.population(),
            match outcome.halted {
                None => "no".to_string(),
                Some(reason) => format!("{reason:?}"),
            }
        );
    }
    ExitCode::SUCCESS
}

/// Parses and applies a `--jobs` value; `None` on anything non-positive.
fn apply_jobs(value: Option<&str>) -> Option<()> {
    let n = value?.parse::<usize>().ok().filter(|&n| n > 0)?;
    popstab_sim::batch::set_default_jobs(n);
    Some(())
}

/// Parses and applies a `--round-threads` value; `None` on anything
/// non-positive.
fn apply_round_threads(value: Option<&str>) -> Option<()> {
    let n = value?.parse::<usize>().ok().filter(|&n| n > 0)?;
    popstab_sim::batch::set_round_threads(n);
    Some(())
}

/// Parses and applies a `--n` scale list for the bench experiment; `None`
/// unless every comma-separated entry is a power of four ≥ 1024 (the
/// targets [`Params::for_target`](popstab_core::params::Params) accepts).
fn apply_bench_ns(value: Option<&str>) -> Option<()> {
    let ns: Vec<u64> = value?
        .split(',')
        .map(|part| part.trim().parse::<u64>().ok())
        .collect::<Option<_>>()?;
    if ns.is_empty() || !ns.iter().all(|&n| experiments::bench::valid_target(n)) {
        return None;
    }
    experiments::bench::set_n_override(ns);
    Some(())
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut jobs_given = false;
    let mut at: u64 = 0;
    let mut out: Option<String> = None;
    let mut rounds: u64 = 0;
    let mut trace = false;
    let mut every: u64 = 10;
    let mut keep: usize = 3;
    let mut checkpoints: Option<String> = None;
    let mut kill_at: Option<u64> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--trace" => trace = true,
            "--columnar" => popstab_sim::batch::set_columnar_default(true),
            "--at" | "--rounds" => {
                let Some(n) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("{arg} needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                if arg == "--at" {
                    at = n;
                } else {
                    rounds = n;
                }
            }
            "--every" | "--keep" | "--kill-at" => {
                let Some(n) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("{arg} needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--every" => every = n,
                    "--keep" => keep = n as usize,
                    _ => kill_at = Some(n),
                }
            }
            "--checkpoints" => {
                let Some(path) = args.next() else {
                    eprintln!("--checkpoints needs a base path");
                    return ExitCode::FAILURE;
                };
                checkpoints = Some(path);
            }
            "--out" | "-o" => {
                let Some(path) = args.next() else {
                    eprintln!("{arg} needs a file path");
                    return ExitCode::FAILURE;
                };
                out = Some(path);
            }
            "--list" => {
                popstab_bench::scenario::print_list();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--jobs" | "-j" => {
                let value = args.next();
                if apply_jobs(value.as_deref()).is_none() {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
                jobs_given = true;
            }
            "--round-threads" => {
                let value = args.next();
                if apply_round_threads(value.as_deref()).is_none() {
                    eprintln!("--round-threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            }
            "--n" => {
                let value = args.next();
                if apply_bench_ns(value.as_deref()).is_none() {
                    eprintln!("--n needs a comma-separated list of powers of four >= 1024");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                if let Some(value) = other.strip_prefix("--jobs=") {
                    if apply_jobs(Some(value)).is_none() {
                        eprintln!("--jobs needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                    jobs_given = true;
                } else if let Some(value) = other.strip_prefix("--round-threads=") {
                    if apply_round_threads(Some(value)).is_none() {
                        eprintln!("--round-threads needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                } else if let Some(value) = other.strip_prefix("--n=") {
                    if apply_bench_ns(Some(value)).is_none() {
                        eprintln!("--n needs a comma-separated list of powers of four >= 1024");
                        return ExitCode::FAILURE;
                    }
                } else {
                    selected.push(other.to_string());
                }
            }
        }
    }
    if selected.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    // `snapshot <name>` / `resume <file>` drive the checkpoint tooling.
    if selected[0] == "snapshot" {
        let Some(name) = selected.get(1) else {
            eprintln!("snapshot needs a scenario name; see `experiments --list`");
            return ExitCode::FAILURE;
        };
        return cmd_snapshot(name, at, out.as_deref());
    }
    if selected[0] == "resume" {
        let Some(file) = selected.get(1) else {
            eprintln!("resume needs a snapshot file path");
            return ExitCode::FAILURE;
        };
        return cmd_resume(file, rounds, trace);
    }
    if selected[0] == "run-recoverable" {
        let Some(name) = selected.get(1) else {
            eprintln!("run-recoverable needs a scenario name; see `experiments --list`");
            return ExitCode::FAILURE;
        };
        return cmd_run_recoverable(
            name,
            rounds,
            every,
            keep,
            checkpoints.as_deref(),
            kill_at,
            trace,
        );
    }
    // `scenario <name>...` runs registry entries instead of experiment ids.
    if selected[0] == "scenario" {
        let names = &selected[1..];
        if names.is_empty() {
            eprintln!("scenario needs at least one name; see `experiments --list`");
            return ExitCode::FAILURE;
        }
        for name in names {
            let Some(entry) = popstab_bench::scenario::find(name) else {
                eprintln!("unknown scenario `{name}`; see `experiments --list`");
                return ExitCode::FAILURE;
            };
            (entry.run)(quick);
        }
        return ExitCode::SUCCESS;
    }
    // The two parallelism axes multiply: every batch job spins up its own
    // intra-round pool. Unless the batch width was pinned explicitly, shrink
    // it so jobs × round-threads ≈ the machine (oversubscribing CPU-bound
    // threads only adds contention; results are identical either way).
    let round_threads = popstab_sim::batch::round_threads();
    if round_threads > 1 && !jobs_given && std::env::var_os("POPSTAB_JOBS").is_none() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        popstab_sim::batch::set_default_jobs((avail / round_threads).max(1));
    }
    if selected.iter().any(|s| s == "all") {
        // `bench` overwrites the committed BENCH_engine.json with
        // machine-local numbers, so the figures bundle excludes it; run it
        // explicitly when refreshing the perf trajectory.
        selected = IDS
            .iter()
            .map(|(id, _, _)| id.to_string())
            .filter(|id| id != "bench")
            .collect();
    }
    for want in &selected {
        let Some((_, _, runner)) = IDS.iter().find(|(id, _, _)| id == want) else {
            eprintln!("unknown experiment `{want}`");
            usage();
            return ExitCode::FAILURE;
        };
        println!("================================================================");
        let start = Instant::now();
        runner(quick);
        println!(
            "[{want} finished in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
