//! Experiment harness CLI.
//!
//! ```sh
//! experiments [--quick] [--jobs N] [--round-threads N] <id>...
//! experiments all
//! experiments --list
//! experiments scenario <name>...
//! ```
//!
//! Ids (see DESIGN.md §4): `stability` (T1), `lemmas` (T2–T6), `drift`
//! (F1), `attack` (F2), `ksweep` (F3), `baselines` (F4 + T8), `gamma`
//! (F5), `accounting` (T7), `healing` (F6), `estimator` (F7),
//! `equilibrium` (F7b), `bench` (B1 → `BENCH_engine.json`).
//!
//! `--list` prints the named scenario registry (protocol, adversary,
//! config summary) and `scenario <name>...` runs registry entries by name.
//!
//! `--jobs N` caps the worker count of every `BatchRunner` trial fan-out
//! (default: `POPSTAB_JOBS` or the machine's available parallelism).
//! `--round-threads N` shards the step phase *inside* every protocol round
//! across N workers (default: `POPSTAB_ROUND_THREADS` or serial rounds).
//! By the determinism contracts the figures are identical for every value
//! of both flags — CI diffs `--round-threads 1` against `--round-threads 4`
//! to prove it.

use std::process::ExitCode;
use std::time::Instant;

use popstab_bench::experiments;

/// (id, description, runner) — the runner receives the `--quick` flag.
type Experiment = (&'static str, &'static str, fn(bool));

const IDS: &[Experiment] = &[
    (
        "stability",
        "T1: stability with no adversary",
        experiments::stability::run,
    ),
    (
        "lemmas",
        "T2-T6: bookkeeping lemmas 3-7",
        experiments::lemmas::run,
    ),
    (
        "drift",
        "F1: restoring drift field (Lemma 8)",
        experiments::drift::run,
    ),
    (
        "attack",
        "F2: stability under the attack suite",
        experiments::attack::run,
    ),
    (
        "ksweep",
        "F3: adversary tolerance threshold",
        experiments::ksweep::run,
    ),
    (
        "baselines",
        "F4/T8: baseline failure modes",
        experiments::baselines::run,
    ),
    (
        "gamma",
        "F5: matching-fraction robustness",
        experiments::gamma::run,
    ),
    (
        "accounting",
        "T7: states/memory/message accounting",
        experiments::accounting::run,
    ),
    ("healing", "F6: trauma recovery", experiments::healing::run),
    (
        "estimator",
        "F7: variance-based size estimation",
        experiments::estimator::run,
    ),
    (
        "equilibrium",
        "F7b: finite-size equilibrium",
        experiments::equilibrium::run,
    ),
    (
        "malice",
        "F8: malicious agents (extended model)",
        experiments::malice::run,
    ),
    (
        "ablation",
        "F9: constant ablations",
        experiments::ablation::run,
    ),
    (
        "bench",
        "B1: engine throughput -> BENCH_engine.json",
        experiments::bench::run,
    ),
];

fn usage() {
    eprintln!("usage: experiments [--quick] [--jobs N] [--round-threads N] <id>... | all");
    eprintln!("       experiments --list | scenario <name>...");
    eprintln!("experiments:");
    for (id, desc, _) in IDS {
        eprintln!("  {id:<12} {desc}");
    }
}

/// Parses and applies a `--jobs` value; `None` on anything non-positive.
fn apply_jobs(value: Option<&str>) -> Option<()> {
    let n = value?.parse::<usize>().ok().filter(|&n| n > 0)?;
    popstab_sim::batch::set_default_jobs(n);
    Some(())
}

/// Parses and applies a `--round-threads` value; `None` on anything
/// non-positive.
fn apply_round_threads(value: Option<&str>) -> Option<()> {
    let n = value?.parse::<usize>().ok().filter(|&n| n > 0)?;
    popstab_sim::batch::set_round_threads(n);
    Some(())
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut jobs_given = false;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--list" => {
                popstab_bench::scenario::print_list();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--jobs" | "-j" => {
                let value = args.next();
                if apply_jobs(value.as_deref()).is_none() {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
                jobs_given = true;
            }
            "--round-threads" => {
                let value = args.next();
                if apply_round_threads(value.as_deref()).is_none() {
                    eprintln!("--round-threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                if let Some(value) = other.strip_prefix("--jobs=") {
                    if apply_jobs(Some(value)).is_none() {
                        eprintln!("--jobs needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                    jobs_given = true;
                } else if let Some(value) = other.strip_prefix("--round-threads=") {
                    if apply_round_threads(Some(value)).is_none() {
                        eprintln!("--round-threads needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                } else {
                    selected.push(other.to_string());
                }
            }
        }
    }
    if selected.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    // `scenario <name>...` runs registry entries instead of experiment ids.
    if selected[0] == "scenario" {
        let names = &selected[1..];
        if names.is_empty() {
            eprintln!("scenario needs at least one name; see `experiments --list`");
            return ExitCode::FAILURE;
        }
        for name in names {
            let Some(entry) = popstab_bench::scenario::find(name) else {
                eprintln!("unknown scenario `{name}`; see `experiments --list`");
                return ExitCode::FAILURE;
            };
            (entry.run)(quick);
        }
        return ExitCode::SUCCESS;
    }
    // The two parallelism axes multiply: every batch job spins up its own
    // intra-round pool. Unless the batch width was pinned explicitly, shrink
    // it so jobs × round-threads ≈ the machine (oversubscribing CPU-bound
    // threads only adds contention; results are identical either way).
    let round_threads = popstab_sim::batch::round_threads();
    if round_threads > 1 && !jobs_given && std::env::var_os("POPSTAB_JOBS").is_none() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        popstab_sim::batch::set_default_jobs((avail / round_threads).max(1));
    }
    if selected.iter().any(|s| s == "all") {
        // `bench` overwrites the committed BENCH_engine.json with
        // machine-local numbers, so the figures bundle excludes it; run it
        // explicitly when refreshing the perf trajectory.
        selected = IDS
            .iter()
            .map(|(id, _, _)| id.to_string())
            .filter(|id| id != "bench")
            .collect();
    }
    for want in &selected {
        let Some((_, _, runner)) = IDS.iter().find(|(id, _, _)| id == want) else {
            eprintln!("unknown experiment `{want}`");
            usage();
            return ExitCode::FAILURE;
        };
        println!("================================================================");
        let start = Instant::now();
        runner(quick);
        println!(
            "[{want} finished in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
