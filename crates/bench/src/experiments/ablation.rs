//! **F9 — Ablation of the protocol's constants.**
//!
//! DESIGN.md calls out two tunable constants the paper fixes: the leader
//! probability `1/(8√N)` and the split probability `1 − 16/√N`. The
//! equilibrium model predicts how the operating point moves when they
//! change; this ablation confirms it:
//!
//! * halving the split-bias exponent (larger no-split probability `s`)
//!   lowers the equilibrium `m* = 8√N(2−s)/s`,
//! * the leader probability does not move the CLT equilibrium at all, but
//!   changes the Poisson λ and hence the finite-N correction and noise.

use popstab_analysis::equilibrium::{equilibrium_population, exact_equilibrium};
use popstab_analysis::report::{fmt_f64, Table};
use popstab_core::params::Params;

use crate::{run_clean, JobSpec};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let n: u64 = 4096;
    let epochs: u64 = if quick { 40 } else { 120 };
    println!("F9: constant ablations at N = {n} ({epochs} epochs, started at m° of each config)\n");
    let mut table = Table::new([
        "leader exp",
        "split exp",
        "Pr[leader]",
        "Pr[split]",
        "m* (CLT)",
        "m° (exact)",
        "measured tail-mean",
    ]);
    // (leader_bias_exp override, split_bias_exp override)
    let base = Params::for_target(n).unwrap();
    let configs: Vec<(u32, u32)> = vec![
        (base.leader_bias_exp(), base.split_bias_exp()), // paper defaults (9, 2)
        (base.leader_bias_exp(), base.split_bias_exp() + 1), // rarer no-split -> larger m*
        (base.leader_bias_exp(), base.split_bias_exp() - 1), // more frequent no-split -> smaller m*
        (base.leader_bias_exp() - 1, base.split_bias_exp()), // 2x leaders: same m*, smaller finite-N gap
        (base.leader_bias_exp() + 1, base.split_bias_exp()), // 0.5x leaders: same m*, larger gap & noise
    ];
    for (le, se) in configs {
        let params = Params::builder(n)
            .leader_bias_exp(le)
            .split_bias_exp(se)
            .build()
            .unwrap();
        let m_star = equilibrium_population(&params);
        let m_eq = exact_equilibrium(&params, 1.0);
        let mut spec = JobSpec::new(3141, epochs);
        spec.initial = Some(m_eq as usize);
        let run = run_clean(&params, spec);
        let epoch = u64::from(params.epoch_len());
        let pops = run.trajectory().epoch_end_populations(epoch);
        let tail = &pops[pops.len() / 2..];
        let tail_mean = tail.iter().sum::<usize>() as f64 / tail.len().max(1) as f64;
        table.row([
            le.to_string(),
            se.to_string(),
            format!("2^-{le}"),
            fmt_f64(params.split_probability(), 3),
            fmt_f64(m_star, 0),
            fmt_f64(m_eq, 0),
            fmt_f64(tail_mean, 0),
        ]);
    }
    println!("{table}");
    println!("Shape check: the split bias moves the equilibrium exactly as m* = 8√N(2−s)/s");
    println!("predicts; the leader bias leaves m* fixed but widens the finite-N gap m° < m*.\n");
}
