//! **T7 — Resource accounting** (Theorem 2's `ω(log²N)` states and
//! three-bit messages).
//!
//! Static computation straight from the parameters — no simulation. Also
//! contrasts with the high-memory baseline's `N` bits per identifier.

use popstab_analysis::report::{fmt_f64, Table};
use popstab_core::accounting::{log2_cubed, log2_squared, resources};
use popstab_core::params::Params;

/// Runs the experiment and prints its tables.
pub fn run(_quick: bool) {
    println!("T7: resource accounting (paper: ω(log²N) states, Θ(log log N) memory bits,");
    println!("    3-bit messages; default T_inner = log²N gives Θ(log³N) states)\n");
    let mut table = Table::new([
        "N",
        "states",
        "4·log³N",
        "log²N",
        "memory bits",
        "msg bits",
        "coin scratch bits",
    ]);
    for log2_n in [10u32, 12, 14, 16, 20, 24, 30] {
        let params = Params::for_target(1u64 << log2_n).unwrap();
        let r = resources(&params);
        table.row([
            format!("2^{log2_n}"),
            r.states.to_string(),
            (4 * log2_cubed(&params)).to_string(),
            log2_squared(&params).to_string(),
            r.memory_bits.to_string(),
            r.message_bits.to_string(),
            r.coin_scratch_bits.to_string(),
        ]);
    }
    println!("{table}");

    // The ω(log²N) floor: with T_inner = c·log N the state count is Θ(log²N).
    println!("minimum admissible configuration (T_inner = 4·log N, still ω(log N)):");
    let mut table = Table::new(["N", "states", "log²N", "ratio"]);
    for log2_n in [10u32, 16, 24] {
        let params = Params::builder(1u64 << log2_n)
            .t_inner(4 * log2_n)
            .build()
            .unwrap();
        let r = resources(&params);
        table.row([
            format!("2^{log2_n}"),
            r.states.to_string(),
            log2_squared(&params).to_string(),
            fmt_f64(r.states as f64 / log2_squared(&params) as f64, 1),
        ]);
    }
    println!("{table}");

    println!("contrast: the §1.2 high-memory baseline needs N bits per identifier and up to");
    println!("N identifiers per agent — N² bits (≈ 10^6 bits at N = 1024) versus the");
    println!("protocol's ~15 bits. This is the gap the paper's construction closes.\n");
}
