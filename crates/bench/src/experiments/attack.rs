//! **F2 — Stability under the full attack suite** (Theorem 1).
//!
//! Every attack strategy from `popstab-adversary`, metered to `k`
//! alterations per epoch (the scale-faithful translation of the paper's
//! per-round budget; see `popstab_adversary::throttle`), runs for many
//! epochs; the population must stay within the operating band.

use popstab_adversary::throttled_suite;
use popstab_analysis::equilibrium::exact_equilibrium;
use popstab_analysis::report::{fmt_f64, fmt_pass, Table};
use popstab_core::params::Params;
use popstab_sim::BatchRunner;

use crate::{run_protocol, JobSpec};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let ns: &[u64] = if quick { &[1024] } else { &[1024, 4096] };
    let epochs: u64 = if quick { 10 } else { 25 };

    for &n in ns {
        let params = Params::for_target(n).unwrap();
        let m_eq = exact_equilibrium(&params, 1.0);
        // Budget: half the per-epoch absorption floor (max of the exact
        // drift model), floored at 1.
        let (_, capacity) = popstab_analysis::equilibrium::max_exact_drift(&params, 1.0);
        let k = ((capacity / 2.0).floor() as usize).max(1);
        // The run starts at N, above the finite-N equilibrium m°, so the
        // ceiling must cover the start plus wander: [0.5·m°, max(1.6·m°, 1.25·N)].
        let floor = 0.5 * m_eq;
        let ceiling = (1.6 * m_eq).max(1.25 * n as f64);
        println!(
            "F2: attack suite at N = {n}, {epochs} epochs, budget {k}/epoch \
             (absorption capacity ≈ {capacity:.1}/epoch), band [{floor:.0}, {ceiling:.0}]\n"
        );
        let mut table = Table::new(["adversary", "min", "max", "final", "m°", "in band"]);
        // One independent simulation per attack strategy: run the suite as
        // one batch. The boxed adversaries are rebuilt inside each job (by
        // suite index) so the jobs own their adversary.
        let suite_len = throttled_suite(&params, k).len();
        let rows = BatchRunner::from_env().run((0..suite_len).collect(), |_, idx| {
            let adversary = throttled_suite(&params, k)
                .into_iter()
                .nth(idx)
                .expect("suite index in range");
            let name = adversary.name();
            let mut spec = JobSpec::new(1234, epochs);
            spec.budget = k;
            let run = run_protocol(&params, adversary, spec);
            let (lo, hi) = run.population_range().unwrap();
            (name, lo, hi, run.population())
        });
        for (name, lo, hi, final_pop) in rows {
            let in_band = lo as f64 >= floor && (hi as f64) <= ceiling;
            table.row([
                name.to_string(),
                lo.to_string(),
                hi.to_string(),
                final_pop.to_string(),
                fmt_f64(m_eq, 0),
                fmt_pass(in_band),
            ]);
        }
        println!("{table}");
    }
}
