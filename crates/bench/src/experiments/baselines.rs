//! **F4 + T8 — Baseline protocols fail exactly as the paper says.**
//!
//! * Attempt 1 (§1.3.1): stable alone and under an oblivious deleter,
//!   collapses under one forged signal per epoch, explodes when the
//!   adversary snipes signal carriers.
//! * Attempt 2 (§1.3.1): random-walks away from the target with *no*
//!   adversary at all.
//! * Empty protocol: stable alone, helpless under deletion.
//! * High-memory unique-ID protocol (§1.2, T8): counts the population and
//!   holds under deletion, but collapses under forged-ID insertion.
//! * The paper's protocol: holds in every setting above (at per-epoch
//!   budgets).

use popstab_analysis::report::Table;
use popstab_baselines::attempt1::{SignalFlooder, SignalSuppressor};
use popstab_baselines::highmem::IdFlooder;
use popstab_baselines::{Attempt1, Attempt2, Empty, HighMemory, ObliviousDeleter};
use popstab_core::params::Params;
use popstab_sim::{Adversary, Engine, NoOpAdversary, Protocol, SimConfig};

use crate::{run_protocol, RunSpec};

const N: u64 = 1024;

/// Adversary selector for the high-memory rows (its state type differs from
/// the main protocol's).
enum HmAdv {
    None,
    Deleter(usize),
    Flooder,
}

fn run_baseline<P, A>(
    proto: P,
    adv: A,
    budget: usize,
    rounds: u64,
    seed: u64,
) -> (usize, usize, usize, bool)
where
    P: Protocol,
    A: Adversary<P::State>,
{
    let cfg = SimConfig::builder()
        .seed(seed)
        .target(N)
        .adversary_budget(budget)
        .max_population(64 * N as usize)
        .metrics_every(16)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(proto, adv, cfg, N as usize);
    engine.run_rounds(rounds);
    let (lo, hi) = engine.metrics().population_range().unwrap_or((0, 0));
    (lo, hi, engine.population(), engine.halted().is_some())
}

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let horizon: u64 = if quick { 8_000 } else { 25_000 };
    println!("F4/T8: baseline comparison at N = {N}, horizon {horizon} rounds\n");
    let mut table = Table::new([
        "protocol",
        "adversary",
        "min",
        "max",
        "final",
        "halted",
        "verdict",
    ]);

    let a1 = Attempt1::new(N);
    let a1_epoch = a1.epoch_len();

    let mut push = |proto: &str, adv: &str, r: (usize, usize, usize, bool), verdict: &str| {
        table.row([
            proto.to_string(),
            adv.to_string(),
            r.0.to_string(),
            r.1.to_string(),
            r.2.to_string(),
            if r.3 { "yes" } else { "no" }.to_string(),
            verdict.to_string(),
        ]);
    };

    // Attempt 1.
    let r = run_baseline(a1.clone(), NoOpAdversary, 0, horizon, 1);
    push(
        "attempt1",
        "none",
        r,
        if r.2 > N as usize / 3 && r.2 < 3 * N as usize {
            "holds (crudely)"
        } else {
            "UNEXPECTED"
        },
    );
    let r = run_baseline(
        a1.clone(),
        ObliviousDeleter::with_period(1, 4),
        1,
        horizon,
        2,
    );
    push(
        "attempt1",
        "oblivious-delete",
        r,
        if r.2 > N as usize / 3 {
            "holds (weak adversary)"
        } else {
            "UNEXPECTED"
        },
    );
    let r = run_baseline(a1.clone(), SignalFlooder::new(a1_epoch), 1, horizon, 3);
    push(
        "attempt1",
        "1 forged signal/epoch",
        r,
        if r.2 < N as usize / 2 {
            "COLLAPSES (as predicted)"
        } else {
            "UNEXPECTED"
        },
    );
    let r = run_baseline(a1.clone(), SignalSuppressor, 64, horizon, 4);
    push(
        "attempt1",
        "signal-suppressor",
        r,
        if r.2 > 2 * N as usize || r.3 {
            "EXPLODES (as predicted)"
        } else {
            "UNEXPECTED"
        },
    );

    // Attempt 2: no adversary, long horizon — random walk.
    let r = run_baseline(Attempt2::new(N), NoOpAdversary, 0, horizon, 5);
    let dev = (N as f64 - r.0 as f64).max(r.1 as f64 - N as f64) / N as f64;
    push(
        "attempt2",
        "none",
        r,
        if dev > 0.2 {
            "RANDOM-WALKS (as predicted)"
        } else {
            "walk too slow at this horizon"
        },
    );

    // Empty protocol: loses exactly the scheduled deletions, no correction.
    let r = run_baseline(Empty, NoOpAdversary, 0, horizon, 6);
    push(
        "empty",
        "none",
        r,
        if r.2 == N as usize {
            "constant"
        } else {
            "UNEXPECTED"
        },
    );
    let r = run_baseline(Empty, ObliviousDeleter::with_period(1, 16), 1, horizon, 7);
    let scheduled = (horizon / 16) as usize;
    push(
        "empty",
        "oblivious-delete",
        r,
        if r.3 || r.2 + scheduled / 2 <= N as usize {
            "decays (no correction)"
        } else {
            "UNEXPECTED"
        },
    );

    // High-memory unique-ID protocol (T8). Gossiping whole ID sets is
    // quadratic in the population, so this baseline runs at a smaller scale.
    let n_hm: u64 = 256;
    let hm = HighMemory::new(n_hm);
    let hm_horizon = if quick { 1_500 } else { 4_000 };
    let run_hm = |adv_budget: usize, seed: u64, adv: HmAdv| -> (usize, usize, usize, bool) {
        let cfg = SimConfig::builder()
            .seed(seed)
            .target(n_hm)
            .adversary_budget(adv_budget)
            .max_population(16 * n_hm as usize)
            .metrics_every(8)
            .build()
            .unwrap();
        match adv {
            HmAdv::None => {
                let mut e = Engine::with_adversary(hm, NoOpAdversary, cfg, n_hm as usize);
                e.run_rounds(hm_horizon);
                let (lo, hi) = e.metrics().population_range().unwrap_or((0, 0));
                (lo, hi, e.population(), e.halted().is_some())
            }
            HmAdv::Deleter(k) => {
                let mut e =
                    Engine::with_adversary(hm, ObliviousDeleter::new(k), cfg, n_hm as usize);
                e.run_rounds(hm_horizon);
                let (lo, hi) = e.metrics().population_range().unwrap_or((0, 0));
                (lo, hi, e.population(), e.halted().is_some())
            }
            HmAdv::Flooder => {
                let mut e = Engine::with_adversary(hm, IdFlooder, cfg, n_hm as usize);
                e.run_rounds(hm_horizon);
                let (lo, hi) = e.metrics().population_range().unwrap_or((0, 0));
                (lo, hi, e.population(), e.halted().is_some())
            }
        }
    };
    let r = run_hm(0, 8, HmAdv::None);
    push(
        "high-memory (n=256)",
        "none",
        r,
        if r.2 > (n_hm as usize * 9) / 10 {
            "counts & holds"
        } else {
            "UNEXPECTED"
        },
    );
    let r = run_hm(2, 9, HmAdv::Deleter(2));
    push(
        "high-memory (n=256)",
        "oblivious-delete x2",
        r,
        if r.2 > (n_hm as usize * 6) / 10 {
            "holds (delete-only)"
        } else {
            "UNEXPECTED"
        },
    );
    let r = run_hm(1, 10, HmAdv::Flooder);
    push(
        "high-memory (n=256)",
        "forged-id insert",
        r,
        if r.2 < n_hm as usize / 2 {
            "COLLAPSES (as predicted)"
        } else {
            "UNEXPECTED"
        },
    );

    // The paper's protocol in the same arenas.
    let params = Params::for_target(N).unwrap();
    let epochs = horizon / u64::from(params.epoch_len());
    let engine = run_protocol(&params, NoOpAdversary, RunSpec::new(11, epochs));
    let (lo, hi) = engine.metrics().population_range().unwrap();
    push(
        "paper protocol",
        "none",
        (lo, hi, engine.population(), false),
        "holds",
    );
    let adv = popstab_adversary::Throttle::per_epoch(
        popstab_adversary::RandomDeleter::new(1),
        params.epoch_len(),
    );
    let mut spec = RunSpec::new(12, epochs);
    spec.budget = 1;
    let engine = run_protocol(&params, adv, spec);
    let (lo, hi) = engine.metrics().population_range().unwrap();
    push(
        "paper protocol",
        "delete 1/epoch",
        (lo, hi, engine.population(), false),
        "holds",
    );

    println!("{table}");
}
