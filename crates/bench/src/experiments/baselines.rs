//! **F4 + T8 — Baseline protocols fail exactly as the paper says.**
//!
//! * Attempt 1 (§1.3.1): stable alone and under an oblivious deleter,
//!   collapses under one forged signal per epoch, explodes when the
//!   adversary snipes signal carriers.
//! * Attempt 2 (§1.3.1): random-walks away from the target with *no*
//!   adversary at all.
//! * Empty protocol: stable alone, helpless under deletion.
//! * High-memory unique-ID protocol (§1.2, T8): counts the population and
//!   holds under deletion, but collapses under forged-ID insertion.
//! * The paper's protocol: holds in every setting above (at per-epoch
//!   budgets).
//!
//! Every table row is an independent simulation, so the rows run as one
//! [`BatchRunner`] batch (the `--jobs` flag of the `experiments` binary
//! controls the worker count; results are identical for any value).

use popstab_analysis::report::Table;
use popstab_baselines::attempt1::{SignalFlooder, SignalSuppressor};
use popstab_baselines::highmem::IdFlooder;
use popstab_baselines::{Attempt1, Attempt2, Empty, HighMemory, ObliviousDeleter};
use popstab_core::params::Params;
use popstab_sim::{Adversary, BatchRunner, Engine, NoOpAdversary, Protocol, RunSpec, SimConfig};

use crate::{run_protocol, JobSpec};

const N: u64 = 1024;

/// `(min, max, final, halted)` of one baseline run.
type Row = (usize, usize, usize, bool);

/// One table row: labels, the simulation to run, and how to judge it.
struct Case {
    proto: &'static str,
    adv: &'static str,
    sim: Box<dyn FnOnce() -> Row + Send>,
    verdict: Box<dyn Fn(Row) -> &'static str + Send>,
}

fn run_baseline<P, A>(proto: P, adv: A, budget: usize, rounds: u64, seed: u64) -> Row
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    P::Message: Send,
    A: Adversary<P::State>,
{
    let cfg = SimConfig::builder()
        .seed(seed)
        .target(N)
        .adversary_budget(budget)
        .max_population(64 * N as usize)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(proto, adv, cfg, N as usize);
    let (lo, hi) = engine
        .run(RunSpec::rounds(rounds), &mut ())
        .population_range();
    (lo, hi, engine.population(), engine.halted().is_some())
}

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let horizon: u64 = if quick { 8_000 } else { 25_000 };
    println!("F4/T8: baseline comparison at N = {N}, horizon {horizon} rounds\n");
    let mut table = Table::new([
        "protocol",
        "adversary",
        "min",
        "max",
        "final",
        "halted",
        "verdict",
    ]);

    let a1 = Attempt1::new(N);
    let a1_epoch = a1.epoch_len();
    let mut cases: Vec<Case> = Vec::new();

    // Attempt 1.
    let a1_job = a1.clone();
    cases.push(Case {
        proto: "attempt1",
        adv: "none",
        sim: Box::new(move || run_baseline(a1_job, NoOpAdversary, 0, horizon, 1)),
        verdict: Box::new(|r| {
            if r.2 > N as usize / 3 && r.2 < 3 * N as usize {
                "holds (crudely)"
            } else {
                "UNEXPECTED"
            }
        }),
    });
    cases.push(Case {
        proto: "attempt1",
        adv: "oblivious-delete",
        sim: {
            let a1_job = a1.clone();
            Box::new(move || {
                run_baseline(a1_job, ObliviousDeleter::with_period(1, 4), 1, horizon, 2)
            })
        },
        verdict: Box::new(|r| {
            if r.2 > N as usize / 3 {
                "holds (weak adversary)"
            } else {
                "UNEXPECTED"
            }
        }),
    });
    cases.push(Case {
        proto: "attempt1",
        adv: "1 forged signal/epoch",
        sim: {
            let a1_job = a1.clone();
            Box::new(move || run_baseline(a1_job, SignalFlooder::new(a1_epoch), 1, horizon, 3))
        },
        verdict: Box::new(|r| {
            if r.2 < N as usize / 2 {
                "COLLAPSES (as predicted)"
            } else {
                "UNEXPECTED"
            }
        }),
    });
    cases.push(Case {
        proto: "attempt1",
        adv: "signal-suppressor",
        sim: {
            let a1_job = a1.clone();
            Box::new(move || run_baseline(a1_job, SignalSuppressor, 64, horizon, 4))
        },
        verdict: Box::new(|r| {
            if r.2 > 2 * N as usize || r.3 {
                "EXPLODES (as predicted)"
            } else {
                "UNEXPECTED"
            }
        }),
    });

    // Attempt 2: no adversary, long horizon — random walk.
    cases.push(Case {
        proto: "attempt2",
        adv: "none",
        sim: Box::new(move || run_baseline(Attempt2::new(N), NoOpAdversary, 0, horizon, 5)),
        verdict: Box::new(|r| {
            let dev = (N as f64 - r.0 as f64).max(r.1 as f64 - N as f64) / N as f64;
            if dev > 0.2 {
                "RANDOM-WALKS (as predicted)"
            } else {
                "walk too slow at this horizon"
            }
        }),
    });

    // Empty protocol: loses exactly the scheduled deletions, no correction.
    cases.push(Case {
        proto: "empty",
        adv: "none",
        sim: Box::new(move || run_baseline(Empty, NoOpAdversary, 0, horizon, 6)),
        verdict: Box::new(|r| {
            if r.2 == N as usize {
                "constant"
            } else {
                "UNEXPECTED"
            }
        }),
    });
    let scheduled = (horizon / 16) as usize;
    cases.push(Case {
        proto: "empty",
        adv: "oblivious-delete",
        sim: Box::new(move || {
            run_baseline(Empty, ObliviousDeleter::with_period(1, 16), 1, horizon, 7)
        }),
        verdict: Box::new(move |r| {
            if r.3 || r.2 + scheduled / 2 <= N as usize {
                "decays (no correction)"
            } else {
                "UNEXPECTED"
            }
        }),
    });

    // High-memory unique-ID protocol (T8). Gossiping whole ID sets is
    // quadratic in the population, so this baseline runs at a smaller scale.
    let n_hm: u64 = 256;
    let hm_horizon = if quick { 1_500 } else { 4_000 };
    fn run_hm<A: Adversary<popstab_baselines::highmem::HmState>>(
        n_hm: u64,
        adv: A,
        budget: usize,
        rounds: u64,
        seed: u64,
    ) -> Row {
        let cfg = SimConfig::builder()
            .seed(seed)
            .target(n_hm)
            .adversary_budget(budget)
            .max_population(16 * n_hm as usize)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(HighMemory::new(n_hm), adv, cfg, n_hm as usize);
        let (lo, hi) = engine
            .run(RunSpec::rounds(rounds), &mut ())
            .population_range();
        (lo, hi, engine.population(), engine.halted().is_some())
    }
    cases.push(Case {
        proto: "high-memory (n=256)",
        adv: "none",
        sim: Box::new(move || run_hm(n_hm, NoOpAdversary, 0, hm_horizon, 8)),
        verdict: Box::new(move |r| {
            if r.2 > (n_hm as usize * 9) / 10 {
                "counts & holds"
            } else {
                "UNEXPECTED"
            }
        }),
    });
    cases.push(Case {
        proto: "high-memory (n=256)",
        adv: "oblivious-delete x2",
        sim: Box::new(move || run_hm(n_hm, ObliviousDeleter::new(2), 2, hm_horizon, 9)),
        verdict: Box::new(move |r| {
            if r.2 > (n_hm as usize * 6) / 10 {
                "holds (delete-only)"
            } else {
                "UNEXPECTED"
            }
        }),
    });
    cases.push(Case {
        proto: "high-memory (n=256)",
        adv: "forged-id insert",
        sim: Box::new(move || run_hm(n_hm, IdFlooder, 1, hm_horizon, 10)),
        verdict: Box::new(move |r| {
            if r.2 < n_hm as usize / 2 {
                "COLLAPSES (as predicted)"
            } else {
                "UNEXPECTED"
            }
        }),
    });

    // The paper's protocol in the same arenas.
    let params = Params::for_target(N).unwrap();
    let epochs = horizon / u64::from(params.epoch_len());
    let params_a = params.clone();
    cases.push(Case {
        proto: "paper protocol",
        adv: "none",
        sim: Box::new(move || {
            let run = run_protocol(&params_a, NoOpAdversary, JobSpec::new(11, epochs));
            let (lo, hi) = run.population_range().unwrap();
            (lo, hi, run.population(), false)
        }),
        verdict: Box::new(|_| "holds"),
    });
    let params_b = params.clone();
    cases.push(Case {
        proto: "paper protocol",
        adv: "delete 1/epoch",
        sim: Box::new(move || {
            let adv = popstab_adversary::Throttle::per_epoch(
                popstab_adversary::RandomDeleter::new(1),
                params_b.epoch_len(),
            );
            let mut spec = JobSpec::new(12, epochs);
            spec.budget = 1;
            let run = run_protocol(&params_b, adv, spec);
            let (lo, hi) = run.population_range().unwrap();
            (lo, hi, run.population(), false)
        }),
        verdict: Box::new(|_| "holds"),
    });

    let rows = BatchRunner::from_env().run(cases, |_, case| {
        let row = (case.sim)();
        (case.proto, case.adv, row, (case.verdict)(row))
    });
    for (proto, adv, r, verdict) in rows {
        table.row([
            proto.to_string(),
            adv.to_string(),
            r.0.to_string(),
            r.1.to_string(),
            r.2.to_string(),
            if r.3 { "yes" } else { "no" }.to_string(),
            verdict.to_string(),
        ]);
    }
    println!("{table}");
}
