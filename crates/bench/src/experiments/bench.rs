//! **B1 — Engine throughput benchmark → `BENCH_engine.json`.**
//!
//! Measures rounds/sec of the substrate running [`PopulationStability`]
//! near equilibrium at three scales (the powers of four bracketing 1k, 10k
//! and 100k agents), in three configurations:
//!
//! * `single_recorded_rps` — one engine, default per-round
//!   [`RoundStats`](popstab_sim::RoundStats) recording (the pre-overhaul
//!   default path),
//! * `single_fast_rps` — one engine on the recording-free
//!   [`run_until`](popstab_sim::Engine::run_until) fast path,
//! * `batch_rps` — one engine per [`BatchRunner`] worker, aggregate
//!   throughput (equals `single_fast_rps` on a single-core host),
//! * `par_rps` — **one** engine with the step phase of every round sharded
//!   across `round_threads` workers
//!   ([`run_until_par`](popstab_sim::Engine::run_until_par)): the
//!   single-run multi-core number the intra-round parallelism exists for.
//!   On a single-core host this degenerates to the serial fast path run
//!   through the parallel machinery (measuring its overhead); the ≥3×
//!   target at `N = 65536` applies to 4+-core hosts.
//!
//! The JSON lands in the working directory so CI can archive the perf
//! trajectory; a `--quick` run uses shorter horizons but the same shape.

use std::time::Instant;

use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_sim::batch::job_seed;
use popstab_sim::{BatchRunner, Engine, SimConfig};

/// One scale's measurements.
struct Workload {
    n: u64,
    rounds: u64,
    single_recorded_rps: f64,
    single_fast_rps: f64,
    batch_rps: f64,
    batch_jobs: usize,
    par_rps: f64,
    par_workers: usize,
}

fn engine_at(n: u64, seed: u64) -> Engine<PopulationStability> {
    let params = Params::for_target(n).expect("bench target is a power of four");
    let cfg = SimConfig::builder().seed(seed).target(n).build().unwrap();
    Engine::with_population(PopulationStability::new(params), cfg, n as usize)
}

fn measure(n: u64, rounds: u64, workers: usize, round_threads: usize, reps: u32) -> Workload {
    // Warm-up: populate allocator and branch predictors out of band.
    engine_at(n, 0).run_until(rounds / 10 + 1, |_| false);

    // Best-of-`reps` per cell: each rep re-runs the identical simulation,
    // so the max rate is the machine's capability with scheduler noise
    // stripped (the criterion-style estimator, without the dependency).
    // Engine construction is `O(N)` and stays outside every timed window.
    let (mut single_recorded_rps, mut single_fast_rps, mut batch_rps) = (0f64, 0f64, 0f64);
    let mut par_rps = 0f64;
    let runner = BatchRunner::new(workers);
    for _ in 0..reps {
        let mut engine = engine_at(n, 1);
        let start = Instant::now();
        engine.run_rounds(rounds);
        single_recorded_rps =
            single_recorded_rps.max(rounds as f64 / start.elapsed().as_secs_f64());

        let mut engine = engine_at(n, 1);
        let start = Instant::now();
        engine.run_until(rounds, |_| false);
        single_fast_rps = single_fast_rps.max(rounds as f64 / start.elapsed().as_secs_f64());

        let engines: Vec<_> = (0..workers as u64)
            .map(|job| engine_at(n, job_seed(1, job)))
            .collect();
        let start = Instant::now();
        runner.run(engines, |_, mut engine| engine.run_until(rounds, |_| false));
        batch_rps = batch_rps.max((rounds * workers as u64) as f64 / start.elapsed().as_secs_f64());

        // Intra-round sharding: one simulation, `round_threads` workers
        // inside each round (bit-identical trajectory to `single_fast`).
        let mut engine = engine_at(n, 1);
        let start = Instant::now();
        engine.run_until_par(rounds, round_threads, |_| false);
        par_rps = par_rps.max(rounds as f64 / start.elapsed().as_secs_f64());
    }

    Workload {
        n,
        rounds,
        single_recorded_rps,
        single_fast_rps,
        batch_rps,
        batch_jobs: workers,
        par_rps,
        par_workers: round_threads,
    }
}

/// Runs the benchmark, prints the table, and writes `BENCH_engine.json`.
pub fn run(quick: bool) {
    // Recorded alongside the numbers so trajectory comparisons across PRs
    // and hosts are interpretable: rps under different stream versions or
    // core counts are different experiments, not regressions/improvements.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = popstab_sim::batch::default_jobs();
    // `--round-threads` override if given (including an explicit 1, which
    // measures the parallel machinery's serial overhead), else every core
    // the host offers.
    let round_threads = popstab_sim::batch::round_threads_override().unwrap_or(workers);
    let scale = if quick { 10 } else { 1 };
    let reps = if quick { 1 } else { 5 };
    // (target N, measured rounds): horizons sized so one cell is a few
    // hundred ms — long enough to dominate timer noise, short enough that
    // sustained-load CPU throttling doesn't contaminate the best-of reps.
    let plan: &[(u64, u64)] = &[
        (1024, 6000 / scale),
        (16384, 1600 / scale),
        (65536, 400 / scale),
    ];
    println!(
        "B1: engine throughput (PopulationStability, {} batch workers, \
         {round_threads} intra-round threads, best of {reps})\n",
        workers
    );
    let workloads: Vec<Workload> = plan
        .iter()
        .map(|&(n, rounds)| {
            let w = measure(n, rounds.max(20), workers, round_threads, reps);
            println!(
                "N={:<6} rounds={:<5} single_recorded={:>9.0} rps  single_fast={:>9.0} rps  batch({}x)={:>9.0} rps  par({}t)={:>9.0} rps",
                w.n, w.rounds, w.single_recorded_rps, w.single_fast_rps, w.batch_jobs, w.batch_rps,
                w.par_workers, w.par_rps
            );
            w
        })
        .collect();

    let mut json = String::from("{\n  \"benchmark\": \"engine-rounds-per-sec\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!(
        "  \"agent_stream_version\": {},\n",
        popstab_sim::rng::AGENT_STREAM_VERSION
    ));
    json.push_str(&format!(
        "  \"matching_stream_version\": {},\n",
        popstab_sim::matching::MATCHING_STREAM_VERSION
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"single_recorded_rps\": {:.1}, \
             \"single_fast_rps\": {:.1}, \"batch_rps\": {:.1}, \"batch_jobs\": {}, \
             \"par_rps\": {:.1}, \"par_workers\": {}}}{}\n",
            w.n,
            w.rounds,
            w.single_recorded_rps,
            w.single_fast_rps,
            w.batch_rps,
            w.batch_jobs,
            w.par_rps,
            w.par_workers,
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}
