//! **B1 — Engine throughput benchmark → `BENCH_engine.json`.**
//!
//! Measures rounds/sec of the substrate running [`PopulationStability`]
//! near equilibrium at five scales (the powers of four bracketing 1k, 10k
//! and 100k agents, plus the large-N pair `2^20` and `2^22` that the
//! columnar store exists for), in several configurations. Every engine
//! opts into the columnar (struct-of-arrays) step path — the shipping
//! fast-path configuration, bit-identical to the scalar loop — so the
//! numbers here track what the resident-column kernels actually deliver,
//! and `mem_bytes_per_agent` reports the resident footprint that layout
//! buys. `--n <list>` (comma-separated targets, powers of four ≥ 1024)
//! overrides the scale plan for one-off sweeps.
//!
//! Every path runs through the unified driver ([`Engine::run`] with a
//! [`RunSpec`]) — the same code the experiments and the integration suites
//! drive:
//!
//! * `single_recorded_rps` — one engine with a per-round
//!   [`RecordStats`] observer (the recording
//!   path),
//! * `single_fast_rps` — one engine with the `()` observer (the
//!   recording-free fast path; the Observer abstraction must cost nothing
//!   here, which the committed-baseline check below enforces),
//! * `batch_rps` — one engine per [`BatchRunner`] worker, aggregate
//!   throughput (equals `single_fast_rps` on a single-core host),
//! * `par_rps` — **one** engine with the step phase of every round sharded
//!   across `round_threads` workers
//!   ([`Threads::Sharded`](popstab_sim::Threads)): the single-run
//!   multi-core number the intra-round parallelism exists for. On a
//!   single-core host this degenerates to the serial fast path run through
//!   the parallel machinery (measuring its overhead); the ≥3× target at
//!   `N = 65536` applies to 4+-core hosts.
//!
//! The JSON lands in the working directory so CI can archive the perf
//! trajectory; a `--quick` run uses shorter horizons but the same shape.
//! Before overwriting, a committed `BENCH_engine.json` from the same kind
//! of run (non-quick, same stream versions, same core count) serves as a
//! regression baseline for `single_fast_rps` at `N = 65536`.

use std::sync::OnceLock;
use std::time::Instant;

use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_sim::batch::job_seed;
use popstab_sim::{BatchRunner, Engine, MetricsRecorder, RecordStats, RunSpec, SimConfig};

/// One scale's measurements.
struct Workload {
    n: u64,
    rounds: u64,
    single_recorded_rps: f64,
    single_fast_rps: f64,
    batch_rps: f64,
    batch_jobs: usize,
    par_rps: f64,
    par_workers: usize,
    /// Resident simulation bytes per agent after the fast run — agent
    /// vector, round scratch, and the columnar store's retained buffers
    /// ([`Engine::approx_mem_bytes`] / `n`). The figure the SoA layout is
    /// accountable to at `N = 2^20`/`2^22`.
    mem_bytes_per_agent: f64,
    /// `par_rps / par_workers`: intra-round scaling efficiency in
    /// host-independent units (equals `par_rps` on a single-core host).
    par_rps_per_core: f64,
}

/// `--n` override for the scale plan, set once by the CLI before `run`.
static N_OVERRIDE: OnceLock<Vec<u64>> = OnceLock::new();

/// Replaces the default scale plan with `ns` (validated by the caller:
/// powers of four ≥ 1024). First call wins; later calls are ignored.
pub fn set_n_override(ns: Vec<u64>) {
    let _ = N_OVERRIDE.set(ns);
}

/// Whether `n` is a scale [`Params::for_target`] accepts — a power of
/// four no smaller than the paper's minimum population.
pub fn valid_target(n: u64) -> bool {
    n >= 1024 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2)
}

fn engine_at(n: u64, seed: u64) -> Engine<PopulationStability> {
    let params = Params::for_target(n).expect("bench target is a power of four");
    let cfg = SimConfig::builder().seed(seed).target(n).build().unwrap();
    let mut engine = Engine::with_population(PopulationStability::new(params), cfg, n as usize);
    // The columnar store is the configuration these numbers describe; the
    // trajectory is bit-identical to the scalar loop either way.
    engine.set_columnar(true);
    engine
}

fn measure(n: u64, rounds: u64, workers: usize, round_threads: usize, reps: u32) -> Workload {
    // Warm-up: populate allocator and branch predictors out of band.
    engine_at(n, 0).run(RunSpec::rounds(rounds / 10 + 1), &mut ());

    // Best-of-`reps` per cell: each rep re-runs the identical simulation,
    // so the max rate is the machine's capability with scheduler noise
    // stripped (the criterion-style estimator, without the dependency).
    // Engine construction is `O(N)` and stays outside every timed window.
    let (mut single_recorded_rps, mut single_fast_rps, mut batch_rps) = (0f64, 0f64, 0f64);
    let mut par_rps = 0f64;
    let mut mem_bytes = 0usize;
    let runner = BatchRunner::new(workers);
    for _ in 0..reps {
        let mut engine = engine_at(n, 1);
        let mut rec = MetricsRecorder::new();
        let start = Instant::now();
        engine.run(RunSpec::rounds(rounds), &mut RecordStats::new(&mut rec));
        single_recorded_rps =
            single_recorded_rps.max(rounds as f64 / start.elapsed().as_secs_f64());

        let mut engine = engine_at(n, 1);
        let start = Instant::now();
        engine.run(RunSpec::rounds(rounds), &mut ());
        single_fast_rps = single_fast_rps.max(rounds as f64 / start.elapsed().as_secs_f64());
        // Footprint after a settled fast run: buffers are at their
        // steady-state capacities, columns still resident.
        mem_bytes = mem_bytes.max(engine.approx_mem_bytes());

        let engines: Vec<_> = (0..workers as u64)
            .map(|job| engine_at(n, job_seed(1, job)))
            .collect();
        let start = Instant::now();
        runner.run(engines, |_, mut engine| {
            engine.run(RunSpec::rounds(rounds), &mut ())
        });
        batch_rps = batch_rps.max((rounds * workers as u64) as f64 / start.elapsed().as_secs_f64());

        // Intra-round sharding: one simulation, `round_threads` workers
        // inside each round (bit-identical trajectory to `single_fast`).
        let mut engine = engine_at(n, 1);
        let start = Instant::now();
        engine.run(RunSpec::rounds(rounds).sharded(round_threads), &mut ());
        par_rps = par_rps.max(rounds as f64 / start.elapsed().as_secs_f64());
    }

    Workload {
        n,
        rounds,
        single_recorded_rps,
        single_fast_rps,
        batch_rps,
        batch_jobs: workers,
        par_rps,
        par_workers: round_threads,
        mem_bytes_per_agent: mem_bytes as f64 / n as f64,
        par_rps_per_core: par_rps / round_threads as f64,
    }
}

/// Reads the committed `BENCH_engine.json` (if any) and returns its
/// `single_fast_rps` at `n`, provided the committed run is comparable with
/// a run of this build: non-quick, same stream versions, same core count.
/// The JSON is the fixed shape this module writes, so a line scan suffices
/// (no JSON dependency in the build environment).
fn committed_single_fast_rps(n: u64, quick: bool, host_cores: usize) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_engine.json").ok()?;
    let field = |name: &str| -> Option<String> {
        let at = text.find(&format!("\"{name}\":"))?;
        let rest = &text[at + name.len() + 3..];
        let end = rest.find([',', '\n', '}'])?;
        Some(rest[..end].trim().to_string())
    };
    if quick || field("quick")?.trim() != "false" {
        return None;
    }
    if field("host_cores")?.parse::<usize>().ok()? != host_cores {
        return None;
    }
    if field("agent_stream_version")?.parse::<u32>().ok()? != popstab_sim::rng::AGENT_STREAM_VERSION
        || field("matching_stream_version")?.parse::<u32>().ok()?
            != popstab_sim::matching::MATCHING_STREAM_VERSION
    {
        return None;
    }
    // Find the workload line for this `n` and pull its single_fast_rps.
    let line = text.lines().find(|l| l.contains(&format!("\"n\": {n},")))?;
    let at = line.find("\"single_fast_rps\":")?;
    let rest = &line[at + "\"single_fast_rps\":".len()..];
    let end = rest.find(',')?;
    rest[..end].trim().parse::<f64>().ok()
}

/// Runs the benchmark, prints the table, and writes `BENCH_engine.json`.
pub fn run(quick: bool) {
    // Recorded alongside the numbers so trajectory comparisons across PRs
    // and hosts are interpretable: rps under different stream versions or
    // core counts are different experiments, not regressions/improvements.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = popstab_sim::batch::default_jobs();
    // `--round-threads` override if given (including an explicit 1, which
    // measures the parallel machinery's serial overhead), else every core
    // the host offers.
    let round_threads = popstab_sim::batch::round_threads_override().unwrap_or(workers);
    let scale = if quick { 10 } else { 1 };
    let reps = if quick { 1 } else { 5 };
    // (target N, measured rounds): horizons sized so one cell is a few
    // hundred ms — long enough to dominate timer noise, short enough that
    // sustained-load CPU throttling doesn't contaminate the best-of reps.
    // The formula reproduces the historical plan (1024 → 6000, 16384 →
    // 1600, 65536 → 400) and extends it to the large-N pair, where the
    // floor keeps a cell at a dozen-plus rounds rather than seconds each.
    let default_ns: &[u64] = &[1024, 16384, 65536, 1 << 20, 1 << 22];
    let ns = N_OVERRIDE.get().map_or(default_ns, Vec::as_slice).to_vec();
    let plan: Vec<(u64, u64)> = ns
        .iter()
        .map(|&n| (n, ((400 * 65536) / n).clamp(12, 6000) / scale))
        .collect();
    println!(
        "B1: engine throughput (PopulationStability, {} batch workers, \
         {round_threads} intra-round threads, best of {reps})\n",
        workers
    );
    // Read the regression baseline *before* overwriting the file below.
    let baseline_fast_65536 = committed_single_fast_rps(65536, quick, host_cores);
    let workloads: Vec<Workload> = plan
        .iter()
        .map(|&(n, rounds)| {
            let w = measure(n, rounds.max(20), workers, round_threads, reps);
            println!(
                "N={:<7} rounds={:<5} single_recorded={:>9.0} rps  single_fast={:>9.0} rps  batch({}x)={:>9.0} rps  par({}t)={:>9.0} rps  mem={:>5.1} B/agent",
                w.n, w.rounds, w.single_recorded_rps, w.single_fast_rps, w.batch_jobs, w.batch_rps,
                w.par_workers, w.par_rps, w.mem_bytes_per_agent
            );
            w
        })
        .collect();

    // Observer-indirection regression gate: on a host comparable to the one
    // that recorded the committed file, the fast path through the generic
    // driver must stay within noise of the committed `single_fast_rps` at
    // the largest scale (0.6x covers container-to-container jitter; a real
    // abstraction cost would show up far below that).
    // A `--n` override that skips N = 65536 has nothing to compare.
    let fresh_fast_65536 = workloads
        .iter()
        .find(|w| w.n == 65536)
        .map(|w| w.single_fast_rps);
    if let (Some(committed), Some(fresh)) = (baseline_fast_65536, fresh_fast_65536) {
        println!(
            "\nbaseline check: single_fast_rps @ N=65536 fresh {fresh:.0} vs committed {committed:.0} ({:+.0}%)",
            100.0 * (fresh - committed) / committed
        );
        assert!(
            fresh >= 0.6 * committed,
            "single_fast_rps at N=65536 regressed beyond noise: {fresh:.0} vs committed {committed:.0}"
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"engine-rounds-per-sec\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!(
        "  \"agent_stream_version\": {},\n",
        popstab_sim::rng::AGENT_STREAM_VERSION
    ));
    json.push_str(&format!(
        "  \"matching_stream_version\": {},\n",
        popstab_sim::matching::MATCHING_STREAM_VERSION
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"single_recorded_rps\": {:.1}, \
             \"single_fast_rps\": {:.1}, \"batch_rps\": {:.1}, \"batch_jobs\": {}, \
             \"par_rps\": {:.1}, \"par_workers\": {}, \
             \"mem_bytes_per_agent\": {:.1}, \"par_rps_per_core\": {:.1}}}{}\n",
            w.n,
            w.rounds,
            w.single_recorded_rps,
            w.single_fast_rps,
            w.batch_rps,
            w.batch_jobs,
            w.par_rps,
            w.par_workers,
            w.mem_bytes_per_agent,
            w.par_rps_per_core,
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}
