//! **F1 — The restoring drift field** (Lemma 8).
//!
//! Claim: the expected per-epoch population change is positive below the
//! equilibrium and negative above it, with magnitude growing in the
//! deviation. We print the measured drift next to two model predictions:
//! the paper's asymptotic/CLT linear model and this repository's exact
//! finite-N Poisson model (which is the one that matches at these scales).

use popstab_analysis::drift::measure_drift;
use popstab_analysis::equilibrium::{exact_epoch_drift, expected_epoch_drift};
use popstab_analysis::report::{fmt_f64, Table};
use popstab_core::params::Params;

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let configs: &[(u64, u32)] = if quick {
        &[(1024, 24)]
    } else {
        &[(1024, 64), (4096, 32)]
    };
    let fractions = [0.3, 0.5, 0.7, 0.85, 1.0, 1.15, 1.3, 1.6];

    println!("F1: restoring drift field (fractions of N; trials per point shown per size)\n");
    for &(n, trials) in configs {
        let params = Params::for_target(n).unwrap();
        println!("N = {n} ({trials} single-epoch trials per point)");
        let mut table = Table::new([
            "m0/N",
            "m0",
            "observed E[Δ]",
            "± stderr",
            "exact model",
            "CLT model",
        ]);
        for (i, f) in fractions.iter().enumerate() {
            let m0 = (f * n as f64).round() as usize;
            let obs = measure_drift(&params, m0, 1.0, trials, 4242 + i as u64 * 97);
            table.row([
                fmt_f64(*f, 2),
                m0.to_string(),
                fmt_f64(obs.mean(), 2),
                fmt_f64(obs.stderr(), 2),
                fmt_f64(exact_epoch_drift(&params, m0 as f64, 1.0), 2),
                fmt_f64(expected_epoch_drift(&params, m0 as f64, 1.0), 2),
            ]);
        }
        println!("{table}");
    }
    println!("Shape check: sign flips from + to − across the sweep, matching the exact model;");
    println!("the CLT column shows the paper's asymptotic constants (valid only for huge N).\n");
}
