//! **F7b — Finite-size equilibrium: CLT vs exact vs measured.**
//!
//! The paper's balance point is asymptotically `N`; the CLT refinement
//! gives `m* = N − 8√N`; conditioning on the Poisson leader count gives the
//! exact finite-N equilibrium `m°`, which the long-run simulation confirms.

use popstab_analysis::equilibrium::{equilibrium_population, exact_equilibrium};
use popstab_analysis::report::{fmt_f64, Table};
use popstab_core::params::Params;
use popstab_sim::BatchRunner;

use crate::{run_clean, JobSpec};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    println!("F7b: equilibrium population — models vs long-run simulation\n");
    let mut table = Table::new([
        "N",
        "m* (CLT)",
        "m° (exact)",
        "m°/m*",
        "measured (time-avg)",
        "epochs",
    ]);
    let measured_ns: &[u64] = if quick { &[1024] } else { &[1024, 4096] };
    let sim_epochs: u64 = if quick { 80 } else { 250 };
    // The long-run simulations (one per measured N) run as one batch on the
    // epoch-end recording stride; the model columns are closed-form.
    let measured = BatchRunner::from_env().run(measured_ns.to_vec(), |_, n| {
        let params = Params::for_target(n).unwrap();
        let m_eq = exact_equilibrium(&params, 1.0);
        let mut spec = JobSpec::new(31, sim_epochs).record_epoch_ends(&params);
        spec.initial = Some(m_eq as usize);
        let run = run_clean(&params, spec);
        let epoch = u64::from(params.epoch_len());
        let pops = run.trajectory().epoch_end_populations(epoch);
        (
            n,
            pops.iter().sum::<usize>() as f64 / pops.len().max(1) as f64,
        )
    });
    for log2_n in [10u32, 12, 14, 16, 20, 24] {
        let n = 1u64 << log2_n;
        let params = Params::for_target(n).unwrap();
        let m_star = equilibrium_population(&params);
        let m_eq = exact_equilibrium(&params, 1.0);
        let (measured, epochs) = match measured.iter().find(|&&(m, _)| m == n) {
            Some(&(_, mean)) => (fmt_f64(mean, 0), sim_epochs.to_string()),
            None => ("-".to_string(), "-".to_string()),
        };
        table.row([
            format!("2^{log2_n}"),
            fmt_f64(m_star, 0),
            fmt_f64(m_eq, 0),
            fmt_f64(m_eq / m_star, 3),
            measured,
            epochs,
        ]);
    }
    println!("{table}");
    println!("Shape check: m°/m* → 1 as N grows (the finite-size correction vanishes).\n");
}
