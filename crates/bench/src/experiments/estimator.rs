//! **F7 — Population size is encoded in the color variance** (§1.3.2).
//!
//! Harvest the per-epoch color imbalance `d = c₀ − c₁` at evaluation time
//! and invert `E[d²] = m·√N/8`. Single epochs are χ²₁-noisy; the average
//! concentrates at rate `√(2/epochs)`.

use popstab_analysis::estimator::VarianceEstimator;
use popstab_analysis::report::{fmt_f64, Table};
use popstab_core::params::Params;
use popstab_sim::BatchRunner;

use crate::{run_clean, JobSpec};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let ns: &[u64] = if quick { &[1024] } else { &[1024, 4096] };
    let epochs: u64 = if quick { 30 } else { 80 };
    println!("F7: variance-based size estimation over {epochs} epochs\n");
    let mut table = Table::new([
        "N",
        "true mean pop",
        "estimate",
        "rel err",
        "expected ±",
        "epochs sampled",
    ]);
    // One run per N, batched. Each run records only the evaluation-round
    // snapshots the estimator harvests (the recording-light stride), so
    // the per-round observation scan is paid once per epoch, not per
    // round; the "true" mean is the mean population over those same
    // evaluation snapshots — the quantity `E[d²] = m·√N/8` is about.
    let rows = BatchRunner::from_env().run(ns.to_vec(), |_, n| {
        let params = Params::for_target(n).unwrap();
        let spec = JobSpec::new(2718, epochs).record_eval_rounds(&params);
        let run = run_clean(&params, spec);
        let stats = run.metrics.rounds();
        let true_mean =
            stats.iter().map(|s| s.population).sum::<usize>() as f64 / stats.len().max(1) as f64;
        let mut est = VarianceEstimator::new(&params);
        est.push_trace(&params, stats);
        (n, true_mean, est)
    });
    for (n, true_mean, est) in rows {
        let m_hat = est.estimate().unwrap_or(f64::NAN);
        table.row([
            n.to_string(),
            fmt_f64(true_mean, 0),
            fmt_f64(m_hat, 0),
            format!("{:+.1}%", 100.0 * (m_hat - true_mean) / true_mean),
            format!("±{:.0}%", 100.0 * est.relative_stderr().unwrap_or(f64::NAN)),
            est.samples().to_string(),
        ]);
    }
    println!("{table}");
    println!("Shape check: the estimate lands within the χ²-predicted error band although no");
    println!("agent ever holds more than a few bits — the size lives in the color variance.\n");
}
