//! **F5 — Robustness in the matching fraction γ.**
//!
//! The model guarantees only that *at least* a γ fraction of agents is
//! matched each round. Both the drift and the noise scale with γ, so the
//! equilibrium is γ-invariant while convergence slows; recruitment still
//! completes because `T_inner = log²N = ω(log N / γ)` for constant γ.

use popstab_analysis::equilibrium::exact_equilibrium;
use popstab_analysis::report::{fmt_f64, fmt_pass, Table};
use popstab_core::params::Params;
use popstab_sim::{BatchRunner, MatchingModel};

use crate::{run_clean, JobSpec};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let n: u64 = 1024;
    let params = Params::for_target(n).unwrap();
    let epochs: u64 = if quick { 15 } else { 40 };
    println!("F5: matching-fraction sweep at N = {n}, {epochs} epochs\n");
    let mut table = Table::new(["gamma", "model", "min", "max", "final", "m°(γ)", "in band"]);
    // One independent simulation per matching model: the sweep runs as one
    // batch (`--jobs` controls the worker count; rows are identical for
    // any value).
    let configs = [
        (0.25, MatchingModel::ExactFraction(0.25)),
        (0.5, MatchingModel::ExactFraction(0.5)),
        (0.5, MatchingModel::RandomFraction { min_gamma: 0.5 }),
        (1.0, MatchingModel::Full),
    ];
    let rows = BatchRunner::from_env().run(configs.to_vec(), |_, (gamma, model)| {
        let mut spec = JobSpec::new(88, epochs);
        spec.gamma = gamma;
        spec.matching = Some(model);
        let run = run_clean(&params, spec);
        let (lo, hi) = run.population_range().unwrap();
        (gamma, model, lo, hi, run.population())
    });
    for (gamma, model, lo, hi, final_pop) in rows {
        let m_eq = exact_equilibrium(&params, gamma);
        let in_band = lo as f64 >= 0.5 * m_eq && (hi as f64) <= (1.6 * m_eq).max(1.25 * n as f64);
        table.row([
            fmt_f64(gamma, 2),
            format!("{model:?}"),
            lo.to_string(),
            hi.to_string(),
            final_pop.to_string(),
            fmt_f64(m_eq, 0),
            fmt_pass(in_band),
        ]);
    }
    println!("{table}");
    println!("Shape check: the equilibrium is γ-invariant; smaller γ only slows convergence.\n");
}
