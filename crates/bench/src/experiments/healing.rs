//! **F6 — Recovery from trauma** (the paper's biological motivation).
//!
//! A one-shot shock — injury (mass deletion) or hyper-proliferation (mass
//! insertion) — displaces the population far from equilibrium; the
//! restoring drift heals it back. The recovery rate is the drift itself,
//! so the deficit decays exponentially with the model time constant
//! (≈ `8√N/γ` epochs asymptotically; somewhat faster below equilibrium at
//! small N where the exact drift is stronger than linear).

use popstab_adversary::{Trauma, TraumaKind};
use popstab_analysis::equilibrium::{exact_epoch_drift, exact_equilibrium};
use popstab_analysis::report::{fmt_f64, Table};
use popstab_core::params::Params;
use popstab_sim::BatchRunner;

use crate::{run_protocol, JobSpec};

/// Runs the experiment and prints its tables.
pub fn run(quick: bool) {
    let n: u64 = 4096;
    let params = Params::for_target(n).unwrap();
    let epoch = u64::from(params.epoch_len());
    let m_eq = exact_equilibrium(&params, 1.0);
    let post_epochs: u64 = if quick { 60 } else { 150 };

    println!("F6: trauma and healing at N = {n} (m° = {m_eq:.0}), shock at epoch 2\n");
    // The two shock scenarios are independent simulations: run them as one
    // batch, sampling only epoch-end populations (the only records this
    // figure consumes) via the recording stride.
    let shocks = [
        ("injury -70%", TraumaKind::Injury, 0.7),
        ("proliferation +70%", TraumaKind::Proliferation, 0.7),
    ];
    let outcomes = BatchRunner::from_env().run(shocks.to_vec(), |_, (label, kind, fraction)| {
        let adv = Trauma::new(params.clone(), kind, fraction, 2 * epoch);
        let mut spec = JobSpec::new(99, 2 + post_epochs).record_epoch_ends(&params);
        spec.budget = usize::MAX;
        let run = run_protocol(&params, adv, spec);
        (label, run.trajectory().epoch_end_populations(epoch))
    });
    for (label, pops) in outcomes {
        let wounded = pops[2] as f64;
        let rate = exact_epoch_drift(&params, wounded, 1.0);

        println!("{label}: wounded to {wounded:.0}, model drift there = {rate:+.1}/epoch");
        let mut table = Table::new(["epoch", "population", "deficit vs m°"]);
        let stride = (post_epochs / 10).max(1) as usize;
        for (e, p) in pops.iter().enumerate() {
            if e >= 2 && (e - 2) % stride == 0 {
                table.row([e.to_string(), p.to_string(), fmt_f64(*p as f64 - m_eq, 0)]);
            }
        }
        println!("{table}");
        let final_pop = *pops.last().unwrap() as f64;
        let recovered_frac = (final_pop - wounded) / (m_eq - wounded);
        println!(
            "recovered {:.0}% of the deficit in {post_epochs} epochs \
             (model time constant ≈ {:.0} epochs)\n",
            100.0 * recovered_frac.clamp(-1.0, 2.0),
            popstab_analysis::equilibrium::time_constant_epochs(&params, 1.0)
        );
    }
    println!("Shape check: both shocks heal monotonically toward m°; healing is gradual —");
    println!("the paper's guarantee is prevention (small per-round K), not instant repair.\n");
}
