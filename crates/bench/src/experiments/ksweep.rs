//! **F3 — Adversary tolerance threshold.**
//!
//! Claim shape: the protocol tolerates budgets up to its restoring
//! capacity, which grows polynomially in `N` (the paper's per-round
//! `K = N^{1/4−ε}` becomes, at simulation scale, a per-epoch budget
//! bounded by the maximal drift ≈ `γ·√N/16` — see
//! `popstab_adversary::throttle` for the translation). We sweep the
//! per-epoch deletion budget and locate the collapse threshold, comparing
//! it against the exact-model capacity.

use popstab_adversary::{RandomDeleter, Throttle};
use popstab_analysis::equilibrium::{exact_equilibrium, max_exact_drift};
use popstab_analysis::report::{fmt_f64, Table};
use popstab_core::params::Params;
use popstab_sim::BatchRunner;

use crate::{run_protocol, JobSpec};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let ns: &[u64] = if quick { &[1024] } else { &[1024, 4096] };
    let epochs: u64 = if quick { 60 } else { 150 };
    let budgets: &[usize] = &[0, 1, 2, 4, 8, 16, 32, 64];

    println!("F3: per-epoch deletion budget sweep ({epochs} epochs; collapse = final < 0.3·m°)\n");
    // Every (N, k) cell is an independent simulation: the full grid runs as
    // one batch (`--jobs` controls the worker count; rows are identical for
    // any value), and only the final population matters, so each cell
    // records on the epoch-end stride instead of every round.
    let grid: Vec<(u64, usize)> = ns
        .iter()
        .flat_map(|&n| budgets.iter().map(move |&k| (n, k)))
        .collect();
    let finals = BatchRunner::from_env().run(grid, |_, (n, k)| {
        let params = Params::for_target(n).unwrap();
        let adv = Throttle::per_epoch(RandomDeleter::new(k), params.epoch_len());
        let mut spec = JobSpec::new(777, epochs).record_epoch_ends(&params);
        spec.budget = k;
        run_protocol(&params, adv, spec).population()
    });
    let mut finals = finals.into_iter();
    for &n in ns {
        let params = Params::for_target(n).unwrap();
        let m_eq = exact_equilibrium(&params, 1.0);
        let (_, capacity) = max_exact_drift(&params, 1.0);
        println!(
            "N = {n}: m° = {m_eq:.0}, max model drift ≈ {capacity:.1}/epoch \
             (a conservative floor; mid-epoch deletion raises the split rate)"
        );
        let mut table = Table::new(["k/epoch", "final", "final/m°", "verdict"]);
        let mut threshold: Option<usize> = None;
        for &k in budgets {
            let final_pop = finals.next().expect("one cell per (N, k)");
            let ratio = final_pop as f64 / m_eq;
            let collapsed = ratio < 0.3;
            if collapsed && threshold.is_none() {
                threshold = Some(k);
            }
            table.row([
                k.to_string(),
                final_pop.to_string(),
                fmt_f64(ratio, 2),
                if collapsed { "COLLAPSED" } else { "held" }.to_string(),
            ]);
        }
        println!("{table}");
        match threshold {
            Some(k) => println!(
                "observed collapse threshold: between {}/epoch and {k}/epoch \
                 (model floor {capacity:.1}/epoch)\n",
                budgets[budgets
                    .iter()
                    .position(|&b| b == k)
                    .unwrap()
                    .saturating_sub(1)]
            ),
            None => println!("no collapse within the swept budgets\n"),
        }
    }
    println!("Shape check: the threshold grows with N — tolerance scales polynomially in N,");
    println!("reproducing the paper's qualitative claim. The exact-model max drift is a");
    println!("conservative floor: mid-epoch deletions raise the active fraction and the");
    println!("realized tolerance is several times the floor.\n");
}
