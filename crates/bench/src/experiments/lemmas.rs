//! **T2–T6 — The bookkeeping lemmas** (Lemmas 3–7, §4.1–4.2).
//!
//! For each lemma we run the protocol under the scenario the lemma guards
//! against and report the observed extremum next to the (scale-adjusted)
//! bound:
//!
//! * Lemma 3 (T2): wrong-round agents under desync insertion,
//! * Lemma 4 (T3): active fraction under maximal insertion pressure,
//! * Lemma 5 (T4): recruitment quotas all exhausted at evaluation,
//! * Lemma 6 (T5): per-color counts near `m/16` under color flooding,
//! * Lemma 7 (T6): per-epoch deviation `Õ(√N)`.

use popstab_adversary::{ColorFlooder, DesyncInserter, Throttle};
use popstab_analysis::invariants::check_invariants;
use popstab_analysis::report::{fmt_f64, fmt_pass, Table};
use popstab_core::params::Params;
use popstab_core::state::Color;
use popstab_sim::NoOpAdversary;

use crate::{run_protocol, JobSpec};

/// A named, deferred protocol run producing its recorded metrics.
type Scenario = (
    &'static str,
    Box<dyn FnOnce() -> popstab_sim::MetricsRecorder>,
);

/// Runs the experiment and prints its tables.
pub fn run(quick: bool) {
    let n: u64 = 1024;
    let params = Params::for_target(n).unwrap();
    let epochs: u64 = if quick { 8 } else { 20 };
    let k = 4;

    println!("T2-T6: bookkeeping lemmas at N = {n} over {epochs} epochs (budget {k}/epoch)\n");

    let scenarios: Vec<Scenario> = vec![
        (
            "no adversary",
            Box::new({
                let params = params.clone();
                move || run_protocol(&params, NoOpAdversary, JobSpec::new(5, epochs)).metrics
            }),
        ),
        (
            "desync-inserter",
            Box::new({
                let params = params.clone();
                move || {
                    let adv = Throttle::per_epoch(
                        DesyncInserter::new(params.clone(), k, params.epoch_len() / 2),
                        params.epoch_len(),
                    );
                    let mut spec = JobSpec::new(6, epochs);
                    spec.budget = k;
                    run_protocol(&params, adv, spec).metrics
                }
            }),
        ),
        (
            "color-flooder",
            Box::new({
                let params = params.clone();
                move || {
                    let adv = Throttle::per_epoch(
                        ColorFlooder::new(params.clone(), k, Color::Zero),
                        params.epoch_len(),
                    );
                    let mut spec = JobSpec::new(7, epochs);
                    spec.budget = k;
                    run_protocol(&params, adv, spec).metrics
                }
            }),
        ),
    ];

    let mut table = Table::new(["scenario", "lemma", "observed", "bound", "pass"]);
    for (name, runner) in scenarios {
        let metrics = runner();
        let report = check_invariants(&params, 1.0, metrics.rounds());
        for (lemma, check) in [
            ("L3 wrong-round", report.lemma3_wrong_round),
            ("L4 active frac", report.lemma4_active_fraction),
            ("L6 color dev", report.lemma6_color_deviation),
            ("L7 epoch dev", report.lemma7_epoch_deviation),
        ] {
            table.row([
                name.to_string(),
                lemma.to_string(),
                fmt_f64(check.observed, 2),
                fmt_f64(check.bound, 2),
                fmt_pass(check.pass),
            ]);
        }
    }
    println!("{table}");

    // T4 / Lemma 5: recruitment completeness, inspected right before the
    // evaluation round. One batch job per seed, on the recording-free fast
    // path (only the end-of-recruitment state is inspected).
    let epoch = u64::from(params.epoch_len());
    let trials = if quick { 4 } else { 10 };
    let counts = popstab_sim::BatchRunner::from_env().run((0..trials).collect(), |_, seed: u64| {
        let cfg = popstab_sim::SimConfig::builder()
            .seed(900 + seed)
            .target(n)
            .build()
            .unwrap();
        let mut engine = popstab_sim::Engine::with_population(
            popstab_core::protocol::PopulationStability::new(params.clone()),
            cfg,
            n as usize,
        );
        engine.run(popstab_sim::RunSpec::rounds(epoch - 1), &mut ());
        let active = engine.agents().iter().filter(|a| a.active).count() as u64;
        let incomplete = engine
            .agents()
            .iter()
            .filter(|a| a.active && a.to_recruit != 0)
            .count() as u64;
        (active, incomplete)
    });
    let active_total: u64 = counts.iter().map(|c| c.0).sum();
    let incomplete_total: u64 = counts.iter().map(|c| c.1).sum();
    println!(
        "L5 recruitment completeness: {incomplete_total} of {active_total} active agents \
         entered evaluation with unfinished quotas ({} trials) — paper claims 0 w.h.p.\n",
        trials
    );
}
