//! **F8 — Maliciously-programmed agents** (the §1.2 extension).
//!
//! In the extended model (agents may remove detected-foreign partners,
//! malicious replication is rate-limited) the population survives malicious
//! insertion; the paper's impossibility argument reappears exactly when the
//! replication period ρ beats the contact-kill rate. We sweep ρ and γ.

use popstab_analysis::report::{fmt_pass, Table};
use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_extensions::{malicious_count, MaliciousInserter, WithMalice};
use popstab_sim::{Engine, MatchingModel, RunSpec, SimConfig, Threads};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let n: u64 = 1024;
    let params = Params::for_target(n).unwrap();
    let epoch = u64::from(params.epoch_len());
    let epochs: u64 = if quick { 3 } else { 8 };

    println!("F8: malicious agents in the extended model at N = {n}, {epochs} epochs,");
    println!("    1 malicious insertion/round, replication period ρ, matching fraction γ.");
    println!("    Per round a malicious agent spawns 1/ρ daughters and is killed with");
    println!("    probability γ·h (honest fraction h ≈ 1); kills and same-round splits are");
    println!("    simultaneous, so containment requires 1/ρ < γ·h. The paper's required");
    println!("    'bound on how frequently malicious agents can replicate' is exactly this.\n");

    let mut table = Table::new([
        "rho",
        "gamma",
        "malicious left",
        "population",
        "halted",
        "contained",
        "model says",
    ]);
    for &(rho, gamma) in &[
        (1u32, 0.25f64),
        (2, 0.25),
        (1, 1.0),
        (2, 1.0),
        (4, 1.0),
        (16, 1.0),
    ] {
        let proto = WithMalice::new(PopulationStability::new(params.clone()));
        let adv = MaliciousInserter::new(1, rho);
        let cfg = SimConfig::builder()
            .seed(47)
            .target(n)
            .adversary_budget(1)
            .matching(if gamma >= 1.0 {
                MatchingModel::Full
            } else {
                MatchingModel::ExactFraction(gamma)
            })
            .max_population(16 * n as usize)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(proto, adv, cfg, n as usize);
        engine.run(
            RunSpec::rounds(epochs * epoch).threads(Threads::from_env()),
            &mut (),
        );
        let mal = malicious_count(engine.agents());
        let contained = engine.halted().is_none() && mal < 100;
        let predicted_contained = 1.0 / f64::from(rho) < gamma * 0.9;
        table.row([
            rho.to_string(),
            format!("{gamma:.2}"),
            mal.to_string(),
            engine.population().to_string(),
            if engine.halted().is_some() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            fmt_pass(contained),
            if predicted_contained {
                "contained"
            } else {
                "explodes"
            }
            .to_string(),
        ]);
    }
    println!("{table}");
    println!("Shape check: containment flips exactly where 1/ρ crosses γ·h — unbounded");
    println!("replication (ρ=1) explodes even under full matching (the paper's");
    println!("impossibility), while any bounded rate under dense contact is contained.\n");
}
