//! One module per experiment; see DESIGN.md §4 for the index.

pub mod ablation;
pub mod accounting;
pub mod attack;
pub mod baselines;
pub mod bench;
pub mod drift;
pub mod equilibrium;
pub mod estimator;
pub mod gamma;
pub mod healing;
pub mod ksweep;
pub mod lemmas;
pub mod malice;
pub mod stability;
