//! **T1 — Stability with no adversary** (Theorem 1, adversary-free case).
//!
//! Claim: the population remains within a constant factor of the target for
//! any polynomial number of rounds, and per-epoch deviations are `Õ(√N)`
//! (Lemma 7). At simulation scale the operating point is the exact
//! finite-N equilibrium `m°` (≈ 0.8·m* here, see the `equilibrium`
//! experiment); we report the trajectory envelope relative to `m°`.

use popstab_analysis::equilibrium::exact_equilibrium;
use popstab_analysis::report::{fmt_f64, fmt_pass, Table};
use popstab_core::params::Params;

use crate::{run_clean, JobSpec};

/// Runs the experiment and prints its table.
pub fn run(quick: bool) {
    let ns: &[u64] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 4096, 16384]
    };
    let seeds: u64 = if quick { 2 } else { 4 };
    let epochs: u64 = if quick { 15 } else { 40 };

    println!("T1: stability with no adversary ({epochs} epochs, {seeds} seeds)");
    println!("    band: [0.6, 1.4]·m° where m° is the exact finite-N equilibrium\n");
    let mut table = Table::new([
        "N",
        "seed",
        "m*",
        "m_exact",
        "min",
        "max",
        "final",
        "max|Δ|/epoch",
        "√N·logN",
        "in band",
    ]);
    // The full (N, seed) grid runs as one batch (`--jobs` controls the
    // worker count; the rows are identical for any value).
    let grid: Vec<(u64, u64)> = ns
        .iter()
        .flat_map(|&n| (0..seeds).map(move |seed| (n, seed)))
        .collect();
    let rows = popstab_sim::BatchRunner::from_env().run(grid, |_, (n, seed)| {
        let params = Params::for_target(n).unwrap();
        let epoch = u64::from(params.epoch_len());
        let m_star = n as f64 - 8.0 * params.sqrt_n() as f64;
        let m_eq = exact_equilibrium(&params, 1.0);
        let run = run_clean(&params, JobSpec::new(seed * 1031 + 7, epochs));
        let (lo, hi) = run.population_range().unwrap();
        let max_dev = run.trajectory().max_epoch_deviation(epoch).unwrap_or(0);
        let in_band = lo as f64 >= 0.6 * m_eq && (hi as f64) <= 1.4 * m_eq.max(n as f64);
        [
            n.to_string(),
            seed.to_string(),
            fmt_f64(m_star, 0),
            fmt_f64(m_eq, 0),
            lo.to_string(),
            hi.to_string(),
            run.population().to_string(),
            max_dev.to_string(),
            fmt_f64(params.sqrt_n() as f64 * f64::from(params.log2_n()), 0),
            fmt_pass(in_band),
        ]
    });
    for row in rows {
        table.row(row);
    }
    println!("{table}");
}
