//! Experiment harness for the population-stability reproduction.
//!
//! The paper (PODC 2018) is a theory result with no empirical section, so
//! each analysis claim defines one experiment (see DESIGN.md §4 for the
//! index). The `experiments` binary regenerates every table/figure:
//!
//! ```sh
//! cargo run --release -p popstab-bench --bin experiments -- all
//! cargo run --release -p popstab-bench --bin experiments -- drift --quick
//! ```
//!
//! Criterion micro-benchmarks for the hot paths live in `benches/`.

pub mod experiments;

use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_core::state::AgentState;
use popstab_sim::{Adversary, Engine, MatchingModel, NoOpAdversary, SimConfig};

/// Shared run configuration for experiment drivers.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// RNG seed.
    pub seed: u64,
    /// Initial population (defaults to the target `N` if `None`).
    pub initial: Option<usize>,
    /// Matched fraction (1.0 = full matching).
    pub gamma: f64,
    /// Per-round adversary budget enforced by the engine.
    pub budget: usize,
    /// Number of epochs to run.
    pub epochs: u64,
}

impl RunSpec {
    /// A default spec: start at `N`, full matching, no adversary budget.
    pub fn new(seed: u64, epochs: u64) -> RunSpec {
        RunSpec {
            seed,
            initial: None,
            gamma: 1.0,
            budget: 0,
            epochs,
        }
    }
}

/// Builds and runs a protocol engine per `spec`, returning it for
/// inspection.
pub fn run_protocol<A: Adversary<AgentState>>(
    params: &Params,
    adversary: A,
    spec: RunSpec,
) -> Engine<PopulationStability, A> {
    let epoch = u64::from(params.epoch_len());
    let cfg = SimConfig::builder()
        .seed(spec.seed)
        .target(params.target())
        .adversary_budget(spec.budget)
        .matching(if spec.gamma >= 1.0 {
            MatchingModel::Full
        } else {
            MatchingModel::ExactFraction(spec.gamma)
        })
        .max_population(64 * params.target() as usize)
        .build()
        .expect("valid experiment config");
    let initial = spec.initial.unwrap_or(params.target() as usize);
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        adversary,
        cfg,
        initial,
    );
    engine.run_rounds(spec.epochs * epoch);
    engine
}

/// Convenience: run with no adversary.
pub fn run_clean(params: &Params, spec: RunSpec) -> Engine<PopulationStability, NoOpAdversary> {
    run_protocol(params, NoOpAdversary, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_clean_executes_requested_epochs() {
        let params = Params::for_target(1024).unwrap();
        let engine = run_clean(&params, RunSpec::new(1, 2));
        assert_eq!(engine.round(), 2 * u64::from(params.epoch_len()));
        assert!(engine.population() > 0);
    }

    #[test]
    fn run_spec_initial_override() {
        let params = Params::for_target(1024).unwrap();
        let mut spec = RunSpec::new(2, 0);
        spec.initial = Some(300);
        let engine = run_clean(&params, spec);
        assert_eq!(engine.population(), 300);
    }
}
