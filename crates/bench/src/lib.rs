//! Experiment harness for the population-stability reproduction.
//!
//! The paper (PODC 2018) is a theory result with no empirical section, so
//! each analysis claim defines one experiment (see DESIGN.md §4 for the
//! index). The `experiments` binary regenerates every table/figure:
//!
//! ```sh
//! cargo run --release -p popstab-bench --bin experiments -- all
//! cargo run --release -p popstab-bench --bin experiments -- drift --quick
//! cargo run --release -p popstab-bench --bin experiments -- --list
//! cargo run --release -p popstab-bench --bin experiments -- scenario clean-1024
//! ```
//!
//! Experiment drivers are declarative: a [`JobSpec`] describes one
//! protocol run (seed, matching, budget, epochs, recording stride),
//! [`run_protocol`] lowers it onto a [`Scenario`] +
//! [`Engine::run`](popstab_sim::Engine::run) with a
//! [`RecordStats`] observer, and the [`scenario`] module names ready-made
//! protocol/adversary/config combos the binary resolves by name.
//! Criterion micro-benchmarks for the hot paths live in `benches/`.

pub mod experiments;
pub mod scenario;

use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_core::state::AgentState;
use popstab_sim::{
    Adversary, Engine, MatchingModel, MetricsRecorder, NoOpAdversary, RecordStats, RunOutcome,
    RunSpec, Scenario, SimConfig, Threads, Trajectory,
};

/// Declarative description of one protocol experiment job.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// RNG seed.
    pub seed: u64,
    /// Initial population (defaults to the target `N` if `None`).
    pub initial: Option<usize>,
    /// Matched fraction (1.0 = full matching), used when `matching` is
    /// `None`.
    pub gamma: f64,
    /// Explicit matching-model override (e.g. `RandomFraction`); takes
    /// precedence over `gamma`.
    pub matching: Option<MatchingModel>,
    /// Per-round adversary budget enforced by the engine.
    pub budget: usize,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Recording stride as `(every, phase)` for the
    /// [`RecordStats`] observer; `None` records every round. Experiments
    /// that only consume per-epoch samples (e.g. via
    /// `epoch_end_populations` or the variance estimator) set a stride and
    /// skip the per-round observation scan.
    pub metrics: Option<(u64, u64)>,
}

impl JobSpec {
    /// A default spec: start at `N`, full matching, no adversary budget,
    /// full recording.
    pub fn new(seed: u64, epochs: u64) -> JobSpec {
        JobSpec {
            seed,
            initial: None,
            gamma: 1.0,
            matching: None,
            budget: 0,
            epochs,
            metrics: None,
        }
    }

    /// Records only epoch-end rounds (the `epoch_end_populations` /
    /// `max_epoch_deviation` sampling points) instead of every round.
    pub fn record_epoch_ends(mut self, params: &Params) -> JobSpec {
        self.metrics = Some((u64::from(params.epoch_len()), 0));
        self
    }

    /// Records only the evaluation-round snapshots the variance estimator
    /// harvests: the rounds whose stats report `majority_round ==
    /// eval_round` are those executed one round before the epoch boundary.
    pub fn record_eval_rounds(mut self, params: &Params) -> JobSpec {
        let epoch = u64::from(params.epoch_len());
        self.metrics = Some((epoch, epoch - 1));
        self
    }
}

/// A finished protocol run: the engine (for state inspection), the metrics
/// the [`RecordStats`] observer collected, and the driver outcome.
#[derive(Debug)]
pub struct ProtocolRun<A: Adversary<AgentState> = NoOpAdversary> {
    /// The engine after the run.
    pub engine: Engine<PopulationStability, A>,
    /// The recorded metrics (per the [`JobSpec::metrics`] stride).
    pub metrics: MetricsRecorder,
    /// What the driver did.
    pub outcome: RunOutcome,
}

impl<A: Adversary<AgentState>> ProtocolRun<A> {
    /// Final population.
    pub fn population(&self) -> usize {
        self.engine.population()
    }

    /// `(min, max)` of the population over every recorded round.
    pub fn population_range(&self) -> Option<(usize, usize)> {
        self.metrics.population_range()
    }

    /// Trajectory view over the recorded metrics.
    pub fn trajectory(&self) -> Trajectory<'_> {
        self.metrics.trajectory()
    }
}

/// Builds and runs a protocol engine per `spec`, returning the run for
/// inspection. Rounds execute serially unless an intra-round worker count
/// was configured (`experiments --round-threads` /
/// [`popstab_sim::batch::round_threads`]), in which case the step phase of
/// every round is sharded — by the engine's determinism contract the
/// results are bit-identical either way.
/// Lowers a [`JobSpec`] onto the [`Scenario`] it describes without running
/// it. [`run_protocol`] is `protocol_scenario` + drive-to-horizon; the
/// snapshot/resume/fork tooling builds engines from the scenario directly
/// (the `epochs` field of the spec is a run-time concern and is ignored
/// here).
pub fn protocol_scenario<A: Adversary<AgentState>>(
    params: &Params,
    adversary: A,
    spec: &JobSpec,
) -> Scenario<PopulationStability, A> {
    let matching = spec.matching.unwrap_or(if spec.gamma >= 1.0 {
        MatchingModel::Full
    } else {
        MatchingModel::ExactFraction(spec.gamma)
    });
    let cfg = SimConfig::builder()
        .seed(spec.seed)
        .target(params.target())
        .adversary_budget(spec.budget)
        .matching(matching)
        .max_population(64 * params.target() as usize)
        .build()
        .expect("valid experiment config");
    let initial = spec.initial.unwrap_or(params.target() as usize);
    Scenario::new(PopulationStability::new(params.clone()), cfg, initial).against(adversary)
}

pub fn run_protocol<A: Adversary<AgentState>>(
    params: &Params,
    adversary: A,
    spec: JobSpec,
) -> ProtocolRun<A> {
    let epoch = u64::from(params.epoch_len());
    let scenario = protocol_scenario(params, adversary, &spec);
    let run_spec = RunSpec::rounds(spec.epochs * epoch).threads(Threads::from_env());
    let mut metrics = MetricsRecorder::new();
    let (every, phase) = spec.metrics.unwrap_or((1, 0));
    let (engine, outcome) = scenario.run(
        run_spec,
        &mut RecordStats::stride(&mut metrics, every, phase),
    );
    ProtocolRun {
        engine,
        metrics,
        outcome,
    }
}

/// Convenience: run with no adversary.
pub fn run_clean(params: &Params, spec: JobSpec) -> ProtocolRun {
    run_protocol(params, NoOpAdversary, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_clean_executes_requested_epochs() {
        let params = Params::for_target(1024).unwrap();
        let run = run_clean(&params, JobSpec::new(1, 2));
        assert_eq!(run.engine.round(), 2 * u64::from(params.epoch_len()));
        assert_eq!(run.outcome.executed, run.engine.round());
        assert!(run.population() > 0);
        assert_eq!(run.metrics.len() as u64, run.outcome.executed);
    }

    #[test]
    fn job_spec_initial_override() {
        let params = Params::for_target(1024).unwrap();
        let mut spec = JobSpec::new(2, 0);
        spec.initial = Some(300);
        let run = run_clean(&params, spec);
        assert_eq!(run.population(), 300);
    }

    #[test]
    fn epoch_end_stride_records_once_per_epoch() {
        let params = Params::for_target(1024).unwrap();
        let run = run_clean(&params, JobSpec::new(3, 2).record_epoch_ends(&params));
        assert_eq!(run.metrics.len(), 2);
    }
}
