//! Experiment harness for the population-stability reproduction.
//!
//! The paper (PODC 2018) is a theory result with no empirical section, so
//! each analysis claim defines one experiment (see DESIGN.md §4 for the
//! index). The `experiments` binary regenerates every table/figure:
//!
//! ```sh
//! cargo run --release -p popstab-bench --bin experiments -- all
//! cargo run --release -p popstab-bench --bin experiments -- drift --quick
//! ```
//!
//! Criterion micro-benchmarks for the hot paths live in `benches/`.

pub mod experiments;

use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_core::state::AgentState;
use popstab_sim::{Adversary, Engine, MatchingModel, NoOpAdversary, SimConfig};

/// Shared run configuration for experiment drivers.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// RNG seed.
    pub seed: u64,
    /// Initial population (defaults to the target `N` if `None`).
    pub initial: Option<usize>,
    /// Matched fraction (1.0 = full matching).
    pub gamma: f64,
    /// Per-round adversary budget enforced by the engine.
    pub budget: usize,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Recording stride as `(metrics_every, metrics_phase)`; `None` records
    /// every round. Experiments that only consume per-epoch samples (e.g.
    /// via `epoch_end_populations` or the variance estimator) set a stride
    /// and skip the per-round observation scan.
    pub metrics: Option<(u64, u64)>,
}

impl RunSpec {
    /// A default spec: start at `N`, full matching, no adversary budget,
    /// full recording.
    pub fn new(seed: u64, epochs: u64) -> RunSpec {
        RunSpec {
            seed,
            initial: None,
            gamma: 1.0,
            budget: 0,
            epochs,
            metrics: None,
        }
    }

    /// Records only epoch-end rounds (the `epoch_end_populations` /
    /// `max_epoch_deviation` sampling points) instead of every round.
    pub fn record_epoch_ends(mut self, params: &Params) -> RunSpec {
        self.metrics = Some((u64::from(params.epoch_len()), 0));
        self
    }

    /// Records only the evaluation-round snapshots the variance estimator
    /// harvests: the rounds whose stats report `majority_round ==
    /// eval_round` are those executed one round before the epoch boundary.
    pub fn record_eval_rounds(mut self, params: &Params) -> RunSpec {
        let epoch = u64::from(params.epoch_len());
        self.metrics = Some((epoch, epoch - 1));
        self
    }
}

/// Builds and runs a protocol engine per `spec`, returning it for
/// inspection. Rounds execute serially unless an intra-round worker count
/// was configured (`experiments --round-threads` /
/// [`popstab_sim::batch::round_threads`]), in which case the step phase of
/// every round is sharded — by the engine's determinism contract the
/// results are bit-identical either way.
pub fn run_protocol<A: Adversary<AgentState>>(
    params: &Params,
    adversary: A,
    spec: RunSpec,
) -> Engine<PopulationStability, A> {
    let epoch = u64::from(params.epoch_len());
    let mut builder = SimConfig::builder();
    builder
        .seed(spec.seed)
        .target(params.target())
        .adversary_budget(spec.budget)
        .matching(if spec.gamma >= 1.0 {
            MatchingModel::Full
        } else {
            MatchingModel::ExactFraction(spec.gamma)
        })
        .max_population(64 * params.target() as usize);
    if let Some((every, phase)) = spec.metrics {
        builder.metrics_every(every).metrics_phase(phase);
    }
    let cfg = builder.build().expect("valid experiment config");
    let initial = spec.initial.unwrap_or(params.target() as usize);
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        adversary,
        cfg,
        initial,
    );
    let rounds = spec.epochs * epoch;
    let threads = popstab_sim::batch::round_threads();
    if threads > 1 {
        engine.run_rounds_par(rounds, threads);
    } else {
        engine.run_rounds(rounds);
    }
    engine
}

/// Convenience: run with no adversary.
pub fn run_clean(params: &Params, spec: RunSpec) -> Engine<PopulationStability, NoOpAdversary> {
    run_protocol(params, NoOpAdversary, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_clean_executes_requested_epochs() {
        let params = Params::for_target(1024).unwrap();
        let engine = run_clean(&params, RunSpec::new(1, 2));
        assert_eq!(engine.round(), 2 * u64::from(params.epoch_len()));
        assert!(engine.population() > 0);
    }

    #[test]
    fn run_spec_initial_override() {
        let params = Params::for_target(1024).unwrap();
        let mut spec = RunSpec::new(2, 0);
        spec.initial = Some(300);
        let engine = run_clean(&params, spec);
        assert_eq!(engine.population(), 300);
    }
}
