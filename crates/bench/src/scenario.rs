//! The named scenario registry.
//!
//! Each entry is a ready-made `(protocol, adversary, config)` combo built
//! on [`popstab_sim::Scenario`] and the [`JobSpec`] layer, runnable by name:
//!
//! ```sh
//! experiments --list              # print the registry
//! experiments scenario clean-1024 # run one entry
//! ```
//!
//! Scenario output is deterministic (no wall-clock lines), so the CI
//! determinism diff can run a registry entry at different `--round-threads`
//! values and require byte-identical reports.

use popstab_adversary::{DesyncInserter, RandomDeleter, Throttle, Trauma, TraumaKind};
use popstab_baselines::attempt1::SignalFlooder;
use popstab_baselines::Attempt1;
use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_core::state::AgentState;
use popstab_extensions::{malicious_count, MaliciousInserter, WithMalice};
use popstab_sim::{Adversary, MatchingModel, RunSpec, Scenario, SimConfig, Threads};

use crate::{run_clean, run_protocol, JobSpec, ProtocolRun};

/// One registry entry: a named, self-describing scenario.
pub struct NamedScenario {
    /// Registry key (`experiments scenario <name>`).
    pub name: &'static str,
    /// Protocol label for `--list`.
    pub protocol: &'static str,
    /// Adversary label for `--list`.
    pub adversary: &'static str,
    /// One-line config summary for `--list`.
    pub summary: &'static str,
    /// Runs the scenario and prints its report (`quick` shortens horizons).
    pub run: fn(bool),
}

/// Every named scenario, in listing order.
pub fn registry() -> &'static [NamedScenario] {
    REGISTRY
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static NamedScenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Prints the registry as the `--list` table.
pub fn print_list() {
    println!("named scenarios (run with `experiments scenario <name>`):");
    for s in REGISTRY {
        println!(
            "  {:<22} {:<20} {:<22} {}",
            s.name, s.protocol, s.adversary, s.summary
        );
    }
}

/// Standard report line for a protocol-run scenario.
fn report<A: Adversary<AgentState>>(name: &str, run: &ProtocolRun<A>) {
    let (lo, hi) = run.population_range().unwrap_or_else(|| {
        let p = run.population();
        (p, p)
    });
    println!(
        "scenario {name}: rounds={} population={} band=[{lo}, {hi}] halted={}",
        run.outcome.executed,
        run.population(),
        match run.outcome.halted {
            None => "no".to_string(),
            Some(reason) => format!("{reason:?}"),
        }
    );
}

fn clean(n: u64, seed: u64, quick: bool, name: &str) {
    let params = Params::for_target(n).unwrap();
    let epochs = if quick { 8 } else { 20 };
    report(name, &run_clean(&params, JobSpec::new(seed, epochs)));
}

const REGISTRY: &[NamedScenario] = &[
    NamedScenario {
        name: "clean-1024",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=1024, full matching, 20 epochs",
        run: |quick| clean(1024, 11, quick, "clean-1024"),
    },
    NamedScenario {
        name: "clean-4096",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=4096, full matching, 20 epochs",
        run: |quick| clean(4096, 12, quick, "clean-4096"),
    },
    NamedScenario {
        name: "deleter-throttled-1024",
        protocol: "PopulationStability",
        adversary: "RandomDeleter 2/epoch",
        summary: "N=1024, per-epoch metered deletion",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let adv = Throttle::per_epoch(RandomDeleter::new(2), params.epoch_len());
            let mut spec = JobSpec::new(13, if quick { 10 } else { 25 });
            spec.budget = 2;
            report("deleter-throttled-1024", &run_protocol(&params, adv, spec));
        },
    },
    NamedScenario {
        name: "trauma-injury-4096",
        protocol: "PopulationStability",
        adversary: "Trauma injury -70%",
        summary: "N=4096, one-shot shock at epoch 2, healing horizon",
        run: |quick| {
            let params = Params::for_target(4096).unwrap();
            let epoch = u64::from(params.epoch_len());
            let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.7, 2 * epoch);
            let mut spec = JobSpec::new(14, if quick { 20 } else { 60 }).record_epoch_ends(&params);
            spec.budget = usize::MAX;
            report("trauma-injury-4096", &run_protocol(&params, adv, spec));
        },
    },
    NamedScenario {
        name: "gamma-quarter-1024",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=1024, ExactFraction(0.25) matching",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let mut spec = JobSpec::new(15, if quick { 10 } else { 25 });
            spec.gamma = 0.25;
            report("gamma-quarter-1024", &run_clean(&params, spec));
        },
    },
    NamedScenario {
        name: "gamma-random-1024",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=1024, RandomFraction{min 0.5} matching",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let mut spec = JobSpec::new(16, if quick { 10 } else { 25 });
            spec.matching = Some(MatchingModel::RandomFraction { min_gamma: 0.5 });
            report("gamma-random-1024", &run_clean(&params, spec));
        },
    },
    NamedScenario {
        name: "desync-purge-1024",
        protocol: "PopulationStability",
        adversary: "DesyncInserter 4/epoch",
        summary: "N=1024, Algorithm-7 purge under clock-skew insertion",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let adv = Throttle::per_epoch(
                DesyncInserter::new(params.clone(), 4, params.epoch_len() / 2),
                params.epoch_len(),
            );
            let mut spec = JobSpec::new(17, if quick { 8 } else { 16 });
            spec.budget = 4;
            report("desync-purge-1024", &run_protocol(&params, adv, spec));
        },
    },
    NamedScenario {
        name: "attempt1-flood-1024",
        protocol: "Attempt1 (baseline)",
        adversary: "SignalFlooder 1/epoch",
        summary: "N=1024, the paper's predicted collapse",
        run: |quick| {
            let proto = Attempt1::new(1024);
            let epoch = u64::from(proto.epoch_len());
            let rounds = if quick { 40 * epoch } else { 150 * epoch };
            let cfg = SimConfig::builder()
                .seed(18)
                .target(1024)
                .adversary_budget(1)
                .max_population(64 * 1024)
                .build()
                .unwrap();
            let (engine, outcome) = Scenario::new(proto, cfg, 1024)
                .against(SignalFlooder::new(epoch as u32))
                .run(
                    RunSpec::until(rounds, |r| r.population_after < 512)
                        .threads(Threads::from_env()),
                    &mut (),
                );
            println!(
                "scenario attempt1-flood-1024: rounds={} population={} band=[{}, {}] collapsed={}",
                outcome.executed,
                engine.population(),
                outcome.min_population,
                outcome.max_population,
                outcome.stopped_early || engine.population() < 512
            );
        },
    },
    NamedScenario {
        name: "malice-rho4-1024",
        protocol: "WithMalice (ext. model)",
        adversary: "MaliciousInserter rho=4",
        summary: "N=1024, contact-kill containment race",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let epoch = u64::from(params.epoch_len());
            let epochs = if quick { 3 } else { 8 };
            let cfg = SimConfig::builder()
                .seed(19)
                .target(1024)
                .adversary_budget(1)
                .max_population(16 * 1024)
                .build()
                .unwrap();
            let proto = WithMalice::new(PopulationStability::new(params));
            let (engine, outcome) = Scenario::new(proto, cfg, 1024)
                .against(MaliciousInserter::new(1, 4))
                .run(
                    RunSpec::rounds(epochs * epoch).threads(Threads::from_env()),
                    &mut (),
                );
            println!(
                "scenario malice-rho4-1024: rounds={} population={} malicious={} contained={}",
                outcome.executed,
                engine.population(),
                malicious_count(engine.agents()),
                outcome.halted.is_none() && malicious_count(engine.agents()) < 100
            );
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<_> = registry().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate scenario names");
        assert!(find("clean-1024").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn a_registry_scenario_runs_quickly() {
        (find("gamma-quarter-1024").unwrap().run)(true);
    }
}
