//! The named scenario registry.
//!
//! Each entry is a ready-made `(protocol, adversary, config)` combo built
//! on [`popstab_sim::Scenario`] and the [`JobSpec`] layer, runnable by name:
//!
//! ```sh
//! experiments --list              # print the registry
//! experiments scenario clean-1024 # run one entry
//! ```
//!
//! Scenario output is deterministic (no wall-clock lines), so the CI
//! determinism diff can run a registry entry at different `--round-threads`
//! values and require byte-identical reports.

use popstab_adversary::{DesyncInserter, RandomDeleter, Throttle, Trauma, TraumaKind};
use popstab_baselines::attempt1::SignalFlooder;
use popstab_baselines::Attempt1;
use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_core::state::AgentState;
use popstab_extensions::{malicious_count, MaliciousInserter, WithMalice};
use popstab_sim::{
    Adversary, BatchRunner, ForkBranch, MatchingModel, NoOpAdversary, OnRound, RoundReport,
    RunSpec, Scenario, SimConfig, Threads,
};

use crate::{protocol_scenario, run_clean, run_protocol, JobSpec, ProtocolRun};

/// The scenario shape the snapshot/resume/fork tooling works over: the
/// paper's protocol under any (boxed, thread-portable) adversary.
pub type SnapshotScenario = Scenario<PopulationStability, Box<dyn Adversary<AgentState> + Send>>;

/// One registry entry: a named, self-describing scenario.
pub struct NamedScenario {
    /// Registry key (`experiments scenario <name>`).
    pub name: &'static str,
    /// Protocol label for `--list`.
    pub protocol: &'static str,
    /// Adversary label for `--list`.
    pub adversary: &'static str,
    /// One-line config summary for `--list`.
    pub summary: &'static str,
    /// Runs the scenario and prints its report (`quick` shortens horizons).
    pub run: fn(bool),
    /// Rebuilds this entry's `(protocol, adversary, config)` for the
    /// snapshot tooling (`experiments snapshot`/`resume`, [`Scenario::fork`]).
    /// `None` for entries whose protocol the tooling does not cover
    /// (baselines/extensions with their own state column).
    pub snapshot: Option<fn() -> SnapshotScenario>,
}

/// Every named scenario, in listing order.
pub fn registry() -> &'static [NamedScenario] {
    REGISTRY
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static NamedScenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Prints the registry as the `--list` table.
pub fn print_list() {
    println!("named scenarios (run with `experiments scenario <name>`):");
    for s in REGISTRY {
        println!(
            "  {:<22} {:<20} {:<22} {}",
            s.name, s.protocol, s.adversary, s.summary
        );
    }
}

/// Standard report line for a protocol-run scenario.
fn report<A: Adversary<AgentState>>(name: &str, run: &ProtocolRun<A>) {
    let (lo, hi) = run.population_range().unwrap_or_else(|| {
        let p = run.population();
        (p, p)
    });
    println!(
        "scenario {name}: rounds={} population={} band=[{lo}, {hi}] halted={}",
        run.outcome.executed,
        run.population(),
        match run.outcome.halted {
            None => "no".to_string(),
            Some(reason) => format!("{reason:?}"),
        }
    );
}

fn clean(n: u64, seed: u64, quick: bool, name: &str) {
    let params = Params::for_target(n).unwrap();
    let epochs = if quick { 8 } else { 20 };
    report(name, &run_clean(&params, JobSpec::new(seed, epochs)));
}

/// Boxes an adversary into the [`SnapshotScenario`] shape.
fn hook<A: Adversary<AgentState> + Send + 'static>(
    params: &Params,
    adversary: A,
    spec: &JobSpec,
) -> SnapshotScenario {
    protocol_scenario(
        params,
        Box::new(adversary) as Box<dyn Adversary<AgentState> + Send>,
        spec,
    )
}

// Snapshot hooks. Each rebuilds *exactly* the `(protocol, adversary,
// config)` its registry entry's `run` uses — same seed, budget, and
// matching — so `experiments snapshot <name> --at R` followed by
// `experiments resume` replays the same trajectory the entry itself runs.

fn clean_1024_scenario() -> SnapshotScenario {
    let params = Params::for_target(1024).unwrap();
    hook(&params, NoOpAdversary, &JobSpec::new(11, 0))
}

fn clean_4096_scenario() -> SnapshotScenario {
    let params = Params::for_target(4096).unwrap();
    hook(&params, NoOpAdversary, &JobSpec::new(12, 0))
}

fn deleter_throttled_1024_scenario() -> SnapshotScenario {
    let params = Params::for_target(1024).unwrap();
    let adv = Throttle::per_epoch(RandomDeleter::new(2), params.epoch_len());
    let mut spec = JobSpec::new(13, 0);
    spec.budget = 2;
    hook(&params, adv, &spec)
}

fn trauma_injury_4096_scenario() -> SnapshotScenario {
    let params = Params::for_target(4096).unwrap();
    let epoch = u64::from(params.epoch_len());
    let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.7, 2 * epoch);
    let mut spec = JobSpec::new(14, 0);
    spec.budget = usize::MAX;
    hook(&params, adv, &spec)
}

fn gamma_quarter_1024_scenario() -> SnapshotScenario {
    let params = Params::for_target(1024).unwrap();
    let mut spec = JobSpec::new(15, 0);
    spec.gamma = 0.25;
    hook(&params, NoOpAdversary, &spec)
}

fn gamma_random_1024_scenario() -> SnapshotScenario {
    let params = Params::for_target(1024).unwrap();
    let mut spec = JobSpec::new(16, 0);
    spec.matching = Some(MatchingModel::RandomFraction { min_gamma: 0.5 });
    hook(&params, NoOpAdversary, &spec)
}

fn desync_purge_1024_scenario() -> SnapshotScenario {
    let params = Params::for_target(1024).unwrap();
    let adv = Throttle::per_epoch(
        DesyncInserter::new(params.clone(), 4, params.epoch_len() / 2),
        params.epoch_len(),
    );
    let mut spec = JobSpec::new(17, 0);
    spec.budget = 4;
    hook(&params, adv, &spec)
}

fn clean_1048576_scenario() -> SnapshotScenario {
    let params = Params::for_target(1 << 20).unwrap();
    hook(&params, NoOpAdversary, &JobSpec::new(21, 0))
}

/// `clean-1048576`: the million-agent smoke at a rounds-based (not
/// epoch-based) horizon — an epoch at this scale is thousands of rounds,
/// so the entry covers a short window that still exercises the matching,
/// step, and apply phases at `N = 2^20`. The report comes from the
/// per-round [`RoundReport`]s alone, so on the columnar path
/// (`--columnar`) the population stays resident in the column store for
/// the whole run.
fn run_clean_1048576(quick: bool) {
    let rounds = if quick { 40 } else { 120 };
    let (mut lo, mut hi) = (usize::MAX, 0);
    let (engine, outcome) = clean_1048576_scenario().run(
        RunSpec::rounds(rounds).threads(Threads::from_env()),
        &mut OnRound(|r: &RoundReport| {
            lo = lo.min(r.population_after);
            hi = hi.max(r.population_after);
        }),
    );
    println!(
        "scenario clean-1048576: rounds={} population={} band=[{lo}, {hi}] halted={}",
        outcome.executed,
        engine.population(),
        match outcome.halted {
            None => "no".to_string(),
            Some(reason) => format!("{reason:?}"),
        }
    );
}

/// The fork-recovery prefix: a −60% shock at epoch 2, unbounded budget.
fn fork_recovery_1024_scenario() -> SnapshotScenario {
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.6, 2 * epoch);
    let mut spec = JobSpec::new(20, 0);
    spec.budget = usize::MAX;
    hook(&params, adv, &spec)
}

/// `fork-recovery-1024`: shared shocked prefix, four divergent futures.
fn run_fork_recovery_1024(quick: bool) {
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    let fork_at = 3 * epoch;
    let horizon = if quick { 4 * epoch } else { 10 * epoch };
    type Boxed = Box<dyn Adversary<AgentState> + Send>;
    let labels = ["continue", "continue-salt1", "deleter-2", "second-shock"];
    let branches = vec![
        ForkBranch::new(0, Box::new(NoOpAdversary) as Boxed).budget(0),
        ForkBranch::new(1, Box::new(NoOpAdversary) as Boxed).budget(0),
        ForkBranch::new(2, Box::new(RandomDeleter::new(2)) as Boxed).budget(2),
        ForkBranch::new(
            3,
            Box::new(Trauma::new(
                params.clone(),
                TraumaKind::Injury,
                0.5,
                fork_at + epoch,
            )) as Boxed,
        ),
    ];
    let results = fork_recovery_1024_scenario().fork(
        fork_at,
        branches,
        &BatchRunner::from_env(),
        |_, mut engine| {
            let outcome = engine.run(
                RunSpec::rounds(horizon).threads(Threads::from_env()),
                &mut (),
            );
            (
                outcome.executed,
                engine.population(),
                outcome.min_population,
                outcome.max_population,
                outcome.halted,
            )
        },
    );
    println!(
        "scenario fork-recovery-1024: prefix={fork_at} rounds, {} branches x {horizon} rounds",
        results.len()
    );
    for (i, (rounds, pop, lo, hi, halted)) in results.iter().enumerate() {
        println!(
            "  branch {i} ({}): rounds={rounds} population={pop} band=[{lo}, {hi}] halted={}",
            labels[i],
            match halted {
                None => "no".to_string(),
                Some(reason) => format!("{reason:?}"),
            }
        );
    }
}

const REGISTRY: &[NamedScenario] = &[
    NamedScenario {
        name: "clean-1024",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=1024, full matching, 20 epochs",
        run: |quick| clean(1024, 11, quick, "clean-1024"),
        snapshot: Some(clean_1024_scenario),
    },
    NamedScenario {
        name: "clean-4096",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=4096, full matching, 20 epochs",
        run: |quick| clean(4096, 12, quick, "clean-4096"),
        snapshot: Some(clean_4096_scenario),
    },
    NamedScenario {
        name: "deleter-throttled-1024",
        protocol: "PopulationStability",
        adversary: "RandomDeleter 2/epoch",
        summary: "N=1024, per-epoch metered deletion",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let adv = Throttle::per_epoch(RandomDeleter::new(2), params.epoch_len());
            let mut spec = JobSpec::new(13, if quick { 10 } else { 25 });
            spec.budget = 2;
            report("deleter-throttled-1024", &run_protocol(&params, adv, spec));
        },
        snapshot: Some(deleter_throttled_1024_scenario),
    },
    NamedScenario {
        name: "trauma-injury-4096",
        protocol: "PopulationStability",
        adversary: "Trauma injury -70%",
        summary: "N=4096, one-shot shock at epoch 2, healing horizon",
        run: |quick| {
            let params = Params::for_target(4096).unwrap();
            let epoch = u64::from(params.epoch_len());
            let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.7, 2 * epoch);
            let mut spec = JobSpec::new(14, if quick { 20 } else { 60 }).record_epoch_ends(&params);
            spec.budget = usize::MAX;
            report("trauma-injury-4096", &run_protocol(&params, adv, spec));
        },
        snapshot: Some(trauma_injury_4096_scenario),
    },
    NamedScenario {
        name: "gamma-quarter-1024",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=1024, ExactFraction(0.25) matching",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let mut spec = JobSpec::new(15, if quick { 10 } else { 25 });
            spec.gamma = 0.25;
            report("gamma-quarter-1024", &run_clean(&params, spec));
        },
        snapshot: Some(gamma_quarter_1024_scenario),
    },
    NamedScenario {
        name: "gamma-random-1024",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=1024, RandomFraction{min 0.5} matching",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let mut spec = JobSpec::new(16, if quick { 10 } else { 25 });
            spec.matching = Some(MatchingModel::RandomFraction { min_gamma: 0.5 });
            report("gamma-random-1024", &run_clean(&params, spec));
        },
        snapshot: Some(gamma_random_1024_scenario),
    },
    NamedScenario {
        name: "desync-purge-1024",
        protocol: "PopulationStability",
        adversary: "DesyncInserter 4/epoch",
        summary: "N=1024, Algorithm-7 purge under clock-skew insertion",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let adv = Throttle::per_epoch(
                DesyncInserter::new(params.clone(), 4, params.epoch_len() / 2),
                params.epoch_len(),
            );
            let mut spec = JobSpec::new(17, if quick { 8 } else { 16 });
            spec.budget = 4;
            report("desync-purge-1024", &run_protocol(&params, adv, spec));
        },
        snapshot: Some(desync_purge_1024_scenario),
    },
    NamedScenario {
        name: "attempt1-flood-1024",
        protocol: "Attempt1 (baseline)",
        adversary: "SignalFlooder 1/epoch",
        summary: "N=1024, the paper's predicted collapse",
        run: |quick| {
            let proto = Attempt1::new(1024);
            let epoch = u64::from(proto.epoch_len());
            let rounds = if quick { 40 * epoch } else { 150 * epoch };
            let cfg = SimConfig::builder()
                .seed(18)
                .target(1024)
                .adversary_budget(1)
                .max_population(64 * 1024)
                .build()
                .unwrap();
            let (engine, outcome) = Scenario::new(proto, cfg, 1024)
                .against(SignalFlooder::new(epoch as u32))
                .run(
                    RunSpec::until(rounds, |r| r.population_after < 512)
                        .threads(Threads::from_env()),
                    &mut (),
                );
            println!(
                "scenario attempt1-flood-1024: rounds={} population={} band=[{}, {}] collapsed={}",
                outcome.executed,
                engine.population(),
                outcome.min_population,
                outcome.max_population,
                outcome.stopped_early || engine.population() < 512
            );
        },
        snapshot: None,
    },
    NamedScenario {
        name: "malice-rho4-1024",
        protocol: "WithMalice (ext. model)",
        adversary: "MaliciousInserter rho=4",
        summary: "N=1024, contact-kill containment race",
        run: |quick| {
            let params = Params::for_target(1024).unwrap();
            let epoch = u64::from(params.epoch_len());
            let epochs = if quick { 3 } else { 8 };
            let cfg = SimConfig::builder()
                .seed(19)
                .target(1024)
                .adversary_budget(1)
                .max_population(16 * 1024)
                .build()
                .unwrap();
            let proto = WithMalice::new(PopulationStability::new(params));
            let (engine, outcome) = Scenario::new(proto, cfg, 1024)
                .against(MaliciousInserter::new(1, 4))
                .run(
                    RunSpec::rounds(epochs * epoch).threads(Threads::from_env()),
                    &mut (),
                );
            println!(
                "scenario malice-rho4-1024: rounds={} population={} malicious={} contained={}",
                outcome.executed,
                engine.population(),
                malicious_count(engine.agents()),
                outcome.halted.is_none() && malicious_count(engine.agents()) < 100
            );
        },
        snapshot: None,
    },
    NamedScenario {
        name: "clean-1048576",
        protocol: "PopulationStability",
        adversary: "none",
        summary: "N=2^20, full matching, short large-N smoke window",
        run: run_clean_1048576,
        snapshot: Some(clean_1048576_scenario),
    },
    NamedScenario {
        name: "fork-recovery-1024",
        protocol: "PopulationStability",
        adversary: "forked ensemble",
        summary: "N=1024, -60% shock, 4 counterfactual futures from epoch 3",
        run: run_fork_recovery_1024,
        snapshot: Some(fork_recovery_1024_scenario),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<_> = registry().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate scenario names");
        assert!(find("clean-1024").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn a_registry_scenario_runs_quickly() {
        (find("gamma-quarter-1024").unwrap().run)(true);
    }

    #[test]
    fn snapshot_hooks_cover_exactly_the_population_stability_entries() {
        for s in registry() {
            assert_eq!(
                s.snapshot.is_some(),
                s.protocol == "PopulationStability",
                "snapshot hook coverage for {}",
                s.name
            );
        }
    }

    #[test]
    fn a_hook_scenario_snapshots_and_resumes_bit_for_bit() {
        use popstab_sim::{Engine, OnRound, RoundReport};
        let hook = find("deleter-throttled-1024").unwrap().snapshot.unwrap();
        let trace = |engine: &mut Engine<PopulationStability, _>, rounds: u64| {
            let mut t = Vec::new();
            engine.run(
                RunSpec::rounds(rounds),
                &mut OnRound(|r: &RoundReport| t.push(*r)),
            );
            t
        };
        let mut straight = hook().engine();
        let full = trace(&mut straight, 40);

        let mut prefix = hook().engine();
        prefix.run(RunSpec::rounds(25), &mut ());
        let snap = prefix.snapshot();
        // The adversary is rebuilt from the hook: the suite adversaries are
        // round-/rng-keyed, so the rebuilt instance continues exactly.
        let rebuilt = hook();
        let mut resumed = Engine::restore(rebuilt.protocol, rebuilt.adversary, &snap).unwrap();
        let tail = trace(&mut resumed, 15);
        assert_eq!(&full[25..], &tail[..]);
        assert_eq!(resumed.population(), straight.population());
    }

    #[test]
    fn fork_recovery_identity_branch_matches_the_straight_line() {
        let hook = find("fork-recovery-1024").unwrap().snapshot.unwrap();
        let epoch = u64::from(Params::for_target(1024).unwrap().epoch_len());
        let (fork_at, tail) = (3 * epoch, 12);

        let mut straight = hook().engine();
        straight.run(RunSpec::rounds(fork_at + tail), &mut ());

        // Identity branch: salt 0 and the rebuilt prefix adversary (the
        // one-shot shock already fired inside the prefix, so the rebuilt
        // instance never acts — exactly like the uninterrupted run).
        let branches = vec![ForkBranch::new(0, hook().adversary)];
        let pops = hook().fork(fork_at, branches, &BatchRunner::new(1), |_, mut engine| {
            engine.run(RunSpec::rounds(tail), &mut ());
            engine.population()
        });
        assert_eq!(pops, vec![straight.population()]);
    }
}
