//! Resource accounting: states, memory bits and message size (Theorem 2).
//!
//! The paper claims the protocol needs `ω(log² N)` states — equivalently
//! `Θ(log log N)` bits — per agent and three-bit messages. The *protocol
//! memory* of an agent is:
//!
//! * `round ∈ [0, T)` — `⌈log₂ T⌉` bits,
//! * three booleans: `active`, `color`, `recruiting`,
//! * the biased-coin scratch counter, which the paper shows can reuse the
//!   `round` storage because coins are tossed only in the leader-selection
//!   and evaluation rounds (when the counter's value is known from one
//!   indicator bit each).
//!
//! Instrumentation fields of [`AgentState`](crate::state::AgentState)
//! (`to_recruit`, `is_leader`, `lineage`, `epoch_len`) are simulation-side
//! and excluded, as documented in DESIGN.md.

use crate::coin::scratch_bits;
use crate::params::Params;

/// Number of protocol-relevant boolean flags (`active`, `color`,
/// `recruiting`).
pub const FLAG_BITS: u32 = 3;

/// Message size on the wire, in bits.
pub const MESSAGE_BITS: u32 = 3;

/// Static resource usage of one protocol instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resources {
    /// Number of distinct protocol states per agent: `T × 2^flags`.
    pub states: u128,
    /// Agent memory in bits: `⌈log₂ states⌉`.
    pub memory_bits: u32,
    /// Message size in bits (always 3).
    pub message_bits: u32,
    /// Scratch bits Algorithm 4 needs for the leader coin (reuses `round`
    /// storage; listed for transparency).
    pub coin_scratch_bits: u32,
}

/// Computes the resource usage of the protocol under `params`.
///
/// ```
/// let p = popstab_core::params::Params::for_target(1024)?;
/// let r = popstab_core::accounting::resources(&p);
/// assert_eq!(r.message_bits, 3);
/// assert_eq!(r.states, 500 * 8); // T × 2^3
/// # Ok::<(), popstab_core::params::ParamsError>(())
/// ```
pub fn resources(params: &Params) -> Resources {
    let states = u128::from(params.epoch_len()) << FLAG_BITS;
    let memory_bits = 128 - (states - 1).leading_zeros();
    let coin_scratch =
        scratch_bits(params.leader_bias_exp()).max(scratch_bits(params.split_bias_exp()));
    Resources {
        states,
        memory_bits,
        message_bits: MESSAGE_BITS,
        coin_scratch_bits: coin_scratch,
    }
}

/// `log₂² N`, the paper's lower-bound yardstick: the protocol must use
/// `ω(log² N)` states, i.e. strictly more than any constant multiple of this
/// as `N → ∞`.
pub fn log2_squared(params: &Params) -> u128 {
    u128::from(params.log2_n()) * u128::from(params.log2_n())
}

/// `log₂³ N`, the state count of the paper's default `T_inner = log² N`
/// configuration up to the constant `½·2³`.
pub fn log2_cubed(params: &Params) -> u128 {
    log2_squared(params) * u128::from(params.log2_n())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_theta_log_cubed_states() {
        for log2_n in [10u32, 12, 14, 16, 20] {
            let p = Params::for_target(1u64 << log2_n).unwrap();
            let r = resources(&p);
            // T = ½ log³N, states = 8T = 4 log³N exactly.
            assert_eq!(r.states, 4 * log2_cubed(&p));
        }
    }

    #[test]
    fn memory_is_theta_log_log_n_bits() {
        // For N = 2^10 .. 2^20, memory stays under 5 + 3·log2(log2 N) bits —
        // doubly logarithmic, as claimed.
        for log2_n in [10u32, 12, 14, 16, 18, 20] {
            let p = Params::for_target(1u64 << log2_n).unwrap();
            let r = resources(&p);
            let bound = 5.0 + 3.0 * (log2_n as f64).log2();
            assert!(
                f64::from(r.memory_bits) <= bound,
                "N=2^{log2_n}: {} bits > {bound}",
                r.memory_bits
            );
        }
    }

    #[test]
    fn messages_are_three_bits_for_all_n() {
        for log2_n in [10u32, 14, 20, 26] {
            let p = Params::for_target(1u64 << log2_n).unwrap();
            assert_eq!(resources(&p).message_bits, 3);
        }
    }

    #[test]
    fn shorter_subphases_reach_omega_log_squared() {
        // With T_inner = c·log N (the smallest admissible order), states are
        // Θ(log² N): the paper's ω(log² N) bound is tight in this direction.
        let log2_n = 16u32;
        let p = Params::builder(1u64 << log2_n)
            .t_inner(4 * log2_n)
            .build()
            .unwrap();
        let r = resources(&p);
        assert_eq!(r.states, u128::from(p.epoch_len()) * 8);
        assert!(
            r.states < 4 * log2_cubed(&p),
            "shortened config should use fewer states"
        );
        assert!(r.states >= log2_squared(&p), "must stay above log² N");
    }

    #[test]
    fn coin_scratch_fits_in_round_storage() {
        // The coin's scratch counter must fit in the bits already budgeted
        // for the round counter, which is the paper's reuse argument.
        for log2_n in [10u32, 16, 20] {
            let p = Params::for_target(1u64 << log2_n).unwrap();
            let r = resources(&p);
            let round_bits = 32 - (p.epoch_len() - 1).leading_zeros();
            assert!(r.coin_scratch_bits <= round_bits);
        }
    }
}
