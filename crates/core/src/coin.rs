//! The biased-coin subroutine (Algorithm 4) with its memory accounting.
//!
//! The paper assumes agents can flip only *unbiased* coins, and obtains bias
//! `2^-a` by flipping `a` fair coins and reporting 1 iff all landed heads.
//! Counting to `a` needs `⌈log₂(a+1)⌉` bits of scratch memory plus one bit
//! for the running conjunction — memory that the protocol reuses from the
//! `round` counter, since the coin is only tossed in the leader-selection
//! and evaluation rounds (§4, memory discussion).

use popstab_sim::SimRng;
use rand::Rng;

/// Flips a coin that is 1 with probability `2^-bias_exp`, faithfully
/// implementing Algorithm 4 with `bias_exp` fair flips.
///
/// `bias_exp = 0` always returns `true` (an "all heads" conjunction over zero
/// flips).
///
/// ```
/// let mut rng = popstab_sim::rng::rng_from_seed(1);
/// // Pr[true] = 2^-3 = 1/8.
/// let hits = (0..8000).filter(|_| popstab_core::coin::toss_biased_coin(3, &mut rng)).count();
/// assert!((800..1200).contains(&hits));
/// ```
pub fn toss_biased_coin(bias_exp: u32, rng: &mut SimRng) -> bool {
    let mut c = true;
    for _ in 0..bias_exp {
        if !rng.random::<bool>() {
            // Algorithm 4 keeps flipping after the first tail; we may stop
            // early because the remaining flips cannot change the outcome
            // and the distribution is identical.
            c = false;
            break;
        }
    }
    c
}

/// Scratch memory, in bits, needed by Algorithm 4 to flip a `2^-a` coin:
/// `1 + ⌈log₂ a⌉` (the paper's bound; one output bit plus a counter to `a`).
pub fn scratch_bits(bias_exp: u32) -> u32 {
    if bias_exp <= 1 {
        1
    } else {
        1 + (32 - (bias_exp - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::rng::rng_from_seed;

    #[test]
    fn zero_exp_always_true() {
        let mut rng = rng_from_seed(0);
        assert!((0..100).all(|_| toss_biased_coin(0, &mut rng)));
    }

    #[test]
    fn empirical_bias_matches_for_small_exponents() {
        let mut rng = rng_from_seed(1);
        let trials = 40_000;
        for a in 1..=4u32 {
            let hits = (0..trials)
                .filter(|_| toss_biased_coin(a, &mut rng))
                .count() as f64;
            let expected = trials as f64 * 0.5f64.powi(a as i32);
            let sd = (trials as f64 * 0.5f64.powi(a as i32)).sqrt();
            assert!(
                (hits - expected).abs() < 5.0 * sd,
                "a={a}: hits={hits}, expected={expected}"
            );
        }
    }

    #[test]
    fn large_exponent_is_effectively_never() {
        let mut rng = rng_from_seed(2);
        let hits = (0..100_000)
            .filter(|_| toss_biased_coin(40, &mut rng))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn scratch_bits_follows_paper_bound() {
        // 1 + ceil(log2 a), with the degenerate cases pinned at 1 bit.
        assert_eq!(scratch_bits(0), 1);
        assert_eq!(scratch_bits(1), 1);
        assert_eq!(scratch_bits(2), 2);
        assert_eq!(scratch_bits(3), 3);
        assert_eq!(scratch_bits(4), 3);
        assert_eq!(scratch_bits(8), 4);
        assert_eq!(scratch_bits(9), 5);
        assert_eq!(scratch_bits(16), 5);
    }
}
