//! The biased-coin subroutine (Algorithm 4) with its memory accounting.
//!
//! The paper assumes agents can flip only *unbiased* coins, and obtains bias
//! `2^-a` by flipping `a` fair coins and reporting 1 iff all landed heads.
//! Counting to `a` needs `⌈log₂(a+1)⌉` bits of scratch memory plus one bit
//! for the running conjunction — memory that the protocol reuses from the
//! `round` counter, since the coin is only tossed in the leader-selection
//! and evaluation rounds (§4, memory discussion).

use popstab_sim::SimRng;

/// Flips a coin that is 1 with probability `2^-bias_exp`, faithfully
/// implementing Algorithm 4 with `bias_exp` fair flips.
///
/// `bias_exp = 0` always returns `true` (an "all heads" conjunction over zero
/// flips).
///
/// The *accounting* is unchanged from the paper: the protocol is charged
/// `bias_exp` fair flips and [`scratch_bits`]`(bias_exp)` bits of scratch.
/// Since agent RNG stream v3 the simulator *draws* those flips 64 to a
/// 64-bit word (one generator draw per 64 logical flips, each word checked
/// against an all-heads mask), and may stop at the first word containing a
/// tail — Algorithm 4 keeps flipping after the first tail, but the
/// remaining flips cannot change the conjunction and the distribution is
/// identical.
///
/// ```
/// let mut rng = popstab_sim::rng::rng_from_seed(1);
/// // Pr[true] = 2^-3 = 1/8.
/// let hits = (0..8000).filter(|_| popstab_core::coin::toss_biased_coin(3, &mut rng)).count();
/// assert!((800..1200).contains(&hits));
/// ```
pub fn toss_biased_coin(bias_exp: u32, rng: &mut SimRng) -> bool {
    // One word-batched implementation for the whole workspace: the
    // substrate's subroutine IS the agent-stream mapping the golden
    // fixtures pin, so this layer adds only the paper's accounting
    // ([`scratch_bits`]) on top of it.
    popstab_sim::rng::biased_coin(bias_exp, rng)
}

/// Scratch memory, in bits, needed by Algorithm 4 to flip a `2^-a` coin:
/// `1 + ⌈log₂ a⌉` (the paper's bound; one output bit plus a counter to `a`).
pub fn scratch_bits(bias_exp: u32) -> u32 {
    if bias_exp <= 1 {
        1
    } else {
        1 + (32 - (bias_exp - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::rng::rng_from_seed;

    #[test]
    fn zero_exp_always_true() {
        let mut rng = rng_from_seed(0);
        assert!((0..100).all(|_| toss_biased_coin(0, &mut rng)));
    }

    #[test]
    fn empirical_bias_matches_for_small_exponents() {
        let mut rng = rng_from_seed(1);
        let trials = 40_000;
        for a in 1..=4u32 {
            let hits = (0..trials)
                .filter(|_| toss_biased_coin(a, &mut rng))
                .count() as f64;
            let expected = trials as f64 * 0.5f64.powi(a as i32);
            let sd = (trials as f64 * 0.5f64.powi(a as i32)).sqrt();
            assert!(
                (hits - expected).abs() < 5.0 * sd,
                "a={a}: hits={hits}, expected={expected}"
            );
        }
    }

    #[test]
    fn large_exponent_is_effectively_never() {
        let mut rng = rng_from_seed(2);
        let hits = (0..100_000)
            .filter(|_| toss_biased_coin(40, &mut rng))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn scratch_bits_follows_paper_bound() {
        // 1 + ceil(log2 a), with the degenerate cases pinned at 1 bit.
        assert_eq!(scratch_bits(0), 1);
        assert_eq!(scratch_bits(1), 1);
        assert_eq!(scratch_bits(2), 2);
        assert_eq!(scratch_bits(3), 3);
        assert_eq!(scratch_bits(4), 3);
        assert_eq!(scratch_bits(8), 4);
        assert_eq!(scratch_bits(9), 5);
        assert_eq!(scratch_bits(16), 5);
    }
}
