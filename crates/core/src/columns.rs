//! Columnar (struct-of-arrays) execution of the protocol's step phase.
//!
//! [`StabilityColumns`] is the [`ColumnarStep`] implementation installed
//! into every engine running [`PopulationStability`] (via
//! [`Protocol::columnar`](popstab_sim::Protocol::columnar)). It holds the
//! population *resident* as compact columns — `round`/`to_recruit`/`lineage`
//! vectors plus packed flag bitmasks — and advances them round after round
//! without materializing `Vec<AgentState>`:
//!
//! 1. **wire pass**: from the columns, compose every agent's three-bit
//!    [`Wire`] (Algorithm 2) as *word algebra*, publishing it in one
//!    partner-readable byte column (`wire8`, the wire bits plus an
//!    always-set presence bit — cache-resident even at million-agent
//!    scale), record each 64-agent block's round uniformity, and list the
//!    rare *latch-hazard* lanes whose pre-step lineage a partner might
//!    copy while this round overwrites it;
//! 2. **step pass**: per block, gather one masked `wire8` byte per lane
//!    and transpose them eight-at-a-time (`pack_lsb`) into four mask
//!    words held in registers, then execute the round's transition as
//!    bitwise algebra straight into the columns, batching coin draws with
//!    [`biased_coin_x8`]. Blocks whose agents disagree on the round number
//!    (possible only under adversarial insertion) fall back to an exact
//!    per-lane transition.
//!
//! The engine transposes `Vec<AgentState>` in ([`ColumnarStep::load`]) only
//! when the vector was mutated behind the columns' back, and back out
//! ([`ColumnarStep::store`]) only when an observer, adversary, or snapshot
//! needs it — on the recording-free fast path each round streams ~17 bytes
//! per agent instead of two passes over 24-byte structs.
//!
//! # Why this is bit-exact (no stream bump)
//!
//! The agent stream (v3) is counter-addressable: agent `slot`'s draw `j`
//! in a round is a pure finalizer of `(round_key, slot, j)`, independent
//! of any other agent's draws, so *batching* evaluation cannot move any
//! draw. The kernels consume exactly the draw positions `Protocol::step`
//! consumes wherever a draw's outcome is observable: leader selection
//! evaluates each lane's biased coin at the same word positions
//! ([`biased_coin_x8`] is pinned lane-for-lane against
//! [`toss_biased_coin`]), winners replay the scalar draw order (coin
//! words, then color, then lineage) on their own slot stream, and the
//! evaluation split coin is the same first-draws-of-slot-stream the scalar
//! path uses. Split and death slots are emitted in ascending slot order,
//! and [`ColumnarStep::apply`] mirrors the engine's vector semantics
//! (append daughters in split order, then swap-remove deaths descending),
//! so a [`ColumnarStep::store`] after any number of resident rounds
//! reproduces the scalar vector byte for byte. `epoch_len` needs no
//! column: every step writes `params.epoch_len()` into every surviving
//! agent, so `store` pins it uniformly — exact because a store can only
//! observe stepped agents (daughters clone stepped parents; adversarial
//! inserts force a reload first). The engine-level equivalence property
//! tests (`tests/columnar_equivalence.rs`) pin columnar vs scalar
//! trajectories bit-for-bit, and the golden fixtures pin both against
//! history.
//!
//! # Latch hazards
//!
//! Lineage is the one field copied partner-to-agent, and messages are
//! simultaneous: a recruit must latch its recruiter's *pre-step* lineage
//! even if the recruiter's own lineage changes this round. A lane
//! advertising `recruiting` on the wire can have its own lineage
//! overwritten only if it is at round 0 (leader coin) or inactive yet
//! recruiting (adversarial state, itself recruited this round) — honest
//! populations have no such lanes. The wire pass lists them (slot,
//! pre-step lineage) in ascending order; everyone else's lineage is safely
//! read live from the column, which also makes the pooled step pass
//! race-free per element (a lineage element is either overwritten and in
//! the hazard list, or read-only this round).

use popstab_sim::batch::ShardPool;
use popstab_sim::columns::{
    tail_mask, word_shard_range, BitCol, ColPtr, ColumnarProtocol, ColumnarStep,
};
use popstab_sim::matching::UNMATCHED;
use popstab_sim::rng::{biased_coin_x8, slot_key_x8, slot_rng, LANES};
use popstab_sim::Action;
use rand::Rng;

use crate::coin::toss_biased_coin;
use crate::message::Wire;
use crate::params::Params;
use crate::protocol::PopulationStability;
use crate::state::{AgentState, Color};

impl ColumnarProtocol for PopulationStability {
    type Columns = StabilityColumns;

    fn columns(&self) -> StabilityColumns {
        StabilityColumns::new(self.params().clone())
    }
}

/// Per-shard split/death output lists, merged in shard (= slot) order.
#[derive(Debug, Default)]
struct ShardOut {
    splits: Vec<usize>,
    deaths: Vec<usize>,
}

/// The struct-of-arrays store for [`PopulationStability`]: authoritative
/// agent state as columns, resident across rounds inside the engine.
pub struct StabilityColumns {
    params: Params,
    /// Live population; every column holds exactly this many lanes.
    len: usize,
    // Authoritative state columns (epoch_len is implicit; see module docs).
    round: Vec<u32>,
    to_recruit: Vec<u32>,
    lineage: Vec<u64>,
    active: BitCol,
    recruiting: BitCol,
    color: BitCol,
    is_leader: BitCol,
    // Per-round scratch, rebuilt by the wire pass.
    /// Partner-readable wire byte per agent: [`Wire::bits`] (y, x, e low to
    /// high) plus [`WIRE8_PRESENT`], so one masked gather load yields all
    /// four partner masks at once. Sized to whole 64-lane blocks.
    wire8: Vec<u8>,
    /// Normalized round of each 64-agent block's first lane.
    block_round: Vec<u32>,
    /// Whether every lane of the block shares that round.
    block_uniform: Vec<bool>,
    /// Latch-hazard lanes: (slot, pre-step lineage), ascending by slot.
    hazards: Vec<(u32, u64)>,
    shard_hazards: Vec<Vec<(u32, u64)>>,
    shard_out: Vec<ShardOut>,
}

impl std::fmt::Debug for StabilityColumns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StabilityColumns")
            .field("params", &self.params)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// The mutable authoritative columns of one word-aligned range, as the
/// step pass borrows them (range-local indices).
struct StateRange<'a> {
    round: &'a mut [u32],
    to_recruit: &'a mut [u32],
    active: &'a mut [u64],
    recruiting: &'a mut [u64],
    color: &'a mut [u64],
    is_leader: &'a mut [u64],
}

/// Bit 3 of a [`StabilityColumns::wire8`] byte: set on every live lane, so
/// a gathered byte carries its own "was matched" flag (unmatched lanes
/// gather a zeroed byte).
const WIRE8_PRESENT: u8 = 0b1000;

/// Spreads bit `k` of `b` to the least-significant bit of byte `k` (the
/// other byte bits zero). The multiply replicates `b` into every byte, the
/// diagonal mask isolates bit `k` inside byte `k`, and the `+ 0x7f`
/// carry-out turns "byte non-zero" into each byte's top bit — no step ever
/// carries across a byte boundary.
#[inline]
fn spread8(b: u8) -> u64 {
    let v = u64::from(b).wrapping_mul(0x0101_0101_0101_0101) & 0x8040_2010_0804_0201;
    ((v + 0x7f7f_7f7f_7f7f_7f7f) >> 7) & 0x0101_0101_0101_0101
}

/// Packs the least-significant bit of byte `k` into bit `k` — the inverse
/// of [`spread8`]. Every partial product of the multiply lands on a
/// distinct bit position (`8k + 7m` collides for no two `(k, m)` pairs),
/// so the top byte accumulates the eight lane bits carry-free.
#[inline]
fn pack_lsb(t: u64) -> u64 {
    (t & 0x0101_0101_0101_0101).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// One block's gathered partner masks plus geometry, register-resident
/// between the gather loop and the kernel that consumes it. Lane `l`
/// corresponds to global slot `slot0 + l`.
struct Block {
    slot0: usize,
    lanes: usize,
    tail: u64,
    /// Lane was matched this round.
    mm: u64,
    /// Partner's wire `in_eval` bit.
    me: u64,
    /// Partner's wire `x` bit.
    mx: u64,
    /// Partner's wire `y` bit.
    my: u64,
}

impl StabilityColumns {
    /// A store with empty columns; sized by [`ColumnarStep::load`].
    pub fn new(params: Params) -> StabilityColumns {
        StabilityColumns {
            params,
            len: 0,
            round: Vec::new(),
            to_recruit: Vec::new(),
            lineage: Vec::new(),
            active: BitCol::default(),
            recruiting: BitCol::default(),
            color: BitCol::default(),
            is_leader: BitCol::default(),
            wire8: Vec::new(),
            block_round: Vec::new(),
            block_uniform: Vec::new(),
            hazards: Vec::new(),
            shard_hazards: Vec::new(),
            shard_out: Vec::new(),
        }
    }

    /// Sizes the authoritative columns for a population of `n`. Contents
    /// are unspecified: the load pass overwrites every lane.
    fn resize(&mut self, n: usize) {
        let nw = n.div_ceil(64);
        self.round.resize(n, 0);
        self.to_recruit.resize(n, 0);
        self.lineage.resize(n, 0);
        self.active.resize_words(nw);
        self.recruiting.resize_words(nw);
        self.color.resize_words(nw);
        self.is_leader.resize_words(nw);
        self.len = n;
    }

    /// Appends a copy of lane `i` (a split daughter of a stepped parent).
    fn push_clone(&mut self, i: usize) {
        let la = self.len;
        let nw = (la + 1).div_ceil(64);
        self.round.push(self.round[i]);
        self.to_recruit.push(self.to_recruit[i]);
        self.lineage.push(self.lineage[i]);
        for col in [
            &mut self.active,
            &mut self.recruiting,
            &mut self.color,
            &mut self.is_leader,
        ] {
            col.resize_words(nw);
            let v = col.get(i);
            col.set(la, v);
        }
        self.len = la + 1;
    }

    /// Swap-removes lane `i`, exactly as `Vec::swap_remove` would.
    fn swap_remove(&mut self, i: usize) {
        let last = self.len - 1;
        self.round.swap_remove(i);
        self.to_recruit.swap_remove(i);
        self.lineage.swap_remove(i);
        let nw = last.div_ceil(64);
        for col in [
            &mut self.active,
            &mut self.recruiting,
            &mut self.color,
            &mut self.is_leader,
        ] {
            if i != last {
                let v = col.get(last);
                col.set(i, v);
            }
            // Words above ceil(len/64) hold no live lanes; trimming keeps
            // the push path's growth zero-fill meaningful.
            col.resize_words(nw);
        }
        self.len = last;
    }

    /// Serial wire + step passes over the full range.
    fn step_serial(
        &mut self,
        partners: &[u32],
        round_key: u64,
        splits: &mut Vec<usize>,
        deaths: &mut Vec<usize>,
    ) {
        let StabilityColumns {
            params,
            len,
            round,
            to_recruit,
            lineage,
            active,
            recruiting,
            color,
            is_leader,
            wire8,
            block_round,
            block_uniform,
            hazards,
            ..
        } = self;
        hazards.clear();
        wire_range(
            params,
            0,
            *len,
            round,
            lineage,
            active.words(),
            recruiting.words(),
            color.words(),
            wire8,
            block_round,
            block_uniform,
            hazards,
        );
        let lin = ColPtr::new(lineage.as_mut_ptr());
        let mut st = StateRange {
            round,
            to_recruit,
            active: active.words_mut(),
            recruiting: recruiting.words_mut(),
            color: color.words_mut(),
            is_leader: is_leader.words_mut(),
        };
        step_range(
            params,
            round_key,
            0,
            *len,
            partners,
            wire8,
            hazards,
            lin,
            &mut st,
            block_round,
            block_uniform,
            splits,
            deaths,
        );
    }

    /// Pool-sharded wire + step passes over word-aligned shard ranges,
    /// with a barrier in between (the step pass reads *global* wire bits
    /// and hazards written by the wire pass).
    fn step_pooled(
        &mut self,
        partners: &[u32],
        round_key: u64,
        pool: &ShardPool,
        splits: &mut Vec<usize>,
        deaths: &mut Vec<usize>,
    ) {
        use std::slice;
        let n = self.len;
        let nw = n.div_ceil(64);
        let shards = pool.shards();
        if self.shard_out.len() < shards {
            self.shard_out.resize_with(shards, ShardOut::default);
        }
        if self.shard_hazards.len() < shards {
            self.shard_hazards.resize_with(shards, Vec::new);
        }
        let rnd_p = ColPtr::new(self.round.as_mut_ptr());
        let tr_p = ColPtr::new(self.to_recruit.as_mut_ptr());
        let lin_p = ColPtr::new(self.lineage.as_mut_ptr());
        let act_p = ColPtr::new(self.active.words_mut().as_mut_ptr());
        let rec_p = ColPtr::new(self.recruiting.words_mut().as_mut_ptr());
        let col_p = ColPtr::new(self.color.words_mut().as_mut_ptr());
        let il_p = ColPtr::new(self.is_leader.words_mut().as_mut_ptr());
        let w8_p = ColPtr::new(self.wire8.as_mut_ptr());
        let brnd_p = ColPtr::new(self.block_round.as_mut_ptr());
        let buni_p = ColPtr::new(self.block_uniform.as_mut_ptr());
        let sh_p = ColPtr::new(self.shard_hazards.as_mut_ptr());
        let so_p = ColPtr::new(self.shard_out.as_mut_ptr());
        let params = &self.params;

        /// The word range of shard `s` and its slot range, clipped to `n`.
        fn ranges(nw: usize, n: usize, shards: usize, s: usize) -> (usize, usize, usize, usize) {
            let (wlo, whi) = word_shard_range(nw, shards, s);
            (wlo, whi, wlo * 64, (whi * 64).min(n))
        }

        // Pass 1: wire, each shard composing its own agents' wire bits.
        pool.dispatch(&|s| {
            let (wlo, whi, lo, hi) = ranges(nw, n, shards, s);
            if wlo == whi {
                return;
            }
            let (len, wlen) = (hi - lo, whi - wlo);
            // SAFETY: `word_shard_range` gives disjoint word-aligned
            // ranges, so no two shards touch the same column element or
            // bitmask word; the state columns are only read here, and
            // `shard_hazards[s]` is owned by shard `s` alone (`dispatch`
            // runs each index once).
            unsafe {
                let hz = &mut *sh_p.get().add(s);
                hz.clear();
                wire_range(
                    params,
                    lo,
                    len,
                    slice::from_raw_parts(rnd_p.get().add(lo).cast_const(), len),
                    slice::from_raw_parts(lin_p.get().add(lo).cast_const(), len),
                    slice::from_raw_parts(act_p.get().add(wlo).cast_const(), wlen),
                    slice::from_raw_parts(rec_p.get().add(wlo).cast_const(), wlen),
                    slice::from_raw_parts(col_p.get().add(wlo).cast_const(), wlen),
                    slice::from_raw_parts_mut(w8_p.get().add(wlo * 64), wlen * 64),
                    slice::from_raw_parts_mut(brnd_p.get().add(wlo), wlen),
                    slice::from_raw_parts_mut(buni_p.get().add(wlo), wlen),
                    hz,
                );
            }
        });

        // Shard s covers smaller slots than shard s + 1, and each shard's
        // hazards are ascending, so concatenation stays sorted by slot.
        self.hazards.clear();
        for hz in &self.shard_hazards[..shards] {
            self.hazards.extend_from_slice(hz);
        }
        let hazards: &[(u32, u64)] = &self.hazards;

        // Pass 2: gather + step, each shard writing only its own columns.
        pool.dispatch(&|s| {
            let (wlo, whi, lo, hi) = ranges(nw, n, shards, s);
            if wlo == whi {
                return;
            }
            let (len, wlen) = (hi - lo, whi - wlo);
            // SAFETY: the pass-1 barrier has completed, so the wire bit
            // columns and hazards are read-only global state during this
            // dispatch; each shard mutates only its own word-aligned range
            // of the state columns. Lineage is global (partner latches may
            // read across ranges) but race-free per element: any element a
            // kernel overwrites this round is either outside every other
            // shard's reads or served from the hazard list (module docs).
            unsafe {
                let mut st = StateRange {
                    round: slice::from_raw_parts_mut(rnd_p.get().add(lo), len),
                    to_recruit: slice::from_raw_parts_mut(tr_p.get().add(lo), len),
                    active: slice::from_raw_parts_mut(act_p.get().add(wlo), wlen),
                    recruiting: slice::from_raw_parts_mut(rec_p.get().add(wlo), wlen),
                    color: slice::from_raw_parts_mut(col_p.get().add(wlo), wlen),
                    is_leader: slice::from_raw_parts_mut(il_p.get().add(wlo), wlen),
                };
                let wire8 = slice::from_raw_parts(w8_p.get().cast_const(), nw * 64);
                let out = &mut *so_p.get().add(s);
                out.splits.clear();
                out.deaths.clear();
                step_range(
                    params,
                    round_key,
                    lo,
                    len,
                    &partners[lo..hi],
                    wire8,
                    hazards,
                    lin_p,
                    &mut st,
                    slice::from_raw_parts(brnd_p.get().add(wlo).cast_const(), wlen),
                    slice::from_raw_parts(buni_p.get().add(wlo).cast_const(), wlen),
                    &mut out.splits,
                    &mut out.deaths,
                );
            }
        });

        // Shard s covers smaller slots than shard s + 1, so concatenation
        // in shard order reproduces the serial loop's ascending slot order.
        for out in &self.shard_out[..shards] {
            splits.extend_from_slice(&out.splits);
            deaths.extend_from_slice(&out.deaths);
        }
    }
}

impl ColumnarStep<AgentState> for StabilityColumns {
    fn load(&mut self, agents: &[AgentState], pool: Option<&ShardPool>) {
        use std::slice;
        let n = agents.len();
        self.resize(n);
        match pool {
            Some(pool) if pool.shards() > 1 => {
                let nw = n.div_ceil(64);
                let shards = pool.shards();
                let rnd_p = ColPtr::new(self.round.as_mut_ptr());
                let tr_p = ColPtr::new(self.to_recruit.as_mut_ptr());
                let lin_p = ColPtr::new(self.lineage.as_mut_ptr());
                let act_p = ColPtr::new(self.active.words_mut().as_mut_ptr());
                let rec_p = ColPtr::new(self.recruiting.words_mut().as_mut_ptr());
                let col_p = ColPtr::new(self.color.words_mut().as_mut_ptr());
                let il_p = ColPtr::new(self.is_leader.words_mut().as_mut_ptr());
                let params = &self.params;
                pool.dispatch(&|s| {
                    let (wlo, whi) = word_shard_range(nw, shards, s);
                    if wlo == whi {
                        return;
                    }
                    let (lo, hi) = (wlo * 64, (whi * 64).min(n));
                    let (len, wlen) = (hi - lo, whi - wlo);
                    // SAFETY: disjoint word-aligned ranges per shard; the
                    // agent slice is only read.
                    unsafe {
                        load_range(
                            params,
                            &agents[lo..hi],
                            slice::from_raw_parts_mut(rnd_p.get().add(lo), len),
                            slice::from_raw_parts_mut(tr_p.get().add(lo), len),
                            slice::from_raw_parts_mut(lin_p.get().add(lo), len),
                            slice::from_raw_parts_mut(act_p.get().add(wlo), wlen),
                            slice::from_raw_parts_mut(rec_p.get().add(wlo), wlen),
                            slice::from_raw_parts_mut(col_p.get().add(wlo), wlen),
                            slice::from_raw_parts_mut(il_p.get().add(wlo), wlen),
                        );
                    }
                });
            }
            _ => load_range(
                &self.params,
                agents,
                &mut self.round,
                &mut self.to_recruit,
                &mut self.lineage,
                self.active.words_mut(),
                self.recruiting.words_mut(),
                self.color.words_mut(),
                self.is_leader.words_mut(),
            ),
        }
    }

    fn step(
        &mut self,
        partners: &[u32],
        round_key: u64,
        pool: Option<&ShardPool>,
        splits: &mut Vec<usize>,
        deaths: &mut Vec<usize>,
    ) {
        debug_assert_eq!(partners.len(), self.len);
        let nw = self.len.div_ceil(64);
        // Contents are unspecified: the wire pass stores every block whole.
        self.wire8.resize(nw * 64, 0);
        self.block_round.resize(nw, 0);
        self.block_uniform.resize(nw, false);
        match pool {
            Some(pool) if pool.shards() > 1 => {
                self.step_pooled(partners, round_key, pool, splits, deaths);
            }
            _ => self.step_serial(partners, round_key, splits, deaths),
        }
    }

    fn apply(&mut self, splits: &[usize], deaths: &[usize]) {
        for &i in splits {
            self.push_clone(i);
        }
        for &i in deaths.iter().rev() {
            self.swap_remove(i);
        }
    }

    fn store(&self, agents: &mut Vec<AgentState>) {
        let t = self.params.epoch_len();
        agents.clear();
        agents.reserve(self.len);
        let aw = self.active.words();
        let rw = self.recruiting.words();
        let cw = self.color.words();
        let iw = self.is_leader.words();
        for la in 0..self.len {
            let (w, b) = (la >> 6, la & 63);
            agents.push(AgentState {
                round: self.round[la],
                active: aw[w] >> b & 1 != 0,
                color: if cw[w] >> b & 1 != 0 {
                    Color::One
                } else {
                    Color::Zero
                },
                recruiting: rw[w] >> b & 1 != 0,
                to_recruit: self.to_recruit[la],
                is_leader: iw[w] >> b & 1 != 0,
                lineage: self.lineage[la],
                epoch_len: t,
            });
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        let shard_lists: usize = self
            .shard_out
            .iter()
            .map(|o| (o.splits.capacity() + o.deaths.capacity()) * size_of::<usize>())
            .sum::<usize>()
            + self
                .shard_hazards
                .iter()
                .map(|h| h.capacity() * size_of::<(u32, u64)>())
                .sum::<usize>();
        self.round.capacity() * size_of::<u32>()
            + self.to_recruit.capacity() * size_of::<u32>()
            + self.lineage.capacity() * size_of::<u64>()
            + self.active.capacity_bytes()
            + self.recruiting.capacity_bytes()
            + self.color.capacity_bytes()
            + self.is_leader.capacity_bytes()
            + self.wire8.capacity()
            + self.block_round.capacity() * size_of::<u32>()
            + self.block_uniform.capacity()
            + self.hazards.capacity() * size_of::<(u32, u64)>()
            + shard_lists
    }
}

/// Transpose pass: stream `agents` (one range) once into the authoritative
/// columns. Bit words are built in registers and stored whole, so stale
/// buffer contents and tail bits never leak. Rounds are normalized on the
/// way in — exact, because the scalar step normalizes before any use and
/// a store can only observe stepped (hence normalized) agents.
#[allow(clippy::too_many_arguments)]
fn load_range(
    params: &Params,
    agents: &[AgentState],
    round: &mut [u32],
    to_recruit: &mut [u32],
    lineage: &mut [u64],
    active: &mut [u64],
    recruiting: &mut [u64],
    color: &mut [u64],
    is_leader: &mut [u64],
) {
    let t = params.epoch_len();
    for (w, chunk) in agents.chunks(64).enumerate() {
        let mut wa = 0u64;
        let mut wr = 0u64;
        let mut wc = 0u64;
        let mut il = 0u64;
        for (l, s) in chunk.iter().enumerate() {
            let la = w * 64 + l;
            wa |= u64::from(s.active) << l;
            wr |= u64::from(s.recruiting) << l;
            wc |= u64::from(s.color == Color::One) << l;
            il |= u64::from(s.is_leader) << l;
            round[la] = if s.round < t { s.round } else { s.round % t };
            to_recruit[la] = s.to_recruit;
            lineage[la] = s.lineage;
        }
        active[w] = wa;
        recruiting[w] = wr;
        color[w] = wc;
        is_leader[w] = il;
    }
}

/// Wire pass: compose every agent's three-bit [`Wire`] (Algorithm 2) from
/// the columns as word algebra, publish it into the `wire8` byte column,
/// record block round uniformity, and list latch-hazard lanes. `base` is
/// the global slot of the range's first lane (word-aligned); `wire8` is
/// the range's own `64 * words`-byte window.
#[allow(clippy::too_many_arguments)]
fn wire_range(
    params: &Params,
    base: usize,
    len: usize,
    round: &[u32],
    lineage: &[u64],
    active: &[u64],
    recruiting: &[u64],
    color: &[u64],
    wire8: &mut [u8],
    block_round: &mut [u32],
    block_uniform: &mut [bool],
    hazards: &mut Vec<(u32, u64)>,
) {
    let t = params.epoch_len();
    let eval = params.eval_round();
    for w in 0..len.div_ceil(64) {
        let lanes = (len - w * 64).min(64);
        let tailm = tail_mask(lanes);
        let rounds = &round[w * 64..w * 64 + lanes];
        let r0 = rounds[0];
        let mut acc = 0u32;
        for &r in rounds {
            acc |= r ^ r0;
        }
        let rn0 = if r0 < t { r0 } else { r0 % t };
        let (ew, zw);
        if acc == 0 {
            ew = if rn0 == eval { tailm } else { 0 };
            zw = if rn0 == 0 { tailm } else { 0 };
            block_uniform[w] = true;
        } else {
            let mut e_bits = 0u64;
            let mut z_bits = 0u64;
            for (l, &r) in rounds.iter().enumerate() {
                let rn = if r < t { r } else { r % t };
                e_bits |= u64::from(rn == eval) << l;
                z_bits |= u64::from(rn == 0) << l;
            }
            ew = e_bits;
            zw = z_bits;
            block_uniform[w] = false;
        }
        block_round[w] = rn0;
        let wa = active[w] & tailm;
        let wr = recruiting[w] & tailm;
        let wc = color[w] & tailm;
        // Algorithm 2 as word algebra: in eval, (x, y) = (active, color);
        // recruiting agents advertise (1, color); the rest (0, active).
        let xw = (ew & wa) | (!ew & wr);
        let o = ew | wr;
        let yw = (o & wc) | (!o & wa);
        // Publish the block's 64 wire bytes, eight lanes per store. Tail
        // lanes get the bare presence bit; no valid partner slot reaches
        // them, so the garbage is unobservable.
        for g in 0..8 {
            let sh = g * 8;
            let v = spread8((yw >> sh) as u8)
                | (spread8((xw >> sh) as u8) << 1)
                | (spread8((ew >> sh) as u8) << 2)
                | (u64::from(WIRE8_PRESENT) * 0x0101_0101_0101_0101);
            wire8[w * 64 + sh..w * 64 + sh + 8].copy_from_slice(&v.to_le_bytes());
        }
        debug_assert!((0..lanes).all(|l| {
            let r = rounds[l];
            let rn = if r < t { r } else { r % t };
            let in_eval = rn == eval;
            let (a, rq, c) = (wa >> l & 1 != 0, wr >> l & 1 != 0, wc >> l & 1 != 0);
            let (xb, yb) = if in_eval {
                (a, c)
            } else if rq {
                (true, c)
            } else {
                (false, a)
            };
            let got = (yw >> l & 1) as u8 | ((xw >> l & 1) as u8) << 1 | ((ew >> l & 1) as u8) << 2;
            got == Wire::from_bits(in_eval, xb, yb).bits()
                && wire8[w * 64 + l] == got | WIRE8_PRESENT
        }));
        // Latch-hazard lanes (module docs): advertising `recruiting` on the
        // wire while this round may overwrite their own lineage.
        let mut hz = wr & !ew & (zw | !wa);
        while hz != 0 {
            let l = hz.trailing_zeros() as usize;
            hz &= hz - 1;
            hazards.push(((base + w * 64 + l) as u32, lineage[w * 64 + l]));
        }
    }
}

/// A matched, non-eval, recruiting partner's pre-step lineage: from the
/// hazard list if the lane's own lineage may change this round, else live
/// from the column.
#[inline]
fn latched_lineage(lin: ColPtr<u64>, hazards: &[(u32, u64)], p: usize) -> u64 {
    if !hazards.is_empty() {
        if let Ok(k) = hazards.binary_search_by_key(&(p as u32), |h| h.0) {
            return hazards[k].1;
        }
    }
    // SAFETY: `p` indexes the live population; any lineage element a
    // kernel overwrites this round belongs to a hazard-listed lane (module
    // docs), so this element is read-only for the whole step pass.
    unsafe { lin.get().add(p).cast_const().read() }
}

/// Step pass: per block, gather the partners' wire bytes into register
/// masks and run the round transition, writing results straight into the
/// columns. `base` is the global slot of the range's first lane
/// (word-aligned); `wire8` is the *global* wire byte column; splits/deaths
/// carry global slots in ascending order.
#[allow(clippy::too_many_arguments)]
fn step_range(
    params: &Params,
    round_key: u64,
    base: usize,
    len: usize,
    partners: &[u32],
    wire8: &[u8],
    hazards: &[(u32, u64)],
    lin: ColPtr<u64>,
    st: &mut StateRange<'_>,
    block_round: &[u32],
    block_uniform: &[bool],
    splits: &mut Vec<usize>,
    deaths: &mut Vec<usize>,
) {
    let eval = params.eval_round();
    for w in 0..len.div_ceil(64) {
        let lanes = (len - w * 64).min(64);
        // Gather this block's partner masks: one masked byte load per lane,
        // branch-free (a random `p != UNMATCHED` branch would mispredict
        // half the time), then one bit-plane transpose per eight lanes.
        // The presence bit doubles as the matched mask, and the byte column
        // stays cache-resident even at million-agent scale.
        let mut mm = 0u64;
        let mut me = 0u64;
        let mut mx = 0u64;
        let mut my = 0u64;
        for (g, chunk) in partners[w * 64..w * 64 + lanes].chunks(8).enumerate() {
            let mut t = 0u64;
            for (b, &p) in chunk.iter().enumerate() {
                let sel = p != UNMATCHED;
                let idx = if sel { p as usize } else { 0 };
                // SAFETY: every partner slot indexes the live population
                // (`partner_table_into` invariant), and `wire8` covers it.
                let byte = unsafe { *wire8.get_unchecked(idx) } & 0u8.wrapping_sub(u8::from(sel));
                t |= u64::from(byte) << (b * 8);
            }
            let sh = g * 8;
            my |= pack_lsb(t) << sh;
            mx |= pack_lsb(t >> 1) << sh;
            me |= pack_lsb(t >> 2) << sh;
            mm |= pack_lsb(t >> 3) << sh;
        }
        let blk = Block {
            slot0: base + w * 64,
            lanes,
            tail: tail_mask(lanes),
            mm,
            me,
            mx,
            my,
        };
        // Latch the partner's pre-step lineage at every lane the
        // recruitment rule could read it from: matched, self inactive,
        // partner advertising `recruiting` (not-eval with `x` set).
        let mut plin = [0u64; 64];
        let mut latch = mm & !me & mx & !st.active[w];
        while latch != 0 {
            let l = latch.trailing_zeros() as usize;
            latch &= latch - 1;
            let p = partners[w * 64 + l] as usize;
            plin[l] = latched_lineage(lin, hazards, p);
        }
        if block_uniform[w] {
            let rn = block_round[w];
            if rn == 0 {
                leader_block(params, round_key, &blk, st, w, lin, deaths);
            } else if rn == eval {
                eval_block(params, round_key, rn, &blk, st, w, lin, splits, deaths);
            } else {
                recruit_block(params, rn, &blk, st, w, lin, &plin, deaths);
            }
        } else {
            let mut wa = st.active[w];
            let mut wr = st.recruiting[w];
            let mut wc = st.color[w];
            let mut il = st.is_leader[w];
            for (l, &partner) in plin.iter().enumerate().take(lanes) {
                step_lane(
                    params,
                    round_key,
                    &blk,
                    l,
                    partner,
                    &mut wa,
                    &mut wr,
                    &mut wc,
                    &mut il,
                    &mut st.round[w * 64 + l],
                    &mut st.to_recruit[w * 64 + l],
                    lin,
                    splits,
                    deaths,
                );
            }
            st.active[w] = wa;
            st.recruiting[w] = wr;
            st.color[w] = wc;
            st.is_leader[w] = il;
        }
    }
}

/// Round 0 (Algorithm 3, `DetermineIfLeader`) over one uniform block.
fn leader_block(
    params: &Params,
    round_key: u64,
    blk: &Block,
    st: &mut StateRange<'_>,
    w: usize,
    lin: ColPtr<u64>,
    deaths: &mut Vec<usize>,
) {
    // Consistency (Algorithm 7): a matched partner claiming eval kills us
    // before anything else; dead lanes keep their state (round stays 0).
    let die = blk.mm & blk.me;
    let live = !die & blk.tail;
    let exp = params.leader_bias_exp();
    let mut win = 0u64;
    for g in 0..blk.lanes.div_ceil(LANES) {
        let keys = slot_key_x8(round_key, (blk.slot0 + g * LANES) as u64);
        win |= u64::from(biased_coin_x8(exp, &keys)) << (g * LANES);
    }
    win &= live;
    let rounds = &mut st.round[w * 64..w * 64 + blk.lanes];
    for (l, r) in rounds.iter_mut().enumerate() {
        *r = (live >> l & 1) as u32;
    }
    // Losers: `active` is *assigned* false (Algorithm 3 overwrites whatever
    // an adversarially inserted agent claimed); winners set the flag, dead
    // lanes keep theirs.
    st.active[w] = (st.active[w] & die) | win;
    st.recruiting[w] |= win;
    st.is_leader[w] |= win;
    // Winners are ~2^-exp rare: replay the scalar draw order (coin words,
    // color, lineage) on each winner's own slot stream.
    let mut wc = st.color[w];
    let mut bits = win;
    while bits != 0 {
        let l = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let slot = blk.slot0 + l;
        let mut rng = slot_rng(round_key, slot as u64);
        let won = toss_biased_coin(exp, &mut rng);
        debug_assert!(won, "x8 winner must replay as a scalar winner");
        if rng.random::<bool>() {
            wc |= 1u64 << l;
        } else {
            wc &= !(1u64 << l);
        }
        st.to_recruit[w * 64 + l] = params.subphases();
        // SAFETY: a winner's own lineage element; if any partner could
        // latch it, the lane is hazard-listed and readers use the list.
        unsafe { lin.get().add(slot).write(rng.random::<u64>() | 1) };
    }
    st.color[w] = wc;
    let mut bits = die;
    while bits != 0 {
        let l = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        deaths.push(blk.slot0 + l);
    }
}

/// Rounds `1 … T−2` (Algorithm 5, `RecruitmentPhase`) over one uniform
/// block, as pure mask algebra (the only coin-free phase).
#[allow(clippy::too_many_arguments)]
fn recruit_block(
    params: &Params,
    rn: u32,
    blk: &Block,
    st: &mut StateRange<'_>,
    w: usize,
    lin: ColPtr<u64>,
    plin: &[u64; 64],
    deaths: &mut Vec<usize>,
) {
    let die = blk.mm & blk.me;
    let live = !die & blk.tail;
    let active = st.active[w];
    let recruiting = st.recruiting[w];
    // Word-level wire decode (Wire::active / Wire::recruiting, vectorized);
    // only meaningful under `mm`, and always consumed under it.
    let p_active = (blk.me & blk.mx) | (!blk.me & (blk.mx | blk.my));
    let p_recruiting = !blk.me & blk.mx;
    let stand_down = recruiting & blk.mm & !p_active & live;
    let recruited = !active & p_recruiting & blk.mm & live;
    // The scalar `else if` order cannot matter: a recruiting wire implies
    // an active wire, so the two branch conditions are disjoint.
    debug_assert_eq!(stand_down & recruited, 0);
    let mut recruiting_new = recruiting & !(stand_down | recruited);
    if params.is_subphase_boundary(rn) {
        // Re-arm uses the *updated* active set: an agent recruited at a
        // boundary round re-arms immediately, exactly as in the scalar
        // branch order.
        recruiting_new |= (active | recruited) & live;
    }
    let rounds = &mut st.round[w * 64..w * 64 + blk.lanes];
    for (l, r) in rounds.iter_mut().enumerate() {
        *r = rn + (live >> l & 1) as u32;
    }
    st.active[w] = active | recruited;
    st.recruiting[w] = recruiting_new;
    let mut wc = st.color[w];
    let mut bits = recruited;
    while bits != 0 {
        let l = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if blk.my >> l & 1 != 0 {
            wc |= 1u64 << l;
        } else {
            wc &= !(1u64 << l);
        }
        st.to_recruit[w * 64 + l] = params.to_recruit_at(rn);
        // SAFETY: a recruit's own lineage element; if any partner could
        // latch it, the lane is hazard-listed and readers use the list.
        unsafe { lin.get().add(blk.slot0 + l).write(plin[l]) };
    }
    st.color[w] = wc;
    let mut bits = stand_down;
    while bits != 0 {
        let l = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let tr = &mut st.to_recruit[w * 64 + l];
        *tr = tr.saturating_sub(1);
    }
    let mut bits = die;
    while bits != 0 {
        let l = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        deaths.push(blk.slot0 + l);
    }
}

/// Round `T−1` (Algorithm 6, `EvaluationPhase`) over one uniform block.
#[allow(clippy::too_many_arguments)]
fn eval_block(
    params: &Params,
    round_key: u64,
    rn: u32,
    blk: &Block,
    st: &mut StateRange<'_>,
    w: usize,
    lin: ColPtr<u64>,
    splits: &mut Vec<usize>,
    deaths: &mut Vec<usize>,
) {
    // Consistency: a matched partner NOT in eval kills us, and the scalar
    // path early-returns — those lanes keep their whole state.
    let die_c = blk.mm & !blk.me;
    let live = !die_c & blk.tail;
    let active = st.active[w];
    let color = st.color[w];
    // In eval the partner's wire `x` bit IS its active flag.
    let decision = active & blk.mm & blk.mx & live;
    let diff = decision & (blk.my ^ color);
    let same = decision & !(blk.my ^ color);
    let mut split_mask = 0u64;
    if same != 0 {
        let exp = params.split_bias_exp();
        for g in 0..blk.lanes.div_ceil(LANES) {
            let gm = (same >> (g * LANES)) as u8;
            if gm == 0 {
                continue;
            }
            let keys = slot_key_x8(round_key, (blk.slot0 + g * LANES) as u64);
            // `true` = all heads = keep; split on the complement. Unused
            // lanes cost nothing: draws are addressable, so computing a
            // lane the scalar path would not have drawn perturbs no other
            // draw position.
            let heads = biased_coin_x8(exp, &keys);
            split_mask |= u64::from(!heads & gm) << (g * LANES);
        }
    }
    // Reset every live lane for the next epoch (including different-color
    // deaths: Algorithm 6 resets before returning Die). Consistency deaths
    // keep their state bar the normalized round.
    let rounds = &mut st.round[w * 64..w * 64 + blk.lanes];
    for (l, r) in rounds.iter_mut().enumerate() {
        *r = if die_c >> l & 1 != 0 { rn } else { 0 };
    }
    st.active[w] = active & die_c;
    st.recruiting[w] &= die_c;
    st.color[w] = color & die_c;
    st.is_leader[w] &= die_c;
    for l in 0..blk.lanes {
        let keep32 = 0u32.wrapping_sub((die_c >> l & 1) as u32);
        st.to_recruit[w * 64 + l] &= keep32;
        let keep64 = 0u64.wrapping_sub(die_c >> l & 1);
        // SAFETY: an eval lane's own lineage element; eval lanes advertise
        // `in_eval` on the wire, so no partner latches them.
        unsafe {
            let p = lin.get().add(blk.slot0 + l);
            p.write(p.read() & keep64);
        }
    }
    // One ascending sweep emits deaths and splits in slot order, exactly
    // as the scalar loop pushes them (a lane is in at most one set).
    let die_all = die_c | diff;
    let mut bits = die_all | split_mask;
    while bits != 0 {
        let l = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if die_all >> l & 1 != 0 {
            deaths.push(blk.slot0 + l);
        } else {
            splits.push(blk.slot0 + l);
        }
    }
}

/// Exact per-lane transition for blocks with mixed round numbers
/// (adversarial desync): a transcription of `PopulationStability::step`
/// against the gathered wire bits, draw-for-draw, writing the columns.
/// `plin` is the lane's latched partner lineage (valid wherever the
/// recruitment rule reads it); `wa`/`wr`/`wc`/`il` are the block's flag
/// words, register-resident across the caller's lane loop.
#[allow(clippy::too_many_arguments)]
fn step_lane(
    params: &Params,
    round_key: u64,
    blk: &Block,
    l: usize,
    plin: u64,
    wa: &mut u64,
    wr: &mut u64,
    wc: &mut u64,
    il: &mut u64,
    round: &mut u32,
    to_recruit: &mut u32,
    lin: ColPtr<u64>,
    splits: &mut Vec<usize>,
    deaths: &mut Vec<usize>,
) {
    let slot = blk.slot0 + l;
    let bit = 1u64 << l;
    let t = params.epoch_len();
    let mut r = *round;
    if r >= t {
        r %= t;
    }
    let in_eval = r == params.eval_round();
    let matched = blk.mm & bit != 0;
    if matched && (blk.me & bit != 0) != in_eval {
        *round = r;
        deaths.push(slot);
        return;
    }
    if r == 0 {
        let mut rng = slot_rng(round_key, slot as u64);
        if toss_biased_coin(params.leader_bias_exp(), &mut rng) {
            *wa |= bit;
            if rng.random::<bool>() {
                *wc |= bit;
            } else {
                *wc &= !bit;
            }
            *wr |= bit;
            *to_recruit = params.subphases();
            *il |= bit;
            // SAFETY: own lineage element; hazard-listed if latchable.
            unsafe { lin.get().add(slot).write(rng.random::<u64>() | 1) };
        } else {
            *wa &= !bit;
        }
        *round = 1;
    } else if !in_eval {
        if matched {
            let px = blk.mx & bit != 0;
            let py = blk.my & bit != 0;
            // Partner passed consistency, so it is not in eval: decode
            // active as `x || y`, recruiting as `x`.
            let p_active = px || py;
            if *wr & bit != 0 && !p_active {
                *wr &= !bit;
                *to_recruit = to_recruit.saturating_sub(1);
            } else if *wa & bit == 0 && px {
                *wa |= bit;
                if py {
                    *wc |= bit;
                } else {
                    *wc &= !bit;
                }
                *wr &= !bit;
                *to_recruit = params.to_recruit_at(r);
                // SAFETY: own lineage element; hazard-listed if latchable.
                unsafe { lin.get().add(slot).write(plin) };
            }
        }
        if params.is_subphase_boundary(r) && *wa & bit != 0 {
            *wr |= bit;
        }
        *round = r + 1;
    } else {
        let mut action = Action::Continue;
        if *wa & bit != 0 && matched && blk.mx & bit != 0 {
            if (blk.my & bit != 0) == (*wc & bit != 0) {
                let mut rng = slot_rng(round_key, slot as u64);
                if !toss_biased_coin(params.split_bias_exp(), &mut rng) {
                    action = Action::Split;
                }
            } else {
                action = Action::Die;
            }
        }
        *round = 0;
        *wa &= !bit;
        *wr &= !bit;
        *wc &= !bit;
        *il &= !bit;
        *to_recruit = 0;
        // SAFETY: own lineage element; eval lanes are never latched.
        unsafe { lin.get().add(slot).write(0) };
        match action {
            Action::Split => splits.push(slot),
            Action::Die => deaths.push(slot),
            Action::Continue | Action::KillPartner => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::matching::{sample_matching_into, Matching};
    use popstab_sim::rng::{rng_from_seed, round_key};
    use popstab_sim::{MatchingModel, Protocol};

    /// One scalar reference round: messages, steps, splits/deaths.
    fn scalar_round(
        proto: &PopulationStability,
        agents: &mut [AgentState],
        partners: &[u32],
        rkey: u64,
        splits: &mut Vec<usize>,
        deaths: &mut Vec<usize>,
    ) {
        let messages: Vec<Option<crate::message::Message>> = partners
            .iter()
            .map(|&p| {
                if p == UNMATCHED {
                    None
                } else {
                    Some(proto.message(&agents[p as usize]))
                }
            })
            .collect();
        for (i, incoming) in messages.iter().enumerate() {
            let mut rng = slot_rng(rkey, i as u64);
            match proto.step(&mut agents[i], incoming.as_ref(), &mut rng) {
                Action::Continue => {}
                Action::Split => splits.push(i),
                Action::Die => deaths.push(i),
                Action::KillPartner => unreachable!("core protocol never kills partners"),
            }
        }
    }

    fn partner_table(n: usize, seed: u64, round: u64) -> Vec<u32> {
        let mut matching = Matching::default();
        let mut shuffle = Vec::new();
        sample_matching_into(
            &mut matching,
            &mut shuffle,
            n,
            MatchingModel::Full,
            round_key(seed ^ 0x6d61, round),
        );
        let mut partners = Vec::new();
        matching.partner_table_into(&mut partners, n);
        partners
    }

    /// Drives one load → step → store cycle and the scalar `Protocol::step`
    /// loop over the same population + matching and asserts bit-identical
    /// states, splits, and deaths — the unit-level twin of the engine-level
    /// equivalence tests.
    fn assert_step_phase_matches_scalar(
        proto: &PopulationStability,
        agents: &[AgentState],
        seed: u64,
        round: u64,
    ) {
        let partners = partner_table(agents.len(), seed, round);
        let rkey = round_key(seed, round);

        let mut scalar = agents.to_vec();
        let mut s_splits = Vec::new();
        let mut s_deaths = Vec::new();
        scalar_round(
            proto,
            &mut scalar,
            &partners,
            rkey,
            &mut s_splits,
            &mut s_deaths,
        );

        let mut stepper = StabilityColumns::new(proto.params().clone());
        stepper.load(agents, None);
        let mut c_splits = Vec::new();
        let mut c_deaths = Vec::new();
        stepper.step(&partners, rkey, None, &mut c_splits, &mut c_deaths);
        let mut columnar = Vec::new();
        stepper.store(&mut columnar);

        assert_eq!(scalar, columnar, "states diverged at round {round}");
        assert_eq!(s_splits, c_splits, "splits diverged at round {round}");
        assert_eq!(s_deaths, c_deaths, "deaths diverged at round {round}");
    }

    #[test]
    fn columnar_step_matches_scalar_across_whole_epochs() {
        let params = Params::for_target(1024).unwrap();
        let proto = PopulationStability::new(params.clone());
        let mut agents: Vec<AgentState> = (0..300).map(|_| AgentState::fresh(&params)).collect();
        // Drive the *population* forward with the scalar path, checking
        // every round's step phase on the way (covers leader, boundary,
        // plain recruitment, and eval rounds).
        for round in 0..u64::from(params.epoch_len()) + 3 {
            assert_step_phase_matches_scalar(&proto, &agents, 77, round);
            let partners = partner_table(agents.len(), 77, round);
            let rkey = round_key(77, round);
            let (mut splits, mut deaths) = (Vec::new(), Vec::new());
            scalar_round(
                &proto,
                &mut agents,
                &partners,
                rkey,
                &mut splits,
                &mut deaths,
            );
        }
    }

    #[test]
    fn resident_columns_match_scalar_over_epochs_with_apply() {
        // The resident lifecycle: load once, then step + apply round after
        // round on the columns alone (population changing through splits
        // and deaths), storing only at the very end. Must reproduce the
        // scalar trajectory byte for byte.
        let params = Params::for_target(1024).unwrap();
        let proto = PopulationStability::new(params.clone());
        let mut scalar: Vec<AgentState> = (0..300).map(|_| AgentState::fresh(&params)).collect();
        let mut stepper = StabilityColumns::new(params.clone());
        stepper.load(&scalar, None);
        for round in 0..2 * u64::from(params.epoch_len()) + 3 {
            let partners = partner_table(scalar.len(), 909, round);
            let rkey = round_key(909, round);
            let (mut s_splits, mut s_deaths) = (Vec::new(), Vec::new());
            scalar_round(
                &proto,
                &mut scalar,
                &partners,
                rkey,
                &mut s_splits,
                &mut s_deaths,
            );
            let (mut c_splits, mut c_deaths) = (Vec::new(), Vec::new());
            stepper.step(&partners, rkey, None, &mut c_splits, &mut c_deaths);
            assert_eq!(s_splits, c_splits, "splits diverged at round {round}");
            assert_eq!(s_deaths, c_deaths, "deaths diverged at round {round}");
            // Engine apply semantics on both representations.
            s_deaths.sort_unstable();
            s_deaths.dedup();
            for &i in &s_splits {
                let d = scalar[i];
                scalar.push(d);
            }
            for &i in s_deaths.iter().rev() {
                scalar.swap_remove(i);
            }
            stepper.apply(&c_splits, &s_deaths);
            assert_eq!(
                stepper.len(),
                scalar.len(),
                "population diverged at round {round}"
            );
        }
        let mut columnar = Vec::new();
        stepper.store(&mut columnar);
        assert_eq!(scalar, columnar, "resident trajectory diverged");
    }

    #[test]
    fn columnar_step_matches_scalar_on_desynced_blocks() {
        // Mixed-round blocks force the per-lane fallback; make sure it and
        // the uniform kernels agree with the scalar path side by side.
        let params = Params::for_target(1024).unwrap();
        let proto = PopulationStability::new(params.clone());
        let t = params.epoch_len();
        let mut g = rng_from_seed(42);
        let agents: Vec<AgentState> = (0u64..200)
            .map(|i| {
                use rand::Rng;
                let r: u32 = (g.random::<u32>()) % (2 * t);
                match i % 4 {
                    0 => AgentState::fresh(&params),
                    1 => AgentState::desynced(&params, r),
                    2 => AgentState::active_at(&params, r % t, Color::One),
                    _ => AgentState::leader(&params, Color::Zero, i | 1),
                }
            })
            .collect();
        for round in 0..6 {
            assert_step_phase_matches_scalar(&proto, &agents, 1234, round);
        }
    }

    #[test]
    fn mem_bytes_grows_with_population() {
        let params = Params::for_target(1024).unwrap();
        let proto = PopulationStability::new(params.clone());
        let mut stepper = StabilityColumns::new(params.clone());
        assert_eq!(stepper.mem_bytes(), 0);
        let agents: Vec<AgentState> = (0..1024).map(|_| AgentState::fresh(&params)).collect();
        stepper.load(&agents, None);
        let partners = partner_table(agents.len(), 5, 0);
        let (mut splits, mut deaths) = (Vec::new(), Vec::new());
        stepper.step(&partners, round_key(5, 0), None, &mut splits, &mut deaths);
        let _ = &proto;
        let bytes = stepper.mem_bytes();
        // 16 B of u32/u64 columns + 7 bit columns + block metadata
        // ≈ 17 B/agent.
        assert!(bytes >= 16 * 1024, "columns too small: {bytes}");
        assert!(bytes <= 24 * 1024, "columns unexpectedly large: {bytes}");
    }
}
