//! The population stability protocol of Goldwasser, Ostrovsky, Scafuro and
//! Sealfon (PODC 2018).
//!
//! A population of `N` memory-constrained agents — each holding only
//! `Θ(log log N)` bits — must perpetually keep its size within `(1 ± α)N`
//! while a worst-case adversary, who can read every agent's memory, inserts
//! and deletes up to `K = N^{1/4-ε}` agents per round.
//!
//! The protocol (§3 of the paper, Algorithms 1–7) runs in epochs of
//! `T = ½·log N · T_inner` rounds:
//!
//! 1. **Leader selection** (round 0): each agent independently becomes a
//!    leader with probability `1/(8√N)` and picks a uniform color in `{0,1}`.
//! 2. **Recruitment** (rounds `1 … T−2`, in `½ log N` subphases): each active
//!    agent recruits one inactive agent per subphase, passing on its color;
//!    clusters double every subphase, so each leader induces a cluster of
//!    exactly `√N` same-colored agents.
//! 3. **Evaluation** (round `T−1`): matched active agents compare colors —
//!    same color → split with probability `1 − 16/√N`; different colors →
//!    self-destruct. Everyone then resets for the next epoch.
//!
//! The population size is thereby encoded in the *variance* of the color
//! distribution: more leaders (larger population) → colors more balanced →
//! "same color" slightly less likely → net shrinkage, and vice versa. The
//! unique equilibrium of the exact one-epoch expectation is
//! `m* = N − 8√N` (see `popstab-analysis`).
//!
//! Agents whose epoch clock disagrees with their neighbor's (possible only
//! via adversarial insertion) self-destruct on contact
//! (`CheckRoundConsistency`, Algorithm 7); messages fit in **three bits**
//! ([`message::Wire`]).
//!
//! # Example
//!
//! ```
//! use popstab_core::{params::Params, protocol::PopulationStability};
//! use popstab_sim::{Engine, RunSpec, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = Params::for_target(1024)?;
//! let epoch = u64::from(params.epoch_len());
//! let protocol = PopulationStability::new(params);
//! let cfg = SimConfig::builder().seed(1).target(1024).build()?;
//! let mut engine = Engine::with_population(protocol, cfg, 1024);
//! engine.run(RunSpec::rounds(2 * epoch), &mut ());
//! assert!(engine.population() > 512 && engine.population() < 2048);
//! # Ok(())
//! # }
//! ```

pub mod accounting;
pub mod coin;
pub mod columns;
pub mod message;
pub mod params;
pub mod protocol;
pub mod state;

pub use message::{Message, Wire};
pub use params::{Params, ParamsError};
pub use protocol::PopulationStability;
pub use state::{AgentState, Color};
