//! Messages and the three-bit wire format (§4 of the paper).
//!
//! A naive implementation sends four booleans: `(inEvalPhase, active, color,
//! recruiting)`. The paper observes that three bits suffice because the
//! receiver never needs all four simultaneously:
//!
//! * `inEvalPhase = 1` → send `(active, color)` — `recruiting` is
//!   irrelevant during evaluation;
//! * `inEvalPhase = 0, recruiting = 1` → send `color` — a recruiting agent
//!   is necessarily active, so `active` is implied;
//! * `inEvalPhase = 0, recruiting = 0` → send `active` — the color of a
//!   non-recruiting agent is never read during recruitment.
//!
//! [`Wire`] is that three-bit encoding. The protocol's decision logic only
//! ever consumes a decoded [`Wire`] (see
//! [`PopulationStability`](crate::protocol::PopulationStability)), so the
//! three-bit bound is enforced structurally, not just asserted.

use crate::state::{AgentState, Color};

/// The logical message an agent broadcasts, plus the `lineage`
/// instrumentation tag that rides alongside in simulation (it lets
/// experiments track recruitment trees; the protocol never reads it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Whether the sender is in its evaluation round.
    pub in_eval_phase: bool,
    /// Whether the sender is active.
    pub active: bool,
    /// The sender's color.
    pub color: Color,
    /// Whether the sender is recruiting this subphase.
    pub recruiting: bool,
    /// Cluster tag of the sender (instrumentation, not on the wire).
    pub lineage: u64,
}

impl Message {
    /// Composes the message an agent in state `s` sends, given whether the
    /// protocol considers it to be in the evaluation round.
    pub fn compose(s: &AgentState, in_eval_phase: bool) -> Message {
        Message {
            in_eval_phase,
            active: s.active,
            color: s.color,
            recruiting: s.recruiting,
            lineage: s.lineage,
        }
    }

    /// Encodes onto the three-bit wire, dropping exactly the fields the
    /// receiver never needs.
    pub fn to_wire(&self) -> Wire {
        let (x, y) = if self.in_eval_phase {
            (self.active, self.color == Color::One)
        } else if self.recruiting {
            (true, self.color == Color::One)
        } else {
            (false, self.active)
        };
        Wire::from_bits(self.in_eval_phase, x, y)
    }
}

/// A three-bit wire message and its decoded receiver view.
///
/// Bit layout (low to high): `y`, `x`, `in_eval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire(u8);

impl Wire {
    /// Builds from the three raw bits.
    pub fn from_bits(in_eval: bool, x: bool, y: bool) -> Wire {
        Wire(u8::from(y) | (u8::from(x) << 1) | (u8::from(in_eval) << 2))
    }

    /// The raw three-bit value (`0..8`).
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// Whether the sender reported being in its evaluation round. Always
    /// available — it drives `CheckRoundConsistency`.
    pub fn in_eval_phase(&self) -> bool {
        self.0 & 0b100 != 0
    }

    /// Whether the sender is active.
    ///
    /// Decoding: during evaluation it is the transmitted `x` bit; outside
    /// evaluation a recruiting sender is necessarily active, and a
    /// non-recruiting sender transmits it as `y`.
    pub fn active(&self) -> bool {
        let x = self.0 & 0b010 != 0;
        let y = self.0 & 0b001 != 0;
        if self.in_eval_phase() {
            x
        } else if x {
            true // recruiting implies active
        } else {
            y
        }
    }

    /// Whether the sender is recruiting. Only transmitted outside the
    /// evaluation round; during evaluation the receiver never consults it
    /// and `false` is returned.
    pub fn recruiting(&self) -> bool {
        !self.in_eval_phase() && (self.0 & 0b010 != 0)
    }

    /// The sender's color, when it is on the wire: during evaluation, or
    /// while the sender is recruiting. `None` otherwise — and the protocol
    /// provably never reads it in those states.
    pub fn color(&self) -> Option<Color> {
        let y = self.0 & 0b001;
        if self.in_eval_phase() || self.recruiting() {
            Some(Color::from_bit(y))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::state::AgentState;

    fn msg(in_eval: bool, active: bool, color: Color, recruiting: bool) -> Message {
        Message {
            in_eval_phase: in_eval,
            active,
            color,
            recruiting,
            lineage: 0,
        }
    }

    #[test]
    fn wire_fits_in_three_bits() {
        for in_eval in [false, true] {
            for active in [false, true] {
                for color in [Color::Zero, Color::One] {
                    for recruiting in [false, true] {
                        let w = msg(in_eval, active, color, recruiting).to_wire();
                        assert!(w.bits() < 8, "wire overflowed 3 bits: {:?}", w);
                    }
                }
            }
        }
    }

    #[test]
    fn eval_messages_carry_active_and_color() {
        for active in [false, true] {
            for color in [Color::Zero, Color::One] {
                let w = msg(true, active, color, false).to_wire();
                assert!(w.in_eval_phase());
                assert_eq!(w.active(), active);
                assert_eq!(w.color(), Some(color));
            }
        }
    }

    #[test]
    fn recruiting_messages_carry_color_and_imply_active() {
        for color in [Color::Zero, Color::One] {
            let w = msg(false, true, color, true).to_wire();
            assert!(!w.in_eval_phase());
            assert!(w.recruiting());
            assert!(w.active());
            assert_eq!(w.color(), Some(color));
        }
    }

    #[test]
    fn idle_messages_carry_active_only() {
        for active in [false, true] {
            let w = msg(false, active, Color::One, false).to_wire();
            assert!(!w.in_eval_phase());
            assert!(!w.recruiting());
            assert_eq!(w.active(), active);
            assert_eq!(w.color(), None, "color must not leak outside eval/recruit");
        }
    }

    #[test]
    fn compose_reads_state() {
        let p = Params::for_target(1024).unwrap();
        let s = AgentState::leader(&p, Color::One, 9);
        let m = Message::compose(&s, false);
        assert!(m.active && m.recruiting && !m.in_eval_phase);
        assert_eq!(m.color, Color::One);
        assert_eq!(m.lineage, 9);
    }

    #[test]
    fn all_eight_wire_values_decode_without_panicking() {
        for bits in 0..8u8 {
            let w = Wire(bits);
            let _ = w.in_eval_phase();
            let _ = w.active();
            let _ = w.recruiting();
            let _ = w.color();
        }
    }

    #[test]
    fn decoding_is_consistent_for_honest_states() {
        // For every state an honest agent can be in, encode->decode preserves
        // exactly the fields the receiver is entitled to read.
        let honest = [
            msg(false, false, Color::Zero, false), // inactive idle
            msg(false, true, Color::Zero, false),  // active idle
            msg(false, true, Color::One, true),    // recruiting
            msg(false, true, Color::Zero, true),   // recruiting
            msg(true, false, Color::Zero, false),  // eval, inactive
            msg(true, true, Color::One, false),    // eval, active
            msg(true, true, Color::Zero, false),   // eval, active
        ];
        for m in honest {
            let w = m.to_wire();
            assert_eq!(w.in_eval_phase(), m.in_eval_phase);
            assert_eq!(w.active(), m.active);
            if m.in_eval_phase || m.recruiting {
                assert_eq!(w.color(), Some(m.color));
            }
            if !m.in_eval_phase {
                assert_eq!(w.recruiting(), m.recruiting);
            }
        }
    }
}
