//! Protocol parameters derived from the population target `N`.
//!
//! The paper fixes (§3): epochs of `T = ½·log N · T_inner` rounds with
//! `T_inner = ω(log N)` (presented as `log² N`), leader probability
//! `1/(8√N)` and split probability `1 − 16/√N`. Both probabilities are
//! realized by [`toss_biased_coin`](crate::coin::toss_biased_coin) with
//! integral exponents, which requires `log₂ N` to be even (so `√N` is a
//! power of two) and `log₂ N ≥ 10` (so the split exponent is positive).

use std::error::Error;
use std::fmt;

/// Errors from parameter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamsError {
    /// `N` must be a power of four (`log₂ N` even) so `√N` is a power of two.
    NotPowerOfFour(u64),
    /// `N` must be at least `2^10` so the split bias exponent is positive.
    TooSmall(u64),
    /// `T_inner` must be at least 2 rounds.
    SubphaseTooShort(u32),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::NotPowerOfFour(n) => {
                write!(f, "target population {n} is not a power of four")
            }
            ParamsError::TooSmall(n) => {
                write!(
                    f,
                    "target population {n} is below the minimum 1024 (log N must be at least 10)"
                )
            }
            ParamsError::SubphaseTooShort(t) => {
                write!(
                    f,
                    "subphase length {t} is too short; T_inner must be at least 2"
                )
            }
        }
    }
}

impl Error for ParamsError {}

/// All derived constants of one protocol instantiation.
///
/// Construct with [`Params::for_target`] (paper defaults) or
/// [`Params::builder`] (overrides for ablation experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params {
    target: u64,
    log2_n: u32,
    subphases: u32,
    t_inner: u32,
    /// `⌈2⁶⁴ / t_inner⌉` (wrapping): Lemire's divisibility magic, so the
    /// per-agent subphase-boundary test in the protocol hot loop is a
    /// multiply instead of a division. Derived from `t_inner` in `build`.
    t_inner_magic: u64,
    leader_bias_exp: u32,
    split_bias_exp: u32,
}

impl Params {
    /// Paper-default parameters for target `n` (must be `4^k`, `k ≥ 5`).
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] if `n` is not a power of four or is below
    /// `1024`.
    ///
    /// ```
    /// let p = popstab_core::params::Params::for_target(4096)?;
    /// assert_eq!(p.epoch_len(), 6 * 144); // ½·12 subphases × log²N rounds
    /// assert_eq!(p.sqrt_n(), 64);
    /// # Ok::<(), popstab_core::params::ParamsError>(())
    /// ```
    pub fn for_target(n: u64) -> Result<Params, ParamsError> {
        Params::builder(n).build()
    }

    /// Starts a builder for target `n`, allowing overrides of `T_inner` and
    /// the coin biases (used by the ablation experiments).
    pub fn builder(n: u64) -> ParamsBuilder {
        ParamsBuilder {
            target: n,
            t_inner: None,
            leader_bias_exp: None,
            split_bias_exp: None,
        }
    }

    /// The population target `N`.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// `log₂ N`.
    pub fn log2_n(&self) -> u32 {
        self.log2_n
    }

    /// `√N` (exact: `log₂ N` is even).
    pub fn sqrt_n(&self) -> u64 {
        1 << (self.log2_n / 2)
    }

    /// Number of recruitment subphases, `½·log₂ N`.
    pub fn subphases(&self) -> u32 {
        self.subphases
    }

    /// Rounds per subphase, `T_inner` (default `log₂² N`).
    pub fn t_inner(&self) -> u32 {
        self.t_inner
    }

    /// Epoch length `T = subphases × T_inner`. Round 0 is leader selection,
    /// rounds `1 … T−2` are recruitment, round `T−1` is evaluation (the first
    /// and last subphases are one round shorter, per the paper).
    pub fn epoch_len(&self) -> u32 {
        self.subphases * self.t_inner
    }

    /// Exponent `a` with `Pr[leader] = 2^-a`; default `a = 3 + ½ log N`
    /// giving `1/(8√N)`.
    pub fn leader_bias_exp(&self) -> u32 {
        self.leader_bias_exp
    }

    /// Exponent `b` with `Pr[no split] = 2^-b`; default `b = ½ log N − 4`
    /// giving split probability `1 − 16/√N`.
    pub fn split_bias_exp(&self) -> u32 {
        self.split_bias_exp
    }

    /// Probability that an agent becomes a leader in round 0.
    pub fn leader_probability(&self) -> f64 {
        0.5f64.powi(self.leader_bias_exp as i32)
    }

    /// Probability that a matched same-color pair member splits.
    pub fn split_probability(&self) -> f64 {
        1.0 - 0.5f64.powi(self.split_bias_exp as i32)
    }

    /// The round index of the evaluation phase, `T − 1`.
    pub fn eval_round(&self) -> u32 {
        self.epoch_len() - 1
    }

    /// Whether `round` is the last round of a subphase (`≡ −1 mod T_inner`),
    /// after which active agents arm `recruiting` again.
    pub fn is_subphase_boundary(&self, round: u32) -> bool {
        // `n % d == 0  ⇔  n·⌈2⁶⁴/d⌉ (mod 2⁶⁴) < ⌈2⁶⁴/d⌉` (Lemire); one
        // multiply instead of a division in the protocol's per-agent loop.
        u64::from(round + 1).wrapping_mul(self.t_inner_magic) < self.t_inner_magic
    }

    /// The subphase (1-based) containing recruitment round `round`,
    /// `⌈(round+1)/T_inner⌉` as in Algorithm 5.
    pub fn subphase_of_round(&self, round: u32) -> u32 {
        (round + 1).div_ceil(self.t_inner)
    }

    /// `to_recruit` value assigned to an agent recruited in `round`:
    /// `½ log N − ⌈(round+1)/T_inner⌉`.
    pub fn to_recruit_at(&self, round: u32) -> u32 {
        self.subphases.saturating_sub(self.subphase_of_round(round))
    }

    /// The paper's adversary tolerance `K = N^{1/4−ε}` for a given `ε`.
    pub fn adversary_tolerance(&self, epsilon: f64) -> usize {
        (self.target as f64).powf(0.25 - epsilon).floor() as usize
    }

    /// Expected cluster size induced by each leader: `2^subphases = √N`.
    pub fn cluster_size(&self) -> u64 {
        1 << self.subphases
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Params(N=2^{}, T={}×{}={}, Pr[leader]=2^-{}, Pr[split]=1-2^-{})",
            self.log2_n,
            self.subphases,
            self.t_inner,
            self.epoch_len(),
            self.leader_bias_exp,
            self.split_bias_exp
        )
    }
}

/// Builder allowing non-default subphase lengths and coin biases.
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    target: u64,
    t_inner: Option<u32>,
    leader_bias_exp: Option<u32>,
    split_bias_exp: Option<u32>,
}

impl ParamsBuilder {
    /// Overrides the subphase length `T_inner` (paper default: `log₂² N`;
    /// any `ω(log N)` value is admissible per the paper's footnote 5).
    pub fn t_inner(mut self, t_inner: u32) -> Self {
        self.t_inner = Some(t_inner);
        self
    }

    /// Overrides the leader-probability exponent (ablations only).
    pub fn leader_bias_exp(mut self, exp: u32) -> Self {
        self.leader_bias_exp = Some(exp);
        self
    }

    /// Overrides the split-probability exponent (ablations only).
    pub fn split_bias_exp(mut self, exp: u32) -> Self {
        self.split_bias_exp = Some(exp);
        self
    }

    /// Validates and builds the parameters.
    ///
    /// # Errors
    ///
    /// See [`ParamsError`].
    pub fn build(self) -> Result<Params, ParamsError> {
        let n = self.target;
        if !n.is_power_of_two() || !n.trailing_zeros().is_multiple_of(2) {
            return Err(ParamsError::NotPowerOfFour(n));
        }
        let log2_n = n.trailing_zeros();
        if log2_n < 10 {
            return Err(ParamsError::TooSmall(n));
        }
        let subphases = log2_n / 2;
        let t_inner = self.t_inner.unwrap_or(log2_n * log2_n);
        if t_inner < 2 {
            return Err(ParamsError::SubphaseTooShort(t_inner));
        }
        Ok(Params {
            target: n,
            log2_n,
            subphases,
            t_inner,
            t_inner_magic: (u64::MAX / u64::from(t_inner)) + 1,
            leader_bias_exp: self.leader_bias_exp.unwrap_or(3 + subphases),
            split_bias_exp: self.split_bias_exp.unwrap_or(subphases - 4),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_for_1024() {
        let p = Params::for_target(1024).unwrap();
        assert_eq!(p.log2_n(), 10);
        assert_eq!(p.sqrt_n(), 32);
        assert_eq!(p.subphases(), 5);
        assert_eq!(p.t_inner(), 100);
        assert_eq!(p.epoch_len(), 500);
        assert_eq!(p.eval_round(), 499);
        assert_eq!(p.leader_bias_exp(), 8); // 1/(8·32) = 1/256 = 2^-8
        assert_eq!(p.split_bias_exp(), 1); // 16/32 = 1/2
        assert_eq!(p.cluster_size(), 32);
    }

    #[test]
    fn paper_defaults_for_65536() {
        let p = Params::for_target(65536).unwrap();
        assert_eq!(p.sqrt_n(), 256);
        assert_eq!(p.subphases(), 8);
        assert_eq!(p.epoch_len(), 8 * 256);
        assert!((p.leader_probability() - 1.0 / 2048.0).abs() < 1e-12);
        assert!((p.split_probability() - (1.0 - 16.0 / 256.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_power_of_four() {
        assert_eq!(
            Params::for_target(2048),
            Err(ParamsError::NotPowerOfFour(2048))
        );
        assert_eq!(
            Params::for_target(1000),
            Err(ParamsError::NotPowerOfFour(1000))
        );
        assert_eq!(Params::for_target(0), Err(ParamsError::NotPowerOfFour(0)));
    }

    #[test]
    fn rejects_too_small() {
        assert_eq!(Params::for_target(256), Err(ParamsError::TooSmall(256)));
        assert_eq!(Params::for_target(64), Err(ParamsError::TooSmall(64)));
    }

    #[test]
    fn builder_overrides() {
        let p = Params::builder(4096).t_inner(24).build().unwrap();
        assert_eq!(p.t_inner(), 24);
        assert_eq!(p.epoch_len(), 6 * 24);
        let p = Params::builder(4096)
            .split_bias_exp(5)
            .leader_bias_exp(7)
            .build()
            .unwrap();
        assert_eq!(p.split_bias_exp(), 5);
        assert_eq!(p.leader_bias_exp(), 7);
    }

    #[test]
    fn builder_rejects_tiny_subphase() {
        assert_eq!(
            Params::builder(4096).t_inner(1).build(),
            Err(ParamsError::SubphaseTooShort(1))
        );
    }

    #[test]
    fn subphase_arithmetic() {
        let p = Params::builder(1024).t_inner(10).build().unwrap();
        // T = 50; subphase boundaries at rounds 9, 19, 29, 39, 49.
        assert!(p.is_subphase_boundary(9));
        assert!(p.is_subphase_boundary(49));
        assert!(!p.is_subphase_boundary(10));
        assert!(!p.is_subphase_boundary(0));
        // Round 1 is in subphase 1; an agent recruited there owes 4 more.
        assert_eq!(p.subphase_of_round(1), 1);
        assert_eq!(p.to_recruit_at(1), 4);
        // Recruited in the final subphase -> owes 0.
        assert_eq!(p.subphase_of_round(48), 5);
        assert_eq!(p.to_recruit_at(48), 0);
    }

    #[test]
    fn to_recruit_is_monotone_nonincreasing_in_round() {
        let p = Params::for_target(1024).unwrap();
        let mut prev = u32::MAX;
        for r in 1..p.epoch_len() - 1 {
            let t = p.to_recruit_at(r);
            assert!(t <= prev);
            prev = t;
        }
        assert_eq!(p.to_recruit_at(p.epoch_len() - 2), 0);
    }

    #[test]
    fn adversary_tolerance_scales() {
        let p = Params::for_target(65536).unwrap();
        assert_eq!(p.adversary_tolerance(0.0), 16); // N^{1/4}
        assert!(p.adversary_tolerance(0.05) < 16);
    }

    #[test]
    fn display_mentions_structure() {
        let p = Params::for_target(1024).unwrap();
        let s = p.to_string();
        assert!(s.contains("N=2^10"));
        assert!(s.contains("500"));
    }

    #[test]
    fn error_display() {
        assert!(ParamsError::NotPowerOfFour(7)
            .to_string()
            .contains("power of four"));
        assert!(ParamsError::TooSmall(4).to_string().contains("minimum"));
        assert!(ParamsError::SubphaseTooShort(1)
            .to_string()
            .contains("at least 2"));
    }
}
