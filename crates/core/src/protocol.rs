//! The main protocol (Algorithms 1–7 of the paper).
//!
//! Each call to [`Protocol::step`] executes one `MainProtocolStep`
//! (Algorithm 1): exchange messages (done by the engine), check round
//! consistency (Algorithm 7), then dispatch on the round number to leader
//! selection (Algorithm 3), recruitment (Algorithm 5) or evaluation
//! (Algorithm 6).
//!
//! ### Fidelity notes
//!
//! * The decision logic consumes only the decoded **three-bit**
//!   [`Wire`](crate::message::Wire) view of the neighbor's message, so the
//!   paper's message-size bound is enforced by construction.
//! * Algorithm 5's subphase-boundary re-arm (`recruiting := 1`) is guarded
//!   with `active = 1`. The paper's pseudocode omits the guard, but without
//!   it an *inactive* agent would advertise `recruiting = 1` and activate
//!   other inactive agents with the default color — contradicting the
//!   surrounding text ("each active agent will attempt to recruit a single
//!   nonactive agent"). See DESIGN.md.
//! * The round counter is normalized modulo `T` at the start of each step.
//!   Honest agents are unaffected (their counter is always in range); the
//!   normalization only pins down behaviour for adversarially inserted
//!   agents with out-of-range counters, matching the paper's description of
//!   `round` as a mod-`T` counter.

use popstab_sim::{Action, Protocol, SimRng};
use rand::Rng;

use crate::coin::toss_biased_coin;
use crate::message::Message;
use crate::params::Params;
use crate::state::{AgentState, Color};

/// The population stability protocol.
///
/// One value of this type drives every agent in a simulation; it owns the
/// [`Params`]. Lineage tags (instrumentation for the cluster-structure
/// experiments) are drawn from the leader's own per-round randomness rather
/// than a shared counter, so tag assignment is independent of the order in
/// which agents step — a requirement of the engine's intra-round parallel
/// paths, whose results must not depend on scheduling.
#[derive(Debug, Clone)]
pub struct PopulationStability {
    params: Params,
}

impl PopulationStability {
    /// Creates the protocol for the given parameters.
    pub fn new(params: Params) -> PopulationStability {
        PopulationStability { params }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Algorithm 3: `DetermineIfLeader`, run in round 0.
    fn determine_if_leader(&self, s: &mut AgentState, rng: &mut SimRng) {
        s.active = toss_biased_coin(self.params.leader_bias_exp(), rng);
        if s.active {
            s.color = if rng.random::<bool>() {
                Color::One
            } else {
                Color::Zero
            };
            s.recruiting = true;
            s.to_recruit = self.params.subphases();
            s.is_leader = true;
            // Random 64-bit tag (forced odd, so never the "no cluster" 0):
            // distinct across the handful of leaders per epoch w.h.p., and
            // deterministic under the agent's keyed stream regardless of
            // step-execution order.
            s.lineage = rng.random::<u64>() | 1;
        }
    }

    /// Algorithm 5: `RecruitmentPhase`, run in rounds `1 … T−2`.
    fn recruitment_phase(&self, s: &mut AgentState, incoming: Option<&Message>) {
        if let Some(msg) = incoming {
            let wire = msg.to_wire();
            if s.recruiting && !wire.active() {
                // We just recruited the neighbor: stand down for this
                // subphase.
                s.recruiting = false;
                s.to_recruit = s.to_recruit.saturating_sub(1);
            } else if !s.active && wire.recruiting() {
                // We are being recruited: adopt the neighbor's color; our
                // depth in the recruitment tree is a function of the round.
                s.active = true;
                s.color = wire.color().expect("recruiting messages carry a color");
                s.recruiting = false;
                s.to_recruit = self.params.to_recruit_at(s.round);
                s.lineage = msg.lineage;
            }
        }
        if self.params.is_subphase_boundary(s.round) && s.active {
            // Re-arm for the next subphase (active agents only; see module
            // docs for why the guard is required).
            s.recruiting = true;
        }
    }

    /// Algorithm 6: `EvaluationPhase`, run in round `T−1`. Returns the
    /// split/die decision and resets the coloring state for the next epoch.
    fn evaluation_phase(
        &self,
        s: &mut AgentState,
        incoming: Option<&Message>,
        rng: &mut SimRng,
    ) -> Action {
        let mut action = Action::Continue;
        if s.active {
            if let Some(msg) = incoming {
                let wire = msg.to_wire();
                if wire.active() {
                    if wire.color() == Some(s.color) {
                        // Same color: split with probability 1 − 16/√N.
                        if !toss_biased_coin(self.params.split_bias_exp(), rng) {
                            action = Action::Split;
                        }
                    } else {
                        // Different colors: self-destruct.
                        action = Action::Die;
                    }
                }
            }
        }
        s.active = false;
        s.color = Color::Zero;
        s.recruiting = false;
        s.to_recruit = 0;
        s.is_leader = false;
        s.lineage = 0;
        action
    }
}

impl Protocol for PopulationStability {
    type State = AgentState;
    type Message = Message;

    fn initial_state(&self, _rng: &mut SimRng) -> AgentState {
        AgentState::fresh(&self.params)
    }

    fn columnar(&self) -> Option<Box<dyn popstab_sim::ColumnarStep<AgentState>>> {
        popstab_sim::columns::columnar_box(self)
    }

    fn message(&self, state: &AgentState) -> Message {
        // Algorithm 2: inEvalPhase := (round == T − 1). Honest counters are
        // already in range; only adversarially inserted ones pay the modulo
        // (a per-agent division would otherwise dominate this hot path).
        let t = self.params.epoch_len();
        let round = if state.round < t {
            state.round
        } else {
            state.round % t
        };
        let in_eval = round == self.params.eval_round();
        Message::compose(state, in_eval)
    }

    fn step(&self, s: &mut AgentState, incoming: Option<&Message>, rng: &mut SimRng) -> Action {
        let t = self.params.epoch_len();
        // Normalize adversarial out-of-range counters (honest ones are
        // always in range — keep the division off the hot path); also pin
        // the instrumentation epoch length so observations stay coherent.
        if s.round >= t {
            s.round %= t;
        }
        s.epoch_len = t;

        let in_eval = s.round == self.params.eval_round();

        // Algorithm 7: CheckRoundConsistency. Uses only the one-bit
        // inEvalPhase flag from the three-bit wire.
        if let Some(msg) = incoming {
            if msg.to_wire().in_eval_phase() != in_eval {
                return Action::Die;
            }
        }

        if s.round == 0 {
            self.determine_if_leader(s, rng);
            s.round = 1;
            Action::Continue
        } else if !in_eval {
            self.recruitment_phase(s, incoming);
            s.round += 1;
            Action::Continue
        } else {
            let action = self.evaluation_phase(s, incoming, rng);
            s.round = 0;
            action
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_sim::rng::rng_from_seed;
    use popstab_sim::{Engine, Observable, SimConfig};

    fn params() -> Params {
        Params::for_target(1024).unwrap()
    }

    fn proto() -> PopulationStability {
        PopulationStability::new(params())
    }

    fn msg_from(p: &PopulationStability, s: &AgentState) -> Message {
        p.message(s)
    }

    #[test]
    fn leader_selection_rate_matches_bias() {
        let p = proto();
        let mut rng = rng_from_seed(1);
        let trials = 200_000;
        let mut leaders = 0;
        for _ in 0..trials {
            let mut s = AgentState::fresh(p.params());
            p.step(&mut s, None, &mut rng);
            assert_eq!(s.round, 1);
            if s.active {
                leaders += 1;
                assert!(s.recruiting && s.is_leader);
                assert_eq!(s.to_recruit, p.params().subphases());
                assert!(s.lineage > 0);
            }
        }
        let expected = trials as f64 / 256.0; // 2^-8 for N=1024
        let sd = expected.sqrt();
        assert!(
            ((leaders as f64) - expected).abs() < 5.0 * sd,
            "leaders={leaders}, expected={expected}"
        );
    }

    #[test]
    fn leader_colors_are_balanced() {
        let p = proto();
        let mut rng = rng_from_seed(2);
        let mut c0 = 0;
        let mut c1 = 0;
        for _ in 0..400_000 {
            let mut s = AgentState::fresh(p.params());
            p.step(&mut s, None, &mut rng);
            if s.active {
                match s.color {
                    Color::Zero => c0 += 1,
                    Color::One => c1 += 1,
                }
            }
        }
        let total = (c0 + c1) as f64;
        let frac = c0 as f64 / total;
        assert!((0.44..0.56).contains(&frac), "c0={c0}, c1={c1}");
    }

    #[test]
    fn recruiter_recruits_inactive_neighbor() {
        let p = proto();
        let mut rng = rng_from_seed(3);
        let mut leader = AgentState::leader(p.params(), Color::One, 7);
        let mut idle = AgentState::fresh(p.params());
        idle.round = 1;

        let to_leader = msg_from(&p, &idle);
        let to_idle = msg_from(&p, &leader);

        assert_eq!(
            p.step(&mut leader, Some(&to_leader), &mut rng),
            Action::Continue
        );
        assert_eq!(
            p.step(&mut idle, Some(&to_idle), &mut rng),
            Action::Continue
        );

        // Leader stood down for this subphase and decremented its quota.
        assert!(!leader.recruiting);
        assert_eq!(leader.to_recruit, p.params().subphases() - 1);
        // Idle agent was activated with the leader's color and lineage.
        assert!(idle.active);
        assert_eq!(idle.color, Color::One);
        assert_eq!(idle.lineage, 7);
        assert!(!idle.recruiting);
        assert_eq!(idle.to_recruit, p.params().to_recruit_at(1));
    }

    #[test]
    fn two_recruiters_do_not_interact() {
        let p = proto();
        let mut rng = rng_from_seed(4);
        let mut a = AgentState::leader(p.params(), Color::Zero, 1);
        let mut b = AgentState::leader(p.params(), Color::One, 2);
        let ma = msg_from(&p, &a);
        let mb = msg_from(&p, &b);
        p.step(&mut a, Some(&mb), &mut rng);
        p.step(&mut b, Some(&ma), &mut rng);
        assert!(
            a.recruiting && b.recruiting,
            "recruiters must not consume each other"
        );
        assert_eq!(a.to_recruit, p.params().subphases());
        assert_eq!(a.color, Color::Zero);
        assert_eq!(b.color, Color::One);
    }

    #[test]
    fn recruiter_ignores_active_nonrecruiting_neighbor() {
        let p = proto();
        let mut rng = rng_from_seed(5);
        let mut recruiter = AgentState::leader(p.params(), Color::Zero, 1);
        let mut colored = AgentState::active_at(p.params(), 1, Color::One);
        let to_recruiter = msg_from(&p, &colored);
        let to_colored = msg_from(&p, &recruiter);
        p.step(&mut recruiter, Some(&to_recruiter), &mut rng);
        p.step(&mut colored, Some(&to_colored), &mut rng);
        assert!(recruiter.recruiting, "active neighbor is not a recruit");
        assert_eq!(
            colored.color,
            Color::One,
            "already-active agent keeps its color"
        );
    }

    #[test]
    fn inactive_agents_never_recruit() {
        // Regression for the Algorithm 5 guard: at a subphase boundary an
        // inactive agent must NOT re-arm recruiting.
        let p = proto();
        let mut rng = rng_from_seed(6);
        let boundary = p.params().t_inner() - 1; // round ≡ −1 (mod T_inner)
        let mut idle = AgentState::fresh(p.params());
        idle.round = boundary;
        p.step(&mut idle, None, &mut rng);
        assert!(!idle.recruiting, "inactive agent re-armed recruiting");

        let mut active = AgentState::active_at(p.params(), boundary, Color::One);
        p.step(&mut active, None, &mut rng);
        assert!(
            active.recruiting,
            "active agent failed to re-arm at boundary"
        );
    }

    #[test]
    fn eval_same_color_splits_or_continues() {
        let p = proto();
        let mut rng = rng_from_seed(7);
        let eval = p.params().eval_round();
        let mut splits = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let mut a = AgentState::active_at(p.params(), eval, Color::One);
            let b = AgentState::active_at(p.params(), eval, Color::One);
            let m = msg_from(&p, &b);
            match p.step(&mut a, Some(&m), &mut rng) {
                Action::Split => splits += 1,
                Action::Continue => {}
                other => panic!("same color must never produce {other:?}"),
            }
            // State was reset for the next epoch regardless.
            assert!(!a.active && a.round == 0);
        }
        // split probability = 1 − 2^-1 = 1/2 for N=1024.
        let frac = splits as f64 / trials as f64;
        assert!((0.47..0.53).contains(&frac), "split fraction {frac}");
    }

    #[test]
    fn eval_different_color_always_dies() {
        let p = proto();
        let mut rng = rng_from_seed(8);
        let eval = p.params().eval_round();
        for _ in 0..100 {
            let mut a = AgentState::active_at(p.params(), eval, Color::One);
            let b = AgentState::active_at(p.params(), eval, Color::Zero);
            let m = msg_from(&p, &b);
            assert_eq!(p.step(&mut a, Some(&m), &mut rng), Action::Die);
        }
    }

    #[test]
    fn eval_with_inactive_neighbor_is_a_noop_decision() {
        let p = proto();
        let mut rng = rng_from_seed(9);
        let eval = p.params().eval_round();
        let mut a = AgentState::active_at(p.params(), eval, Color::One);
        let mut b = AgentState::fresh(p.params());
        b.round = eval;
        let m = msg_from(&p, &b);
        assert_eq!(p.step(&mut a, Some(&m), &mut rng), Action::Continue);
        assert!(!a.active && a.round == 0, "state resets after evaluation");
    }

    #[test]
    fn eval_unmatched_agent_just_resets() {
        let p = proto();
        let mut rng = rng_from_seed(10);
        let eval = p.params().eval_round();
        let mut a = AgentState::active_at(p.params(), eval, Color::One);
        assert_eq!(p.step(&mut a, None, &mut rng), Action::Continue);
        assert!(!a.active && a.round == 0);
    }

    #[test]
    fn round_consistency_kills_desynced_pairs() {
        let p = proto();
        let mut rng = rng_from_seed(11);
        let eval = p.params().eval_round();
        // a is entering evaluation; b thinks it is mid-recruitment.
        let mut a = AgentState::active_at(p.params(), eval, Color::One);
        let mut b = AgentState::desynced(p.params(), 5);
        let to_a = msg_from(&p, &b);
        let to_b = msg_from(&p, &a);
        assert_eq!(p.step(&mut a, Some(&to_a), &mut rng), Action::Die);
        assert_eq!(p.step(&mut b, Some(&to_b), &mut rng), Action::Die);
    }

    #[test]
    fn matching_desync_agents_survive_each_other() {
        // Two agents that are both NOT in eval pass the consistency check
        // even if their absolute rounds differ: the check is the one-bit
        // inEvalPhase comparison, exactly as in the paper.
        let p = proto();
        let mut rng = rng_from_seed(12);
        let mut a = AgentState::desynced(p.params(), 5);
        let mut b = AgentState::desynced(p.params(), 9);
        let to_a = msg_from(&p, &b);
        let to_b = msg_from(&p, &a);
        assert_eq!(p.step(&mut a, Some(&to_a), &mut rng), Action::Continue);
        assert_eq!(p.step(&mut b, Some(&to_b), &mut rng), Action::Continue);
    }

    #[test]
    fn out_of_range_round_is_normalized() {
        let p = proto();
        let mut rng = rng_from_seed(13);
        let t = p.params().epoch_len();
        let mut s = AgentState::desynced(p.params(), t + 5);
        p.step(&mut s, None, &mut rng);
        assert_eq!(s.round, 6, "round should normalize mod T then advance");
    }

    #[test]
    fn observation_reports_eval_flag() {
        let p = proto();
        let mut s = AgentState::active_at(p.params(), p.params().eval_round(), Color::One);
        assert!(s.observe().in_eval_phase);
        s.round = 3;
        assert!(!s.observe().in_eval_phase);
    }

    #[test]
    fn full_epoch_without_adversary_builds_sqrt_n_clusters() {
        let params = Params::for_target(1024).unwrap();
        let sqrt_n = params.cluster_size();
        let epoch = u64::from(params.epoch_len());
        let cfg = SimConfig::builder().seed(99).target(1024).build().unwrap();
        let mut engine = Engine::with_population(PopulationStability::new(params), cfg, 1024);
        // Run up to (but not including) the evaluation round.
        engine.run(popstab_sim::RunSpec::rounds(epoch - 1), &mut ());
        // Group active agents by lineage: every complete cluster has √N members.
        use std::collections::BTreeMap;
        let mut clusters: BTreeMap<u64, u64> = BTreeMap::new();
        for agent in engine.agents() {
            if agent.active {
                *clusters.entry(agent.lineage).or_insert(0) += 1;
            }
        }
        assert!(!clusters.is_empty(), "no clusters formed");
        for (lineage, size) in &clusters {
            assert_eq!(
                *size, sqrt_n,
                "cluster {lineage} has size {size}, want {sqrt_n}"
            );
        }
        // Leaders should also all have finished their quota (Lemma 5).
        for agent in engine.agents() {
            if agent.active {
                assert_eq!(agent.to_recruit, 0, "agent still owes recruits at eval");
            }
        }
    }

    #[test]
    fn population_stays_in_band_for_a_few_epochs() {
        let params = Params::for_target(1024).unwrap();
        let epoch = u64::from(params.epoch_len());
        let cfg = SimConfig::builder().seed(5).target(1024).build().unwrap();
        let mut engine = Engine::with_population(PopulationStability::new(params), cfg, 1024);
        let outcome = engine.run(popstab_sim::RunSpec::rounds(5 * epoch), &mut ());
        assert_eq!(engine.halted(), None);
        let (lo, hi) = outcome.population_range();
        // Equilibrium for N=1024 is m* = N − 8√N = 768; allow a wide band.
        assert!(lo > 512, "population fell to {lo}");
        assert!(hi < 1536, "population rose to {hi}");
    }
}
