//! Per-agent state (§3 of the paper).
//!
//! The protocol-relevant memory of an agent is: the epoch round counter
//! `round ∈ [0, T)` plus the boolean flags `active`, `color`, `recruiting`.
//! Everything else in [`AgentState`] is **instrumentation** — fields the
//! simulator keeps so that experiments can check the paper's invariants
//! (cluster sizes, recruitment trees, leader counts). Instrumentation is
//! never read by the protocol's decision logic and is excluded from the
//! memory accounting in [`crate::accounting`].

use std::fmt;

use popstab_sim::snapshot::{self, SnapshotError, SnapshotReader, SnapshotState};
use popstab_sim::{Observable, Observation};

use crate::params::Params;

/// An agent's color: the value its cluster's leader drew in round 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Color {
    /// Color 0.
    #[default]
    Zero,
    /// Color 1.
    One,
}

impl Color {
    /// The opposite color.
    pub fn flipped(self) -> Color {
        match self {
            Color::Zero => Color::One,
            Color::One => Color::Zero,
        }
    }

    /// Encodes as one bit.
    pub fn as_bit(self) -> u8 {
        match self {
            Color::Zero => 0,
            Color::One => 1,
        }
    }

    /// Decodes from the low bit.
    pub fn from_bit(bit: u8) -> Color {
        if bit & 1 == 0 {
            Color::Zero
        } else {
            Color::One
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Color::Zero => "0",
            Color::One => "1",
        })
    }
}

/// The full simulated state of one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentState {
    /// Round counter within the epoch, in `[0, T)`. *Protocol memory.*
    pub round: u32,
    /// Whether the agent has been activated (is a leader or was recruited)
    /// this epoch. *Protocol memory.*
    pub active: bool,
    /// The agent's color; only meaningful while `active`. *Protocol memory.*
    pub color: Color,
    /// Whether the agent is still looking for a recruit in the current
    /// subphase. *Protocol memory.*
    pub recruiting: bool,
    /// Number of further recruitment subphases this agent owes. The paper
    /// notes this variable is needed only for the analysis; the protocol's
    /// behaviour is fully determined by the round number. *Instrumentation.*
    pub to_recruit: u32,
    /// Whether the agent became a leader in round 0 of the current epoch.
    /// *Instrumentation.*
    pub is_leader: bool,
    /// Cluster tag: the lineage id of the leader whose recruitment tree this
    /// agent joined (0 = none). *Instrumentation.*
    pub lineage: u64,
    /// The epoch length `T` this agent was configured with; kept in the
    /// state only so [`Observable`] can compute phase flags without access
    /// to the protocol. The protocol always uses its own `Params`, so an
    /// adversary forging this field gains nothing. *Instrumentation.*
    pub epoch_len: u32,
}

impl AgentState {
    /// The all-zeros onset state ("initially ... all variables are set to
    /// zero").
    pub fn fresh(params: &Params) -> AgentState {
        AgentState {
            round: 0,
            active: false,
            color: Color::Zero,
            recruiting: false,
            to_recruit: 0,
            is_leader: false,
            lineage: 0,
            epoch_len: params.epoch_len(),
        }
    }

    /// A freshly-selected leader with the given color and lineage tag, as
    /// produced by `DetermineIfLeader` (Algorithm 3). `round` is 1 because
    /// leader selection happens in round 0 and the counter has advanced.
    pub fn leader(params: &Params, color: Color, lineage: u64) -> AgentState {
        AgentState {
            round: 1,
            active: true,
            color,
            recruiting: true,
            to_recruit: params.subphases(),
            is_leader: true,
            lineage,
            epoch_len: params.epoch_len(),
        }
    }

    /// An active (recruited) non-leader agent at the given round, as an
    /// adversary might insert.
    pub fn active_at(params: &Params, round: u32, color: Color) -> AgentState {
        AgentState {
            round,
            active: true,
            color,
            recruiting: false,
            to_recruit: params.to_recruit_at(round.max(1)),
            is_leader: false,
            lineage: 0,
            epoch_len: params.epoch_len(),
        }
    }

    /// An inactive agent whose clock reads `round` (adversarial desync
    /// insertion).
    pub fn desynced(params: &Params, round: u32) -> AgentState {
        AgentState {
            round,
            ..AgentState::fresh(params)
        }
    }

    /// Whether the agent believes it is in the evaluation round.
    pub fn in_eval_phase(&self) -> bool {
        self.epoch_len > 0 && self.round == self.epoch_len - 1
    }
}

impl Observable for AgentState {
    fn observe(&self) -> Observation {
        Observation {
            round_in_epoch: Some(self.round),
            active: self.active,
            color: if self.active {
                Some(self.color == Color::One)
            } else {
                None
            },
            recruiting: self.recruiting,
            in_eval_phase: self.in_eval_phase(),
            is_leader: self.is_leader,
            lineage: if self.active {
                Some(self.lineage)
            } else {
                None
            },
        }
    }
}

impl SnapshotState for AgentState {
    fn state_tag() -> String {
        "population-stability".to_string()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        snapshot::write_u32(out, self.round);
        snapshot::write_bool(out, self.active);
        snapshot::write_u8(out, self.color.as_bit());
        snapshot::write_bool(out, self.recruiting);
        snapshot::write_u32(out, self.to_recruit);
        snapshot::write_bool(out, self.is_leader);
        snapshot::write_u64(out, self.lineage);
        snapshot::write_u32(out, self.epoch_len);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AgentState {
            round: r.u32()?,
            active: r.bool()?,
            color: Color::from_bit(r.u8()?),
            recruiting: r.bool()?,
            to_recruit: r.u32()?,
            is_leader: r.bool()?,
            lineage: r.u64()?,
            epoch_len: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::for_target(1024).unwrap()
    }

    #[test]
    fn snapshot_encoding_roundtrips_exactly() {
        let p = params();
        for state in [
            AgentState::fresh(&p),
            AgentState::leader(&p, Color::One, 42),
            AgentState::active_at(&p, 3, Color::Zero),
            AgentState::desynced(&p, 77),
        ] {
            let mut bytes = Vec::new();
            state.encode(&mut bytes);
            let mut r = SnapshotReader::new(&bytes);
            assert_eq!(AgentState::decode(&mut r).unwrap(), state);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn fresh_state_is_all_zeros() {
        let s = AgentState::fresh(&params());
        assert_eq!(s.round, 0);
        assert!(!s.active);
        assert_eq!(s.color, Color::Zero);
        assert!(!s.recruiting);
        assert_eq!(s.to_recruit, 0);
        assert!(!s.is_leader);
        assert_eq!(s.lineage, 0);
    }

    #[test]
    fn leader_state_matches_algorithm_3() {
        let p = params();
        let s = AgentState::leader(&p, Color::One, 42);
        assert!(s.active && s.recruiting && s.is_leader);
        assert_eq!(s.color, Color::One);
        assert_eq!(s.to_recruit, p.subphases());
        assert_eq!(s.lineage, 42);
    }

    #[test]
    fn eval_phase_flag() {
        let p = params();
        let mut s = AgentState::fresh(&p);
        assert!(!s.in_eval_phase());
        s.round = p.eval_round();
        assert!(s.in_eval_phase());
    }

    #[test]
    fn color_flip_and_bits() {
        assert_eq!(Color::Zero.flipped(), Color::One);
        assert_eq!(Color::One.flipped(), Color::Zero);
        assert_eq!(Color::Zero.as_bit(), 0);
        assert_eq!(Color::One.as_bit(), 1);
        assert_eq!(Color::from_bit(0), Color::Zero);
        assert_eq!(Color::from_bit(1), Color::One);
        assert_eq!(Color::from_bit(3), Color::One);
        assert_eq!(Color::from_bit(2), Color::Zero);
    }

    #[test]
    fn observation_hides_color_of_inactive_agents() {
        let p = params();
        let mut s = AgentState::fresh(&p);
        s.color = Color::One;
        let obs = s.observe();
        assert_eq!(obs.color, None);
        assert_eq!(obs.lineage, None);
        s.active = true;
        let obs = s.observe();
        assert_eq!(obs.color, Some(true));
        assert_eq!(obs.lineage, Some(0));
    }

    #[test]
    fn desynced_state_only_differs_in_round() {
        let p = params();
        let s = AgentState::desynced(&p, 77);
        assert_eq!(s.round, 77);
        assert!(!s.active);
    }

    #[test]
    fn active_at_uses_round_schedule() {
        let p = params();
        let s = AgentState::active_at(&p, 1, Color::Zero);
        assert_eq!(s.to_recruit, p.subphases() - 1);
        assert!(s.active && !s.recruiting);
    }
}
