//! Property-based tests for the protocol crate: the three-bit wire codec,
//! parameter arithmetic and state-machine invariants.

use proptest::prelude::*;

use popstab_core::message::Message;
use popstab_core::params::Params;
use popstab_core::protocol::PopulationStability;
use popstab_core::state::{AgentState, Color};
use popstab_sim::rng::rng_from_seed;
use popstab_sim::{Action, Protocol};

fn arb_color() -> impl Strategy<Value = Color> {
    prop_oneof![Just(Color::Zero), Just(Color::One)]
}

fn arb_params() -> impl Strategy<Value = Params> {
    // log2 N even, in [10, 20]; T_inner in a plausible range.
    (5u32..=10, 8u32..=200).prop_map(|(half_log, t_inner)| {
        Params::builder(1u64 << (2 * half_log))
            .t_inner(t_inner)
            .build()
            .unwrap()
    })
}

/// Arbitrary (possibly adversarial) agent state for given params.
fn arb_state(params: Params) -> impl Strategy<Value = AgentState> {
    let t = params.epoch_len();
    (
        0u32..3 * t,
        any::<bool>(),
        arb_color(),
        any::<bool>(),
        0u32..=params.subphases(),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            move |(round, active, color, recruiting, to_recruit, is_leader, lineage)| AgentState {
                round,
                active,
                color,
                recruiting,
                to_recruit,
                is_leader,
                lineage,
                epoch_len: params.epoch_len(),
            },
        )
}

proptest! {
    #[test]
    fn wire_always_fits_three_bits(
        in_eval in any::<bool>(),
        active in any::<bool>(),
        color in arb_color(),
        recruiting in any::<bool>(),
        lineage in any::<u64>(),
    ) {
        let msg = Message { in_eval_phase: in_eval, active, color, recruiting, lineage };
        prop_assert!(msg.to_wire().bits() < 8);
    }

    #[test]
    fn wire_preserves_receiver_visible_fields(
        in_eval in any::<bool>(),
        active in any::<bool>(),
        color in arb_color(),
        recruiting in any::<bool>(),
    ) {
        // For honest states (recruiting ⇒ active), the decode must agree on
        // every field the receiver is entitled to read.
        let active = active || recruiting;
        let msg = Message { in_eval_phase: in_eval, active, color, recruiting, lineage: 0 };
        let w = msg.to_wire();
        prop_assert_eq!(w.in_eval_phase(), in_eval);
        prop_assert_eq!(w.active(), active);
        if in_eval || recruiting {
            prop_assert_eq!(w.color(), Some(color));
        }
        if !in_eval {
            prop_assert_eq!(w.recruiting(), recruiting);
        }
    }

    #[test]
    fn params_arithmetic_is_consistent(params in arb_params()) {
        prop_assert_eq!(params.epoch_len(), params.subphases() * params.t_inner());
        prop_assert_eq!(params.eval_round(), params.epoch_len() - 1);
        prop_assert_eq!(params.cluster_size(), params.sqrt_n());
        prop_assert_eq!(u128::from(params.sqrt_n()) * u128::from(params.sqrt_n()), u128::from(params.target()));
        // Boundaries occur exactly once every t_inner rounds.
        let boundaries = (0..params.epoch_len()).filter(|&r| params.is_subphase_boundary(r)).count();
        prop_assert_eq!(boundaries as u32, params.subphases());
        // to_recruit is 0 by the last recruitment round.
        prop_assert_eq!(params.to_recruit_at(params.epoch_len() - 2), 0);
    }

    #[test]
    fn subphase_of_round_is_monotone_and_in_range(params in arb_params(), frac in 0.0f64..1.0) {
        let r = 1 + (frac * f64::from(params.epoch_len() - 3)) as u32;
        let s = params.subphase_of_round(r);
        prop_assert!(s >= 1 && s <= params.subphases());
        if r + 1 < params.epoch_len() - 1 {
            prop_assert!(params.subphase_of_round(r + 1) >= s);
        }
    }

    #[test]
    fn step_normalizes_any_round_value(
        seed in 0u64..1000,
        state in arb_state(Params::for_target(1024).unwrap()),
    ) {
        // Whatever garbage the adversary writes into `round`, after one
        // step the counter is a valid epoch position.
        let params = Params::for_target(1024).unwrap();
        let protocol = PopulationStability::new(params.clone());
        let mut rng = rng_from_seed(seed);
        let mut s = state;
        let _ = protocol.step(&mut s, None, &mut rng);
        prop_assert!(s.round < params.epoch_len());
    }

    #[test]
    fn unmatched_agents_never_die_or_split_outside_eval(
        seed in 0u64..1000,
        round in 0u32..499,
    ) {
        // An unmatched agent in a non-evaluation round always continues.
        let params = Params::for_target(1024).unwrap();
        prop_assume!(round != params.eval_round());
        let protocol = PopulationStability::new(params.clone());
        let mut rng = rng_from_seed(seed);
        let mut s = AgentState::desynced(&params, round);
        prop_assert_eq!(protocol.step(&mut s, None, &mut rng), Action::Continue);
    }

    #[test]
    fn round_consistency_is_symmetric(
        seed in 0u64..1000,
        ra in 0u32..500,
        rb in 0u32..500,
    ) {
        // If a dies on meeting b, then b dies on meeting a (Algorithm 7 is
        // a symmetric predicate on the one-bit eval flags).
        let params = Params::for_target(1024).unwrap();
        let protocol = PopulationStability::new(params.clone());
        let mut rng = rng_from_seed(seed);
        let a = AgentState::desynced(&params, ra);
        let b = AgentState::desynced(&params, rb);
        let msg_a = protocol.message(&a);
        let msg_b = protocol.message(&b);
        let mut a2 = a;
        let mut b2 = b;
        let act_a = protocol.step(&mut a2, Some(&msg_b), &mut rng);
        let act_b = protocol.step(&mut b2, Some(&msg_a), &mut rng);
        prop_assert_eq!(act_a == Action::Die, act_b == Action::Die);
        // And they die iff exactly one of them is at the eval round.
        let eval = params.eval_round();
        prop_assert_eq!(act_a == Action::Die, (ra == eval) != (rb == eval));
    }

    #[test]
    fn recruitment_conserves_colors(
        seed in 0u64..1000,
        color in arb_color(),
        round in 1u32..498,
    ) {
        // A recruited agent adopts exactly the recruiter's color.
        let params = Params::for_target(1024).unwrap();
        prop_assume!(round != params.eval_round());
        let protocol = PopulationStability::new(params.clone());
        let mut rng = rng_from_seed(seed);
        let mut recruiter = AgentState::leader(&params, color, 9);
        recruiter.round = round;
        let msg = protocol.message(&recruiter);
        let mut idle = AgentState::desynced(&params, round);
        let _ = protocol.step(&mut idle, Some(&msg), &mut rng);
        prop_assert!(idle.active);
        prop_assert_eq!(idle.color, color);
        prop_assert_eq!(idle.lineage, 9);
    }

    #[test]
    fn evaluation_always_resets_state(
        seed in 0u64..1000,
        active in any::<bool>(),
        color in arb_color(),
        partner_active in any::<bool>(),
        partner_color in arb_color(),
    ) {
        let params = Params::for_target(1024).unwrap();
        let protocol = PopulationStability::new(params.clone());
        let mut rng = rng_from_seed(seed);
        let eval = params.eval_round();
        let mut s = if active {
            AgentState::active_at(&params, eval, color)
        } else {
            AgentState::desynced(&params, eval)
        };
        let partner = if partner_active {
            AgentState::active_at(&params, eval, partner_color)
        } else {
            AgentState::desynced(&params, eval)
        };
        let msg = protocol.message(&partner);
        let action = protocol.step(&mut s, Some(&msg), &mut rng);
        // Whatever the decision, the surviving state is reset.
        prop_assert!(!s.active && !s.recruiting && !s.is_leader);
        prop_assert_eq!(s.round, 0);
        // Death happens exactly on an active color clash.
        let clash = active && partner_active && color != partner_color;
        prop_assert_eq!(action == Action::Die, clash);
    }
}
