//! Extensions from §1.2 of the paper: **malicious agents**.
//!
//! The base population-stability problem assumes inserted agents *follow
//! the protocol* (only their initial state is adversarial). The paper notes
//! that the problem is impossible against agents running arbitrary
//! malicious programs — "a malicious agent can simply ignore all
//! interactions with other agents and replicate itself at every
//! opportunity" — **unless** the model is strengthened so that
//!
//! 1. agents can remove other agents they encounter
//!    ([`Action::KillPartner`](popstab_sim::Action)),
//! 2. honest agents can detect a partner whose *program* differs from their
//!    own, and
//! 3. malicious replication is rate-limited.
//!
//! [`WithMalice`] wraps any inner protocol in exactly that model: a state
//! is either an honest inner state or a malicious automaton that ignores
//! the protocol and splits every `replicate_period` rounds. Honest agents
//! that meet a malicious partner kill it (detection is modeled by the
//! message tag — "program differs" is observable, memory contents are not
//! trusted). The stability condition is a race:
//!
//! * each malicious agent doubles every `ρ = replicate_period` rounds when
//!   unchecked → growth factor `2^{1/ρ}` per round,
//! * each round it is matched with probability `≥ γ` and its partner is
//!   honest with probability `≈ h` (the honest fraction), in which case it
//!   dies → survival factor `(1 − γ·h)` per round.
//!
//! The malicious cohort is driven extinct iff `(1 + 1/ρ)·(1 − γ·h) < 1`,
//! i.e. roughly `ρ > 1/(γ·h)` — with full matching and a small cohort,
//! any `ρ ≥ 2` dies out, while `ρ = 1` (split every round) is the paper's
//! impossibility argument and indeed overwhelms the defense only when
//! honest contact is rare. The experiment `malice` (F8) sweeps `ρ`.

use std::fmt;

use popstab_sim::snapshot::{self, SnapshotError, SnapshotReader, SnapshotState};
use popstab_sim::{
    Action, Adversary, Alteration, Observable, Observation, Protocol, RoundContext, SimRng,
};

/// State of an agent in the extended model: honest or malicious.
#[derive(Debug, Clone, PartialEq)]
pub enum MaliceState<S> {
    /// An honest agent running the inner protocol.
    Honest(S),
    /// A malicious automaton: ignores the protocol, replicates on a timer.
    Malicious {
        /// Splits whenever `age % replicate_period == replicate_period − 1`.
        replicate_period: u32,
        /// Rounds lived so far.
        age: u32,
    },
}

impl<S: Observable> Observable for MaliceState<S> {
    fn observe(&self) -> Observation {
        match self {
            MaliceState::Honest(s) => s.observe(),
            // Malicious agents report nothing; experiments count them by
            // inspecting states directly.
            MaliceState::Malicious { .. } => Observation::default(),
        }
    }
}

impl<S: SnapshotState> SnapshotState for MaliceState<S> {
    fn state_tag() -> String {
        format!("malice<{}>", S::state_tag())
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MaliceState::Honest(s) => {
                snapshot::write_u8(out, 0);
                s.encode(out);
            }
            MaliceState::Malicious {
                replicate_period,
                age,
            } => {
                snapshot::write_u8(out, 1);
                snapshot::write_u32(out, *replicate_period);
                snapshot::write_u32(out, *age);
            }
        }
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(MaliceState::Honest(S::decode(r)?)),
            1 => Ok(MaliceState::Malicious {
                replicate_period: r.u32()?,
                age: r.u32()?,
            }),
            _ => Err(r.malformed("unknown malice state tag")),
        }
    }
}

/// Message in the extended model. The enum tag is the "program fingerprint":
/// the paper's detection assumption is that an agent recognizes a partner
/// whose program differs from its own.
#[derive(Debug, Clone, PartialEq)]
pub enum MaliceMessage<M> {
    /// Sent by honest agents: the inner protocol message.
    Honest(M),
    /// Sent by malicious agents (they cannot forge the honest program
    /// fingerprint — that is precisely the detection assumption).
    Malicious,
}

/// The extended protocol: the inner protocol plus the kill-on-detect rule.
#[derive(Debug)]
pub struct WithMalice<P> {
    inner: P,
}

impl<P> WithMalice<P> {
    /// Wraps an inner protocol.
    pub fn new(inner: P) -> Self {
        WithMalice { inner }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Protocol> Protocol for WithMalice<P> {
    type State = MaliceState<P::State>;
    type Message = MaliceMessage<P::Message>;

    fn initial_state(&self, rng: &mut SimRng) -> Self::State {
        MaliceState::Honest(self.inner.initial_state(rng))
    }

    fn message(&self, state: &Self::State) -> Self::Message {
        match state {
            MaliceState::Honest(s) => MaliceMessage::Honest(self.inner.message(s)),
            MaliceState::Malicious { .. } => MaliceMessage::Malicious,
        }
    }

    fn step(
        &self,
        state: &mut Self::State,
        incoming: Option<&Self::Message>,
        rng: &mut SimRng,
    ) -> Action {
        match state {
            MaliceState::Honest(s) => match incoming {
                // Detected a foreign program: remove it. The honest agent
                // spends the interaction on the kill; its own protocol sees
                // an unmatched round.
                Some(MaliceMessage::Malicious) => {
                    let _ = self.inner.step(s, None, rng);
                    Action::KillPartner
                }
                Some(MaliceMessage::Honest(m)) => self.inner.step(s, Some(m), rng),
                None => self.inner.step(s, None, rng),
            },
            MaliceState::Malicious {
                replicate_period,
                age,
            } => {
                // Ignores everyone; replicates on its timer.
                let split = *age % *replicate_period == *replicate_period - 1;
                *age = age.wrapping_add(1);
                if split {
                    Action::Split
                } else {
                    Action::Continue
                }
            }
        }
    }
}

/// Inserts `k` malicious agents per round with the given replication
/// period (the "bound on how frequently malicious agents can replicate"
/// the paper requires).
#[derive(Debug, Clone, Copy)]
pub struct MaliciousInserter {
    k: usize,
    replicate_period: u32,
}

impl MaliciousInserter {
    /// Inserts `k` malicious agents per round, each splitting every
    /// `replicate_period` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `replicate_period` is zero.
    pub fn new(k: usize, replicate_period: u32) -> Self {
        assert!(replicate_period > 0, "replicate_period must be positive");
        MaliciousInserter {
            k,
            replicate_period,
        }
    }
}

impl fmt::Display for MaliciousInserter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malicious inserter (k={}, rho={})",
            self.k, self.replicate_period
        )
    }
}

impl<S> Adversary<MaliceState<S>> for MaliciousInserter {
    fn name(&self) -> &'static str {
        "malicious-inserter"
    }

    fn act(
        &mut self,
        _ctx: &RoundContext,
        _agents: &[MaliceState<S>],
        _rng: &mut SimRng,
    ) -> Vec<Alteration<MaliceState<S>>> {
        (0..self.k)
            .map(|_| {
                Alteration::Insert(MaliceState::Malicious {
                    replicate_period: self.replicate_period,
                    age: 0,
                })
            })
            .collect()
    }
}

/// Counts the malicious agents in a population slice.
pub fn malicious_count<S>(agents: &[MaliceState<S>]) -> usize {
    agents
        .iter()
        .filter(|a| matches!(a, MaliceState::Malicious { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use popstab_core::params::Params;
    use popstab_core::protocol::PopulationStability;
    use popstab_sim::rng::rng_from_seed;
    use popstab_sim::{Engine, SimConfig};

    const N: u64 = 1024;

    fn extended() -> WithMalice<PopulationStability> {
        WithMalice::new(PopulationStability::new(Params::for_target(N).unwrap()))
    }

    #[test]
    fn honest_agents_kill_detected_malicious_partners() {
        let proto = extended();
        let mut rng = rng_from_seed(1);
        let mut honest = proto.initial_state(&mut rng);
        let action = proto.step(&mut honest, Some(&MaliceMessage::Malicious), &mut rng);
        assert_eq!(action, Action::KillPartner);
        // The honest agent's own clock still advanced.
        match honest {
            MaliceState::Honest(s) => assert_eq!(s.round, 1),
            other => panic!("honest agent mutated into {other:?}"),
        }
    }

    #[test]
    fn malicious_agents_split_on_their_timer() {
        let proto = extended();
        let mut rng = rng_from_seed(2);
        let mut mal: MaliceState<popstab_core::state::AgentState> = MaliceState::Malicious {
            replicate_period: 3,
            age: 0,
        };
        let mut splits = 0;
        for _ in 0..9 {
            if proto.step(&mut mal, None, &mut rng) == Action::Split {
                splits += 1;
            }
        }
        assert_eq!(splits, 3, "one split per period");
    }

    #[test]
    fn malicious_cohort_is_suppressed_at_moderate_replication_rate() {
        // ρ = 4 with full matching: each malicious agent is killed with
        // probability ≈ honest fraction each round but only doubles every
        // 4th round — the cohort stays tiny and the population holds.
        let proto = extended();
        let params = Params::for_target(N).unwrap();
        let epoch = u64::from(params.epoch_len());
        let adv = MaliciousInserter::new(1, 4);
        let cfg = SimConfig::builder()
            .seed(3)
            .target(N)
            .adversary_budget(1)
            .max_population(16 * N as usize)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(proto, adv, cfg, N as usize);
        engine.run(popstab_sim::RunSpec::rounds(4 * epoch), &mut ());
        assert_eq!(engine.halted(), None);
        let mal = malicious_count(engine.agents());
        assert!(mal < 50, "malicious cohort grew to {mal}");
        let pop = engine.population();
        assert!(
            pop > N as usize / 2 && pop < 2 * N as usize,
            "population {pop}"
        );
    }

    #[test]
    fn unchecked_replication_overwhelms_without_the_kill_rule() {
        // Negative control: the *base* protocol (no kill rule) cannot
        // contain even slow malicious replication — this is the paper's
        // impossibility argument for arbitrary malicious programs. We model
        // "no detection" by running the same malicious automata against a
        // protocol whose honest agents treat them as unmatched rounds.
        #[derive(Debug)]
        struct NoDefense(WithMalice<PopulationStability>);
        impl Protocol for NoDefense {
            type State = MaliceState<popstab_core::state::AgentState>;
            type Message = MaliceMessage<popstab_core::message::Message>;
            fn initial_state(&self, rng: &mut SimRng) -> Self::State {
                self.0.initial_state(rng)
            }
            fn message(&self, s: &Self::State) -> Self::Message {
                self.0.message(s)
            }
            fn step(
                &self,
                s: &mut Self::State,
                m: Option<&Self::Message>,
                rng: &mut SimRng,
            ) -> Action {
                match (s, m) {
                    // Honest agents cannot detect: ignore the malicious partner.
                    (MaliceState::Honest(inner), Some(MaliceMessage::Malicious)) => {
                        self.0.inner().step(inner, None, rng)
                    }
                    (s @ MaliceState::Honest(_), m) => self.0.step(s, m, rng),
                    (s @ MaliceState::Malicious { .. }, _) => self.0.step(s, None, rng),
                }
            }
        }
        let params = Params::for_target(N).unwrap();
        let epoch = u64::from(params.epoch_len());
        let proto = NoDefense(WithMalice::new(PopulationStability::new(params)));
        let adv = MaliciousInserter::new(1, 32);
        let cfg = SimConfig::builder()
            .seed(4)
            .target(N)
            .adversary_budget(1)
            .max_population(16 * N as usize)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(proto, adv, cfg, N as usize);
        engine.run(popstab_sim::RunSpec::rounds(3 * epoch), &mut ());
        let mal = malicious_count(engine.agents());
        // 1 inserted/round, doubling every 32 rounds, never killed: the
        // cohort dwarfs any bound the defended model keeps.
        assert!(
            mal > 1000 || engine.halted().is_some(),
            "undefended malicious cohort only reached {mal}"
        );
    }

    #[test]
    fn split_every_round_defeats_sparse_contact() {
        // ρ = 1 under γ = 1/4 matching: growth 2×/round vs kill chance
        // ≈ γ ≈ 0.25 — the cohort explodes, matching the paper's remark
        // that unbounded replication makes the problem impossible.
        let proto = extended();
        let adv = MaliciousInserter::new(1, 1);
        let cfg = SimConfig::builder()
            .seed(5)
            .target(N)
            .adversary_budget(1)
            .matching(popstab_sim::MatchingModel::ExactFraction(0.25))
            .max_population(8 * N as usize)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(proto, adv, cfg, N as usize);
        engine.run(popstab_sim::RunSpec::rounds(200), &mut ());
        assert!(
            engine.halted() == Some(popstab_sim::HaltReason::Exploded)
                || malicious_count(engine.agents()) > N as usize,
            "expected explosion; malicious = {}",
            malicious_count(engine.agents())
        );
    }

    #[test]
    fn observable_passthrough() {
        let proto = extended();
        let mut rng = rng_from_seed(6);
        let honest = proto.initial_state(&mut rng);
        assert_eq!(honest.observe().round_in_epoch, Some(0));
        let mal: MaliceState<popstab_core::state::AgentState> = MaliceState::Malicious {
            replicate_period: 2,
            age: 0,
        };
        assert_eq!(mal.observe(), Observation::default());
    }

    #[test]
    #[should_panic(expected = "replicate_period must be positive")]
    fn zero_period_rejected() {
        MaliciousInserter::new(1, 0);
    }
}
