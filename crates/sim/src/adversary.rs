//! The worst-case adversary interface.
//!
//! The paper's adversary (§2) is computationally unbounded, observes the
//! entire history including the memory contents of every agent, and may
//! remove, insert (with arbitrary initial state) or modify up to `K` agents
//! per round. Inserted agents subsequently follow the protocol.
//!
//! The [`Adversary`] trait mirrors exactly that power: each round, before the
//! matching is sampled, the adversary receives the full state slice and
//! returns a list of [`Alteration`]s. The engine enforces the per-round
//! budget `K` by truncating the list.

use std::fmt;

use crate::rng::SimRng;

/// One adversarial operation. `Delete` and `Modify` indices refer to the
/// state slice passed to [`Adversary::act`] for the current round.
#[derive(Debug, Clone, PartialEq)]
pub enum Alteration<S> {
    /// Remove the agent at this index.
    Delete(usize),
    /// Insert a new agent with this (arbitrary) initial state.
    Insert(S),
    /// Overwrite the memory of the agent at this index.
    Modify(usize, S),
}

impl<S> Alteration<S> {
    /// Whether this alteration removes an agent.
    pub fn is_delete(&self) -> bool {
        matches!(self, Alteration::Delete(_))
    }

    /// Whether this alteration inserts an agent.
    pub fn is_insert(&self) -> bool {
        matches!(self, Alteration::Insert(_))
    }
}

/// Per-round information handed to the adversary alongside the state slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundContext {
    /// Global round number (0-based).
    pub round: u64,
    /// The per-round alteration budget `K` the engine will enforce.
    pub budget: usize,
    /// The initial population target `N` (the adversary knows the protocol).
    pub target: u64,
}

/// A worst-case adversary.
///
/// Implementations see the complete state of every agent (`agents`) and the
/// round context, and may use their own randomness. Returning more than
/// `ctx.budget` alterations is allowed but futile: the engine truncates.
pub trait Adversary<S> {
    /// Human-readable strategy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Decides this round's alterations.
    fn act(&mut self, ctx: &RoundContext, agents: &[S], rng: &mut SimRng) -> Vec<Alteration<S>>;

    /// Whether `act` is a guaranteed no-op: it never returns alterations,
    /// has no side effects, and does not read the state slice. Engines use
    /// this to skip materializing `Vec<P::State>` from resident columns on
    /// the fast path, so override it (as [`NoOpAdversary`] does) only when
    /// all three guarantees hold.
    fn is_noop(&self) -> bool {
        false
    }
}

/// The absent adversary: never alters anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoOpAdversary;

impl fmt::Display for NoOpAdversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("no-op adversary")
    }
}

impl<S> Adversary<S> for NoOpAdversary {
    fn name(&self) -> &'static str {
        "none"
    }

    fn act(&mut self, _ctx: &RoundContext, _agents: &[S], _rng: &mut SimRng) -> Vec<Alteration<S>> {
        Vec::new()
    }

    fn is_noop(&self) -> bool {
        true
    }
}

/// Boxed adversaries are adversaries too, so experiment suites can hold
/// heterogeneous strategies in one collection.
impl<S> Adversary<S> for Box<dyn Adversary<S>> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn act(&mut self, ctx: &RoundContext, agents: &[S], rng: &mut SimRng) -> Vec<Alteration<S>> {
        self.as_mut().act(ctx, agents, rng)
    }

    fn is_noop(&self) -> bool {
        self.as_ref().is_noop()
    }
}

/// The `Send` flavor, so fork branches and batch jobs can carry
/// heterogeneous boxed strategies across worker threads.
impl<S> Adversary<S> for Box<dyn Adversary<S> + Send> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn act(&mut self, ctx: &RoundContext, agents: &[S], rng: &mut SimRng) -> Vec<Alteration<S>> {
        self.as_mut().act(ctx, agents, rng)
    }

    fn is_noop(&self) -> bool {
        self.as_ref().is_noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn noop_returns_nothing() {
        let mut adv = NoOpAdversary;
        let ctx = RoundContext {
            round: 0,
            budget: 10,
            target: 100,
        };
        let out: Vec<Alteration<u8>> = adv.act(&ctx, &[1, 2, 3], &mut rng_from_seed(0));
        assert!(out.is_empty());
        assert_eq!(Adversary::<u8>::name(&adv), "none");
    }

    #[test]
    fn boxed_adversary_delegates() {
        let mut adv: Box<dyn Adversary<u8>> = Box::new(NoOpAdversary);
        let ctx = RoundContext {
            round: 3,
            budget: 1,
            target: 8,
        };
        assert!(adv.act(&ctx, &[], &mut rng_from_seed(0)).is_empty());
        assert_eq!(adv.name(), "none");
    }

    #[test]
    fn alteration_kind_predicates() {
        assert!(Alteration::<u8>::Delete(0).is_delete());
        assert!(!Alteration::<u8>::Delete(0).is_insert());
        assert!(Alteration::Insert(1u8).is_insert());
        assert!(!Alteration::Modify(0, 1u8).is_insert());
    }
}
