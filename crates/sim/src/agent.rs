//! Protocol abstraction: what an agent is and how it steps.
//!
//! A protocol defines the per-agent state, the message an agent broadcasts to
//! its matched neighbor, and the synchronous transition applied once per
//! round. The engine guarantees the population-protocol semantics of the
//! paper: messages are composed from the *pre-round* state of both partners
//! (a simultaneous exchange), then every agent steps exactly once, then
//! splits and deaths are applied.

use std::fmt;

use crate::rng::SimRng;

/// The decision an agent takes at the end of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Action {
    /// Keep living with the (possibly mutated) state.
    #[default]
    Continue,
    /// Split into two daughter agents, both inheriting the post-step state.
    Split,
    /// Remove this agent from the population.
    Die,
    /// Remove the matched partner from the population (a no-op when
    /// unmatched). This is the *extended* model of §1.2 of the paper
    /// ("a different model that allows agents not only to self-destruct but
    /// also to remove other agents it encounters"), used by
    /// `popstab-extensions` to survive maliciously-programmed insertions.
    /// The core protocol never emits it.
    KillPartner,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Continue => f.write_str("continue"),
            Action::Split => f.write_str("split"),
            Action::Die => f.write_str("die"),
            Action::KillPartner => f.write_str("kill partner"),
        }
    }
}

/// A synchronous population protocol.
///
/// Implementations must be deterministic given the RNG stream: all randomness
/// goes through the `rng` argument so simulations replay exactly from a seed.
pub trait Protocol {
    /// Per-agent memory. Cloned on splits; the memory *footprint* that the
    /// paper accounts for is computed by protocol-specific accounting, not by
    /// `size_of`, because instrumentation fields are allowed (and documented)
    /// in simulation.
    type State: Clone + fmt::Debug + Observable;

    /// The message broadcast to the matched neighbor each round.
    type Message: Clone + fmt::Debug;

    /// State of a freshly created agent at system onset ("all variables set
    /// to zero" in the paper).
    fn initial_state(&self, rng: &mut SimRng) -> Self::State;

    /// Composes the message this agent sends this round, from its pre-round
    /// state. Called before any agent steps, so exchanges are simultaneous.
    fn message(&self, state: &Self::State) -> Self::Message;

    /// Advances one agent by one round. `incoming` is `Some` iff the agent
    /// was matched this round (`⊥` in the paper otherwise).
    fn step(
        &self,
        state: &mut Self::State,
        incoming: Option<&Self::Message>,
        rng: &mut SimRng,
    ) -> Action;

    /// The protocol's columnar step-phase executor, if it opts in to
    /// struct-of-arrays execution (see
    /// [`ColumnarProtocol`](crate::columns::ColumnarProtocol)). The default
    /// is `None`: the engine runs the scalar [`step`](Protocol::step) loop.
    /// Implementations returning `Some` must produce bit-identical results
    /// on either path — the columnar stepper is an evaluation-batching
    /// change, never a semantic one.
    ///
    /// `where Self: Sized` keeps the trait object-safe; engines are generic
    /// over `P: Protocol`, so they always see the concrete override.
    fn columnar(&self) -> Option<Box<dyn crate::columns::ColumnarStep<Self::State>>>
    where
        Self: Sized,
    {
        None
    }
}

/// A protocol-agnostic snapshot of one agent, used by the metrics recorder
/// and by generic adversaries.
///
/// Protocols map their state onto whichever fields make sense and leave the
/// rest at the defaults. All fields describe *logical* protocol state, never
/// simulation plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Observation {
    /// Round counter within the protocol's epoch, if the protocol has one.
    pub round_in_epoch: Option<u32>,
    /// Whether the agent is active/colored.
    pub active: bool,
    /// The agent's color, if it has one (`false` = color 0, `true` = color 1).
    pub color: Option<bool>,
    /// Whether the agent is currently trying to recruit.
    pub recruiting: bool,
    /// Whether the agent believes it is in its evaluation round.
    pub in_eval_phase: bool,
    /// Whether the agent became a leader this epoch (instrumentation).
    pub is_leader: bool,
    /// Cluster/lineage tag (instrumentation), if tracked.
    pub lineage: Option<u64>,
}

/// Exposes a protocol state to generic observers.
pub trait Observable {
    /// Produces the generic snapshot of this state.
    fn observe(&self) -> Observation;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_default_is_continue() {
        assert_eq!(Action::default(), Action::Continue);
    }

    #[test]
    fn action_display() {
        assert_eq!(Action::Continue.to_string(), "continue");
        assert_eq!(Action::Split.to_string(), "split");
        assert_eq!(Action::Die.to_string(), "die");
    }

    #[test]
    fn observation_default_is_inert() {
        let obs = Observation::default();
        assert!(!obs.active);
        assert_eq!(obs.color, None);
        assert!(!obs.recruiting);
        assert!(!obs.in_eval_phase);
        assert!(!obs.is_leader);
        assert_eq!(obs.round_in_epoch, None);
        assert_eq!(obs.lineage, None);
    }
}
