//! Parallel batch execution of independent simulation jobs.
//!
//! The paper's guarantees are asymptotic: observing the `1/(8√N)` leader
//! probability or the `K = N^{1/4−ε}` tolerance threshold cleanly takes many
//! independent trials at large `N`. Every such trial is an isolated
//! `(protocol, adversary, config, seed)` job, so the natural unit of scaling
//! is the *batch*: [`BatchRunner`] fans a vector of jobs across a
//! [`std::thread::scope`] worker pool and collects the results **in job
//! order**.
//!
//! # Determinism contract
//!
//! Results are bit-identical regardless of worker count and of how the OS
//! schedules the workers:
//!
//! * every job carries its own seed (derive it with [`job_seed`] or any
//!   scheme of your choosing) and builds its own [`Engine`](crate::Engine) /
//!   RNG streams from it — jobs share no mutable state,
//! * workers claim jobs from an atomic counter, but each result is written
//!   to the slot of *its own* job index, so the output `Vec` order never
//!   depends on scheduling,
//! * `BatchRunner::new(1)` executes inline on the calling thread; the
//!   `batch_runner_is_thread_count_independent` property test asserts it
//!   produces exactly the same results as any multi-worker configuration.
//!
//! Consequently a batch over jobs seeded from a single master seed is as
//! reproducible as one serial run — `--jobs 32` and `--jobs 1` print the
//! same tables.
//!
//! ```
//! use popstab_sim::batch::{job_seed, BatchRunner};
//! use popstab_sim::{protocols::Inert, Engine, SimConfig};
//!
//! let jobs: Vec<u64> = (0..8).map(|i| job_seed(42, i)).collect();
//! let runner = BatchRunner::new(4);
//! let finals = runner.run(jobs.clone(), |_, seed| {
//!     let cfg = SimConfig::builder().seed(seed).build().unwrap();
//!     let mut engine = Engine::with_population(Inert, cfg, 64);
//!     engine.run_until(50, |_| false);
//!     engine.population()
//! });
//! assert_eq!(finals, BatchRunner::new(1).run(jobs, |_, _| 64));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::derive_seed;

/// Process-wide default worker count override (0 = unset).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used by
/// [`BatchRunner::from_env`] (the `experiments` binary wires its `--jobs`
/// flag through here). `0` clears the override.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count [`BatchRunner::from_env`] will use: the
/// [`set_default_jobs`] override if set, else the `POPSTAB_JOBS` environment
/// variable, else [`std::thread::available_parallelism`].
pub fn default_jobs() -> usize {
    let explicit = DEFAULT_JOBS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("POPSTAB_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives the master seed for job `index` of a batch seeded by `master`.
///
/// Golden-rule of the determinism contract: the job seed depends only on
/// `(master, index)` — never on worker identity, scheduling order, or wall
/// time. Internally the index is mixed into the master seed (SplitMix64
/// increment) and the result is pushed through the same FNV fold as
/// [`derive_stream`](crate::rng::derive_stream), so job streams are
/// independent of each other *and* of any streams the caller derives from
/// `master` directly.
pub fn job_seed(master: u64, index: u64) -> u64 {
    derive_seed(
        master.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        "batch-job",
    )
}

/// Fans independent jobs across a scoped worker pool.
///
/// See the [module docs](crate::batch) for the determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::from_env()
    }
}

impl BatchRunner {
    /// A runner with exactly `workers` worker threads (`0` is clamped to 1).
    /// One worker executes inline on the calling thread.
    pub fn new(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
        }
    }

    /// A runner sized by [`default_jobs`] (`--jobs` override, then
    /// `POPSTAB_JOBS`, then the machine's available parallelism).
    pub fn from_env() -> Self {
        BatchRunner::new(default_jobs())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `run(index, job)` for every job and returns the results in
    /// job order. `run` must be a pure function of its arguments for the
    /// determinism contract to hold (in particular: seed all randomness from
    /// the job, never from global state).
    ///
    /// Worker threads claim jobs through an atomic cursor (work stealing
    /// without queues: jobs are taken in index order, so long jobs at the
    /// front do not serialize the batch). A panic in any job propagates to
    /// the caller once the scope joins.
    pub fn run<T, R, F>(&self, jobs: Vec<T>, run: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = jobs.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| run(i, job))
                .collect();
        }

        let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let run = &run;
        let slots = &slots;
        let results = &results;
        let cursor = &cursor;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let result = run(i, job);
                    *results[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        results
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("result slot poisoned")
                    .take()
                    .expect("job finished without a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let runner = BatchRunner::new(4);
        let out = runner.run((0..100usize).collect(), |i, job| {
            assert_eq!(i, job);
            job * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let runner = BatchRunner::new(1);
        let id = std::thread::current().id();
        let out = runner.run(vec![(); 4], |i, ()| {
            assert_eq!(std::thread::current().id(), id);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let compute = |_, seed: u64| {
            // A little seed-dependent arithmetic standing in for a trial.
            let mut x = seed;
            for _ in 0..10 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        };
        let jobs: Vec<u64> = (0..33).map(|i| job_seed(7, i)).collect();
        let serial = BatchRunner::new(1).run(jobs.clone(), compute);
        for workers in [2, 3, 8, 64] {
            assert_eq!(BatchRunner::new(workers).run(jobs.clone(), compute), serial);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u8> = BatchRunner::new(8).run(Vec::<u8>::new(), |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamp_to_one() {
        assert_eq!(BatchRunner::new(0).workers(), 1);
    }

    #[test]
    fn job_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..64).map(|i| job_seed(1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| job_seed(1, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "job seeds collide");
        assert!(a.iter().all(|&s| s != job_seed(2, 0)));
    }

    #[test]
    fn explicit_default_jobs_override_wins() {
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        assert_eq!(BatchRunner::from_env().workers(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
