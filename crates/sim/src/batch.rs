//! Parallel batch execution of independent simulation jobs.
//!
//! The paper's guarantees are asymptotic: observing the `1/(8√N)` leader
//! probability or the `K = N^{1/4−ε}` tolerance threshold cleanly takes many
//! independent trials at large `N`. Every such trial is an isolated
//! `(protocol, adversary, config, seed)` job, so the natural unit of scaling
//! is the *batch*: [`BatchRunner`] fans a vector of jobs across a
//! [`std::thread::scope`] worker pool and collects the results **in job
//! order**.
//!
//! # Determinism contract
//!
//! Results are bit-identical regardless of worker count and of how the OS
//! schedules the workers:
//!
//! * every job carries its own seed (derive it with [`job_seed`] or any
//!   scheme of your choosing) and builds its own [`Engine`] /
//!   RNG streams from it — jobs share no mutable state,
//! * workers claim jobs from an atomic counter, but each result is written
//!   to the slot of *its own* job index, so the output `Vec` order never
//!   depends on scheduling,
//! * `BatchRunner::new(1)` executes inline on the calling thread; the
//!   `batch_runner_is_thread_count_independent` property test asserts it
//!   produces exactly the same results as any multi-worker configuration.
//!
//! Consequently a batch over jobs seeded from a single master seed is as
//! reproducible as one serial run — `--jobs 32` and `--jobs 1` print the
//! same tables.
//!
//! # Failure semantics
//!
//! [`BatchRunner::run`] treats a panicking job as fatal (the panic
//! propagates once the scope joins). [`BatchRunner::run_faulty`] is the
//! fault-tolerant variant: each job attempt runs under `catch_unwind`, a
//! bounded [`RetryPolicy`] re-runs failed jobs (each retry receives the
//! same `(index, job)` inputs, so with job-derived seeding a successful
//! retry is bit-identical to a never-failed run), and jobs that exhaust
//! their attempts are quarantined into the [`BatchReport`] instead of
//! aborting the sweep. [`ShardPool`] is panic-safe as well: a panicking
//! shard body cannot wedge the barrier, and
//! [`try_dispatch`](ShardPool::try_dispatch) surfaces shard panics as a
//! clean [`ShardPanic`] error instead of resuming the unwind.
//!
//! ```
//! use popstab_sim::batch::{job_seed, BatchRunner, Scenario};
//! use popstab_sim::{protocols::Inert, RunSpec, SimConfig};
//!
//! let jobs: Vec<u64> = (0..8).map(|i| job_seed(42, i)).collect();
//! let runner = BatchRunner::new(4);
//! let finals = runner.run(jobs.clone(), |_, seed| {
//!     let cfg = SimConfig::builder().seed(seed).build().unwrap();
//!     let (engine, _) = Scenario::new(Inert, cfg, 64).run(RunSpec::rounds(50), &mut ());
//!     engine.population()
//! });
//! assert_eq!(finals, BatchRunner::new(1).run(jobs, |_, _| 64));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::adversary::{Adversary, NoOpAdversary};
use crate::agent::Protocol;
use crate::config::SimConfig;
use crate::driver::{Observer, RunOutcome, RunSpec};
use crate::engine::{Engine, RoundReport};
use crate::rng::derive_seed;
use crate::snapshot::SnapshotState;

/// Process-wide default worker count override (0 = unset).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide intra-round worker count (0 = unset, meaning serial).
static ROUND_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide intra-round worker count consumed by
/// [`round_threads`] (the `experiments` binary wires its `--round-threads`
/// flag through here). `0` or `1` means serial rounds.
pub fn set_round_threads(threads: usize) {
    ROUND_THREADS.store(threads, Ordering::Relaxed);
}

/// The intra-round worker count behind
/// [`Threads::from_env`](crate::Threads::from_env): the
/// [`set_round_threads`] override if set, else the
/// `POPSTAB_ROUND_THREADS` environment variable, else `1` (serial rounds —
/// intra-round sharding only pays off on large populations, so it is
/// strictly opt-in, unlike the batch default).
pub fn round_threads() -> usize {
    round_threads_override().unwrap_or(1)
}

/// As [`round_threads`], but distinguishing "explicitly requested" from
/// "unset": `Some(n)` iff a `--round-threads` override or the
/// `POPSTAB_ROUND_THREADS` variable asked for `n` (including `n = 1` —
/// callers that pick their own default when unset, like the `bench`
/// workload, must still honor an explicit request for serial rounds).
pub fn round_threads_override() -> Option<usize> {
    let explicit = ROUND_THREADS.load(Ordering::Relaxed);
    if explicit > 0 {
        return Some(explicit);
    }
    // lint:allow(taint-ambient-nondeterminism): worker-count knob only —
    // the determinism contract guarantees results are worker-count-invariant
    // (serial ≡ sharded bit-for-bit), so this read cannot reach trajectories.
    std::env::var("POPSTAB_ROUND_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Process-wide columnar-step default (0 = scalar, 1 = columnar).
static COLUMNAR: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide columnar-step default consumed by
/// [`columnar_default`] (the `experiments` binary wires its `--columnar`
/// flag through here).
pub fn set_columnar_default(enabled: bool) {
    COLUMNAR.store(usize::from(enabled), Ordering::Relaxed);
}

/// Whether engines built by [`Scenario::engine`](crate::Scenario) (and the
/// snapshot/fork tooling layered on it) opt into the columnar
/// (struct-of-arrays) step path: the [`set_columnar_default`] override if
/// set, else the `POPSTAB_COLUMNAR` environment variable (`1`/`true`).
/// Purely a performance knob — the columnar path is bit-identical to the
/// scalar loop, which the CI columnar smoke leg diffs to prove.
pub fn columnar_default() -> bool {
    if COLUMNAR.load(Ordering::Relaxed) != 0 {
        return true;
    }
    // lint:allow(taint-ambient-nondeterminism): layout knob only — the
    // columnar kernels replay the scalar trajectory bit-for-bit (the
    // equivalence suite and the CI columnar smoke leg both enforce it).
    std::env::var("POPSTAB_COLUMNAR")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// Sets the process-wide default worker count used by
/// [`BatchRunner::from_env`] (the `experiments` binary wires its `--jobs`
/// flag through here). `0` clears the override.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count [`BatchRunner::from_env`] will use: the
/// [`set_default_jobs`] override if set, else the `POPSTAB_JOBS` environment
/// variable, else [`std::thread::available_parallelism`].
pub fn default_jobs() -> usize {
    let explicit = DEFAULT_JOBS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    // lint:allow(taint-ambient-nondeterminism): worker-count knob only —
    // batch results are keyed by (seed, spec), never by which worker ran them.
    if let Some(n) = std::env::var("POPSTAB_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives the master seed for job `index` of a batch seeded by `master`.
///
/// Golden-rule of the determinism contract: the job seed depends only on
/// `(master, index)` — never on worker identity, scheduling order, or wall
/// time. Internally the index is mixed into the master seed (SplitMix64
/// increment) and the result is pushed through the same FNV fold as
/// [`derive_stream`](crate::rng::derive_stream), so job streams are
/// independent of each other *and* of any streams the caller derives from
/// `master` directly.
pub fn job_seed(master: u64, index: u64) -> u64 {
    derive_seed(
        master.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        "batch-job",
    )
}

/// Fans independent jobs across a scoped worker pool.
///
/// See the [module docs](crate::batch) for the determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::from_env()
    }
}

impl BatchRunner {
    /// A runner with exactly `workers` worker threads (`0` is clamped to 1).
    /// One worker executes inline on the calling thread.
    pub fn new(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
        }
    }

    /// A runner sized by [`default_jobs`] (`--jobs` override, then
    /// `POPSTAB_JOBS`, then the machine's available parallelism).
    pub fn from_env() -> Self {
        BatchRunner::new(default_jobs())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `run(index, job)` for every job and returns the results in
    /// job order. `run` must be a pure function of its arguments for the
    /// determinism contract to hold (in particular: seed all randomness from
    /// the job, never from global state).
    ///
    /// Worker threads claim jobs through an atomic cursor (work stealing
    /// without queues: jobs are taken in index order, so long jobs at the
    /// front do not serialize the batch). A panic in any job propagates to
    /// the caller once the scope joins.
    pub fn run<T, R, F>(&self, jobs: Vec<T>, run: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = jobs.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| run(i, job))
                .collect();
        }

        let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let run = &run;
        let slots = &slots;
        let results = &results;
        let cursor = &cursor;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let result = run(i, job);
                    *results[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        results
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("result slot poisoned")
                    .take()
                    .expect("job finished without a result")
            })
            .collect()
    }

    /// The fault-tolerant variant of [`run`](BatchRunner::run): executes
    /// `run(index, attempt, &job)` for every job, catching per-attempt
    /// panics, retrying up to `policy` attempts, and quarantining jobs that
    /// never succeed into the returned [`BatchReport`] instead of aborting
    /// the sweep.
    ///
    /// Determinism is preserved through failures: every attempt of a job
    /// receives the identical `(index, &job)` inputs (attempt numbers start
    /// at 1), so a job that seeds all of its randomness from those — the
    /// batch contract — produces the same result whether it succeeded on
    /// the first attempt or the last. A fault-free `run_faulty` sweep is
    /// therefore bit-identical to the corresponding [`run`](BatchRunner::run) sweep, and
    /// worker-count invariance carries over unchanged.
    ///
    /// Worker threads survive job panics: one poisoned job quarantines
    /// itself, the rest of the batch completes normally.
    pub fn run_faulty<T, R, F>(&self, jobs: Vec<T>, policy: RetryPolicy, run: F) -> BatchReport<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, u32, &T) -> R + Sync,
    {
        let run = &run;
        let outcomes = self.run(jobs, move |index, job| {
            let mut message = String::new();
            for attempt in 1..=policy.max_attempts() {
                // AssertUnwindSafe: a panicking attempt abandons everything
                // it touched — the job is passed by shared reference and
                // `run` must be a pure function of its arguments (the batch
                // determinism contract) — so a from-scratch retry observes
                // no broken state.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run(index, attempt, &job)
                }));
                match result {
                    Ok(result) => return JobOutcome::Ok(result),
                    Err(payload) => message = panic_message(payload.as_ref()),
                }
            }
            JobOutcome::Quarantined(JobFailure {
                index,
                attempts: policy.max_attempts(),
                message,
            })
        });
        BatchReport { outcomes }
    }
}

/// Renders a `catch_unwind` payload as text: the panic message when the
/// payload is a string (the overwhelmingly common case — `panic!` with a
/// literal or a formatted message), a placeholder otherwise.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Bounded retry policy for [`BatchRunner::run_faulty`]: how many times a
/// job may be attempted before it is quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
}

impl RetryPolicy {
    /// Allows up to `max_attempts` attempts per job (`0` is clamped to 1 —
    /// every job always gets its first attempt).
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
        }
    }

    /// No retries: one attempt, then quarantine.
    pub fn none() -> RetryPolicy {
        RetryPolicy::attempts(1)
    }

    /// The attempt bound.
    pub fn max_attempts(self) -> u32 {
        self.max_attempts
    }
}

/// Three attempts per job — enough to shrug off a transient fault without
/// grinding on a deterministic one.
impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::attempts(3)
    }
}

/// A quarantined job: which job failed, how hard it was retried, and what
/// the last panic said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The failed job's batch index.
    pub index: usize,
    /// Attempts consumed (the policy's bound — quarantine means every
    /// attempt failed).
    pub attempts: u32,
    /// The final attempt's panic message.
    pub message: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} failed all {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

/// One job's fate in a [`BatchRunner::run_faulty`] sweep.
#[derive(Debug)]
pub enum JobOutcome<R> {
    /// The job produced a result (possibly after retries — bit-identical
    /// either way, by the batch determinism contract).
    Ok(R),
    /// The job panicked on every allowed attempt.
    Quarantined(JobFailure),
}

impl<R> JobOutcome<R> {
    /// The result, if the job succeeded.
    pub fn ok(self) -> Option<R> {
        match self {
            JobOutcome::Ok(r) => Some(r),
            JobOutcome::Quarantined(_) => None,
        }
    }

    /// A reference to the result, if the job succeeded.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            JobOutcome::Ok(r) => Some(r),
            JobOutcome::Quarantined(_) => None,
        }
    }

    /// The failure record, if the job was quarantined.
    pub fn failure(&self) -> Option<&JobFailure> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Quarantined(failure) => Some(failure),
        }
    }
}

/// The structured result of a [`BatchRunner::run_faulty`] sweep: one
/// [`JobOutcome`] per job, in job order.
#[derive(Debug)]
pub struct BatchReport<R> {
    outcomes: Vec<JobOutcome<R>>,
}

impl<R> BatchReport<R> {
    /// Every job's outcome, in job order.
    pub fn outcomes(&self) -> &[JobOutcome<R>] {
        &self.outcomes
    }

    /// Consumes the report into its outcome vector.
    pub fn into_outcomes(self) -> Vec<JobOutcome<R>> {
        self.outcomes
    }

    /// The quarantined jobs, in job order.
    pub fn failures(&self) -> impl Iterator<Item = &JobFailure> {
        self.outcomes.iter().filter_map(JobOutcome::failure)
    }

    /// Whether every job succeeded.
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.failure().is_none())
    }

    /// All results in job order when the sweep was clean, otherwise every
    /// failure record.
    ///
    /// # Errors
    ///
    /// The quarantined jobs' [`JobFailure`]s when any job failed.
    pub fn into_results(self) -> Result<Vec<R>, Vec<JobFailure>> {
        if self.is_clean() {
            Ok(self
                .outcomes
                .into_iter()
                .filter_map(JobOutcome::ok)
                .collect())
        } else {
            Err(self
                .outcomes
                .iter()
                .filter_map(JobOutcome::failure)
                .cloned()
                .collect())
        }
    }
}

/// A declarative, self-contained simulation job: the `(protocol, adversary,
/// config, initial population)` tuple every trial loop in the workspace
/// used to hand-roll.
///
/// A `Scenario` is plain data (`Clone` when its parts are), so sweeps can
/// build one per grid cell and fan them out over a [`BatchRunner`] — each
/// job builds its own [`Engine`] from its own seed, which is exactly the
/// batch determinism contract. Named, concrete scenarios (the paper's
/// protocol against each suite adversary, the baselines, …) live in the
/// `popstab-bench` registry (`experiments --list`); this type is the
/// generic substrate they are built from.
///
/// ```
/// use popstab_sim::{protocols::Inert, RunSpec, Scenario, SimConfig};
///
/// let cfg = SimConfig::builder().seed(3).build().unwrap();
/// let (engine, outcome) = Scenario::new(Inert, cfg, 32).run(RunSpec::rounds(5), &mut ());
/// assert_eq!(outcome.executed, 5);
/// assert_eq!(engine.population(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario<P, A = NoOpAdversary> {
    /// The protocol every agent runs.
    pub protocol: P,
    /// The adversary acting each round.
    pub adversary: A,
    /// Engine configuration (seed, matching model, budget, caps).
    pub config: SimConfig,
    /// Initial population size.
    pub initial: usize,
}

impl<P: Protocol> Scenario<P, NoOpAdversary> {
    /// A scenario with no adversary.
    pub fn new(protocol: P, config: SimConfig, initial: usize) -> Self {
        Scenario {
            protocol,
            adversary: NoOpAdversary,
            config,
            initial,
        }
    }
}

impl<P: Protocol, A: Adversary<P::State>> Scenario<P, A> {
    /// Replaces the adversary (builder-style, so `Scenario::new(..)
    /// .against(adv)` reads declaratively).
    pub fn against<B: Adversary<P::State>>(self, adversary: B) -> Scenario<P, B> {
        Scenario {
            protocol: self.protocol,
            adversary,
            config: self.config,
            initial: self.initial,
        }
    }

    /// Builds the engine this scenario describes. The engine opts into the
    /// columnar step path when [`columnar_default`] asks for it
    /// (`--columnar` / `POPSTAB_COLUMNAR`) — bit-identical either way.
    pub fn engine(self) -> Engine<P, A> {
        let mut engine =
            Engine::with_adversary(self.protocol, self.adversary, self.config, self.initial);
        engine.set_columnar(columnar_default());
        engine
    }

    /// Builds the engine and drives it through `spec` under `obs`,
    /// returning the engine (for state inspection) and the outcome.
    pub fn run<F, O>(self, spec: RunSpec<F>, obs: &mut O) -> (Engine<P, A>, RunOutcome)
    where
        P: Sync,
        P::State: Send + Sync,
        P::Message: Send,
        F: FnMut(&RoundReport) -> bool,
        O: Observer<P>,
    {
        let mut engine = self.engine();
        let outcome = engine.run(spec, obs);
        (engine, outcome)
    }

    /// Runs the shared prefix once (serially, to `at_round`), snapshots it,
    /// and branches the frozen state into one divergent future per entry of
    /// `branches`, fanned out over `runner`.
    ///
    /// Each branch restores its own [`Engine`] from
    /// [`Snapshot::fork`](crate::Snapshot::fork)`(seed_salt)` — optionally
    /// with a different adversary budget — pairs it with the branch's own
    /// adversary, and hands it to `eval(index, engine)`, which drives the
    /// future however it likes (spec, observer, measurements) and returns
    /// the branch result. Results come back in branch order, and, like any
    /// batch, are bit-identical for every worker count.
    ///
    /// A branch with `seed_salt = 0`, the prefix adversary, and no budget
    /// override continues *exactly* the uninterrupted run — the
    /// counterfactual baseline comes for free.
    ///
    /// ```
    /// use popstab_sim::batch::{BatchRunner, ForkBranch, Scenario};
    /// use popstab_sim::{protocols::Inert, NoOpAdversary, RunSpec, SimConfig};
    ///
    /// let cfg = SimConfig::builder().seed(9).build().unwrap();
    /// let branches = (0..4u64)
    ///     .map(|salt| ForkBranch::new(salt, NoOpAdversary))
    ///     .collect();
    /// let finals = Scenario::new(Inert, cfg, 32).fork(
    ///     10,
    ///     branches,
    ///     &BatchRunner::new(2),
    ///     |_, mut engine| {
    ///         engine.run(RunSpec::rounds(10), &mut ());
    ///         engine.population()
    ///     },
    /// );
    /// assert_eq!(finals, vec![32; 4]);
    /// ```
    pub fn fork<B, R, F>(
        self,
        at_round: u64,
        branches: Vec<ForkBranch<B>>,
        runner: &BatchRunner,
        eval: F,
    ) -> Vec<R>
    where
        P: Clone + Send + Sync,
        P::State: SnapshotState + Send + Sync,
        P::Message: Send,
        B: Adversary<P::State> + Send,
        R: Send,
        F: Fn(usize, Engine<P, B>) -> R + Sync,
    {
        let protocol = self.protocol.clone();
        let mut prefix = self.engine();
        prefix.run(RunSpec::rounds(at_round), &mut ());
        let snap = prefix.snapshot();
        drop(prefix);
        let protocol = &protocol;
        let snap = &snap;
        runner.run(branches, move |index, branch| {
            let mut snap = snap.fork(branch.seed_salt);
            if let Some(budget) = branch.budget {
                snap.config_mut().adversary_budget = budget;
            }
            // Same-process, same protocol type: the tag always matches and
            // the agent column decodes exactly as it was encoded.
            let mut engine = Engine::restore(protocol.clone(), branch.adversary, &snap)
                .expect("a freshly taken snapshot restores under its own protocol");
            engine.set_columnar(columnar_default());
            eval(index, engine)
        })
    }
}

/// One branch of a [`Scenario::fork`]: the seed perturbation and adversary
/// (plus optional budget override) its future diverges under.
///
/// `seed_salt = 0` leaves the snapshot's streams untouched (the branch
/// replays the original future as long as its adversary behaves
/// identically); any other salt derives fresh, decorrelated agent/matching/
/// adversary streams for the rounds after the fork point.
#[derive(Debug, Clone)]
pub struct ForkBranch<B> {
    /// Stream perturbation, mixed into the snapshot seed; `0` = unperturbed.
    pub seed_salt: u64,
    /// The adversary this branch runs under after the fork point.
    pub adversary: B,
    /// Replacement adversary budget, if the branch varies it.
    pub budget: Option<usize>,
}

impl<B> ForkBranch<B> {
    /// A branch with the given salt and adversary, keeping the snapshot's
    /// budget.
    pub fn new(seed_salt: u64, adversary: B) -> Self {
        ForkBranch {
            seed_salt,
            adversary,
            budget: None,
        }
    }

    /// Overrides the adversary budget for this branch (builder-style).
    #[must_use]
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// A raw pointer that may cross thread boundaries. Used by the intra-round
/// parallel phases (the engine's step phase, the matching sampler) to hand
/// each shard its disjoint slice of a shared buffer; every use site
/// documents why its accesses are disjoint.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. A method (not field access) so closures capture
    /// the `SendPtr` itself — edition-2021 disjoint capture would otherwise
    /// grab the bare `*mut T` field, which is not `Sync`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: dereferencing is the caller's responsibility (each unsafe block
// at the use sites states its disjointness argument); the pointer value
// itself is freely copyable across threads.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared references to the wrapper expose only the raw pointer
// value, never the pointee — same argument as `Send` above.
unsafe impl<T> Sync for SendPtr<T> {}

/// The slot range shard `s` of `nshards` owns over `n` items: contiguous,
/// disjoint, covering `0..n`, balanced to within one item.
#[inline]
pub(crate) fn shard_range(n: usize, nshards: usize, s: usize) -> (usize, usize) {
    let chunk = n / nshards;
    let rem = n % nshards;
    let lo = s * chunk + s.min(rem);
    (lo, lo + chunk + usize::from(s < rem))
}

/// One dispatched shard body, type- and lifetime-erased so the persistent
/// workers can hold it across their `recv` loop.
struct ShardTask(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (it is executed concurrently by every
// worker), and `ShardPool::dispatch` does not return until every worker has
// finished running it, so the pointer never outlives the closure it points
// to.
unsafe impl Send for ShardTask {}

/// Dispatch-protocol state shared between the pool owner and its workers.
struct PoolState {
    /// The body of the generation currently being executed, if any.
    task: Option<ShardTask>,
    /// Bumped once per dispatch; workers run each generation exactly once.
    generation: u64,
    /// Workers still executing the current generation.
    outstanding: usize,
    /// First panic caught from a worker shard this generation, with the
    /// panicking shard's index.
    panic: Option<(usize, Box<dyn std::any::Any + Send>)>,
    /// Set once by [`ShardPool::with`] on the way out.
    shutdown: bool,
}

/// A persistent intra-round worker pool.
///
/// [`BatchRunner`] parallelizes *across* independent jobs; `ShardPool`
/// parallelizes *inside* one simulation round. `with(n, f)` spawns `n − 1`
/// scoped worker threads that live for the whole closure `f` — one `Engine`
/// run can dispatch thousands of rounds without paying a thread spawn per
/// round. Each [`dispatch`](ShardPool::dispatch) runs `body(shard)` exactly
/// once for every shard index in `0..n` (shard 0 on the calling thread,
/// the rest on the workers) and returns only when all of them finished, so
/// the body may borrow from the caller's stack.
///
/// The pool imposes no determinism by itself — callers get bit-identical
/// results for every shard count by keying all randomness on data (see
/// [`crate::rng::counter_seed`]) and merging per-shard output in slot
/// order, which is exactly what `Engine::run_until_par` does.
pub struct ShardPool {
    shards: usize,
    state: Mutex<PoolState>,
    work_ready: Condvar,
    work_done: Condvar,
    /// Guards against concurrent `dispatch` calls (the pool is `Sync`, but
    /// the dispatch protocol is single-dispatcher; see [`ShardPool::dispatch`]).
    dispatching: std::sync::atomic::AtomicBool,
}

impl ShardPool {
    /// Runs `f` with a pool of `shards` shards (`0` is clamped to 1), then
    /// joins the workers. With one shard no threads are spawned and
    /// dispatches run inline.
    pub fn with<R>(shards: usize, f: impl FnOnce(&ShardPool) -> R) -> R {
        let pool = ShardPool {
            shards: shards.max(1),
            state: Mutex::new(PoolState {
                task: None,
                generation: 0,
                outstanding: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            dispatching: std::sync::atomic::AtomicBool::new(false),
        };
        if pool.shards == 1 {
            return f(&pool);
        }
        /// Shuts the workers down when dropped — including when `f`
        /// unwinds, without which the scope join below would hang forever.
        struct Shutdown<'a>(&'a ShardPool);
        impl Drop for Shutdown<'_> {
            fn drop(&mut self) {
                self.0.state().shutdown = true;
                self.0.work_ready.notify_all();
            }
        }
        std::thread::scope(|scope| {
            for shard in 1..pool.shards {
                let pool = &pool;
                scope.spawn(move || pool.worker_loop(shard));
            }
            let _shutdown = Shutdown(&pool);
            f(&pool)
        })
    }

    /// The shard count `n`: every dispatch runs shard indices `0..n`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Locks the protocol state, recovering from poisoning. Every mutation
    /// of `PoolState` keeps it consistent at every intermediate point (the
    /// fields are plain counters and options), so a panic while the lock is
    /// held — which can only come from the caller's `body` via the unwind
    /// paths — leaves valid state behind and the lock may be safely
    /// re-entered. Treating poison as fatal here would turn one reported
    /// shard panic into a permanently wedged pool.
    fn state(&self) -> MutexGuard<'_, PoolState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Runs `body(shard)` for every shard index in `0..self.shards()`,
    /// each exactly once (shard 0 inline on the caller), returning when all
    /// have finished. `body` must tolerate running concurrently with itself
    /// under distinct shard indices.
    ///
    /// A panic on any shard is re-raised here on the calling thread — but
    /// only **after** every shard has finished, so the stack frame the body
    /// borrows from stays alive for as long as any worker can touch it
    /// (the same all-shards barrier the success path uses).
    ///
    /// # Panics
    ///
    /// Panics if called while another `dispatch` on the same pool is still
    /// running. The pool is one team of workers executing one generation at
    /// a time; overlapping dispatches would let a worker outlive the stack
    /// frame its task borrows, so the protocol refuses them outright.
    pub fn dispatch(&self, body: &(dyn Fn(usize) + Sync)) {
        if let Err((_, payload)) = self.dispatch_inner(body) {
            std::panic::resume_unwind(payload);
        }
    }

    /// Like [`dispatch`](ShardPool::dispatch), but a shard panic comes back
    /// as a structured [`ShardPanic`] error instead of unwinding the
    /// caller. The all-shards barrier is identical: the call returns only
    /// once every shard has finished, panicked or not, and the pool remains
    /// usable for further dispatches afterwards.
    ///
    /// # Errors
    ///
    /// The first panic observed this dispatch, attributed to its shard
    /// (shard 0 — the caller's own inline shard — wins ties).
    ///
    /// # Panics
    ///
    /// Panics on concurrent dispatches, exactly like `dispatch`.
    pub fn try_dispatch(&self, body: &(dyn Fn(usize) + Sync)) -> Result<(), ShardPanic> {
        self.dispatch_inner(body)
            .map_err(|(shard, payload)| ShardPanic {
                shard,
                message: panic_message(payload.as_ref()),
            })
    }

    /// The shared dispatch protocol: runs every shard, holds the barrier,
    /// and reports the first panic (with its shard index) to the caller
    /// instead of unwinding.
    fn dispatch_inner(
        &self,
        body: &(dyn Fn(usize) + Sync),
    ) -> Result<(), (usize, Box<dyn std::any::Any + Send>)> {
        if self.shards == 1 {
            // AssertUnwindSafe: the payload is reported to the caller, which
            // either re-raises it (`dispatch`, the serial panic behavior) or
            // abandons the half-stepped state (`try_dispatch`).
            return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(0)))
                .map_err(|payload| (0, payload));
        }
        assert!(
            !self.dispatching.swap(true, Ordering::Acquire),
            "concurrent ShardPool::dispatch calls on one pool"
        );
        {
            // SAFETY (lifetime erasure): the pointer is only dereferenced by
            // workers between this publication and the `outstanding == 0`
            // wait below, during which `body` is borrowed by `self`.
            let erased: &'static (dyn Fn(usize) + Sync) =
                unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(body) };
            let mut st = self.state();
            st.task = Some(ShardTask(erased));
            st.generation += 1;
            st.outstanding = self.shards - 1;
        }
        self.work_ready.notify_all();
        // AssertUnwindSafe: as in the single-shard path above.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(0)));
        let mut st = self.state();
        while st.outstanding > 0 {
            st = self
                .work_done
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.task = None;
        let worker_panic = st.panic.take();
        drop(st);
        self.dispatching.store(false, Ordering::Release);
        if let Err(payload) = own {
            return Err((0, payload));
        }
        if let Some((shard, payload)) = worker_panic {
            return Err((shard, payload));
        }
        Ok(())
    }

    fn worker_loop(&self, shard: usize) {
        let mut seen = 0u64;
        loop {
            let task = {
                let mut st = self.state();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.generation != seen {
                        seen = st.generation;
                        break st.task.as_ref().expect("generation without task").0;
                    }
                    st = self
                        .work_ready
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            // SAFETY: `dispatch_inner` blocks until `outstanding` drops to
            // zero, so the closure behind the pointer is still alive. The
            // panic guard keeps that true on the unwinding path too: a
            // panicking shard still decrements `outstanding` (the payload is
            // reported to the dispatcher, never dropped on the floor).
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (*task)(shard)
            }));
            let mut st = self.state();
            if let Err(payload) = result {
                st.panic.get_or_insert((shard, payload));
            }
            st.outstanding -= 1;
            if st.outstanding == 0 {
                self.work_done.notify_one();
            }
        }
    }
}

/// A shard panic reported by [`ShardPool::try_dispatch`]: which shard blew
/// up, and what its panic said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// The panicking shard's index (0 is the dispatching thread itself).
    pub shard: usize,
    /// The rendered panic message.
    pub message: String,
}

impl fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} panicked: {}", self.shard, self.message)
    }
}

impl std::error::Error for ShardPanic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let runner = BatchRunner::new(4);
        let out = runner.run((0..100usize).collect(), |i, job| {
            assert_eq!(i, job);
            job * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let runner = BatchRunner::new(1);
        let id = std::thread::current().id();
        let out = runner.run(vec![(); 4], |i, ()| {
            assert_eq!(std::thread::current().id(), id);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let compute = |_, seed: u64| {
            // A little seed-dependent arithmetic standing in for a trial.
            let mut x = seed;
            for _ in 0..10 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        };
        let jobs: Vec<u64> = (0..33).map(|i| job_seed(7, i)).collect();
        let serial = BatchRunner::new(1).run(jobs.clone(), compute);
        for workers in [2, 3, 8, 64] {
            assert_eq!(BatchRunner::new(workers).run(jobs.clone(), compute), serial);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u8> = BatchRunner::new(8).run(Vec::<u8>::new(), |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamp_to_one() {
        assert_eq!(BatchRunner::new(0).workers(), 1);
    }

    #[test]
    fn job_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..64).map(|i| job_seed(1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| job_seed(1, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "job seeds collide");
        assert!(a.iter().all(|&s| s != job_seed(2, 0)));
    }

    #[test]
    fn shard_pool_runs_every_shard_exactly_once_per_dispatch() {
        use std::sync::atomic::AtomicU32;
        for shards in [1usize, 2, 3, 8] {
            ShardPool::with(shards, |pool| {
                assert_eq!(pool.shards(), shards);
                let hits: Vec<AtomicU32> = (0..shards).map(|_| AtomicU32::new(0)).collect();
                for _ in 0..50 {
                    pool.dispatch(&|s| {
                        hits[s].fetch_add(1, Ordering::Relaxed);
                    });
                }
                for (s, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 50, "shard {s}");
                }
            });
        }
    }

    #[test]
    fn shard_pool_dispatch_borrows_caller_stack() {
        // Disjoint writes into a stack buffer through the shared body: the
        // dispatch barrier makes the borrow sound and the result visible.
        let mut buf = vec![0u64; 97];
        let n = buf.len();
        ShardPool::with(4, |pool| {
            let base = buf.as_mut_ptr() as usize;
            pool.dispatch(&|s| {
                let lo = n * s / 4;
                let hi = n * (s + 1) / 4;
                for i in lo..hi {
                    // SAFETY: shards cover disjoint index ranges.
                    unsafe { *(base as *mut u64).add(i) = i as u64 + 1 };
                }
            });
        });
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn shard_pool_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            ShardPool::with(4, |pool| {
                pool.dispatch(&|s| {
                    if s == 2 {
                        panic!("shard boom");
                    }
                });
                // The pool stays usable for later generations even though a
                // shard of the previous dispatch panicked.
            });
        });
        assert!(result.is_err(), "worker panic was swallowed");
    }

    #[test]
    fn shard_pool_holds_the_barrier_when_shard_zero_panics() {
        use std::sync::atomic::AtomicU32;
        let finished = AtomicU32::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ShardPool::with(3, |pool| {
                pool.dispatch(&|s| {
                    if s == 0 {
                        panic!("caller boom");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "caller panic was swallowed");
        // Every worker shard ran to completion before the panic propagated:
        // the all-shards barrier must hold on the unwinding path too, or
        // workers would race a dead stack frame.
        assert_eq!(finished.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_faulty_with_transient_faults_matches_the_plain_run() {
        use std::sync::atomic::AtomicU32;
        let runner = BatchRunner::new(4);
        let jobs: Vec<u64> = (0..40).map(|i| job_seed(9, i)).collect();
        let clean = runner.run(jobs.clone(), |i, seed| (i as u64).wrapping_mul(seed));
        // Every third job panics on its first attempt; the retry re-derives
        // the identical inputs, so the report must be bit-identical to the
        // clean sweep.
        let first_attempts = AtomicU32::new(0);
        let report = runner.run_faulty(jobs, RetryPolicy::attempts(2), |i, attempt, seed| {
            if i % 3 == 0 && attempt == 1 {
                first_attempts.fetch_add(1, Ordering::Relaxed);
                panic!("transient fault");
            }
            (i as u64).wrapping_mul(*seed)
        });
        assert!(report.is_clean());
        assert_eq!(first_attempts.load(Ordering::Relaxed), 14);
        assert_eq!(report.into_results().unwrap(), clean);
    }

    #[test]
    fn run_faulty_quarantines_persistent_failures_without_losing_the_rest() {
        let runner = BatchRunner::new(3);
        let report = runner.run_faulty(
            (0..10usize).collect(),
            RetryPolicy::attempts(3),
            |_, _, job| {
                if *job == 4 {
                    panic!("job four is cursed");
                }
                job * 10
            },
        );
        assert!(!report.is_clean());
        let failures: Vec<_> = report.failures().cloned().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 4);
        assert_eq!(failures[0].attempts, 3);
        assert_eq!(failures[0].message, "job four is cursed");
        assert!(failures[0].to_string().contains("failed all 3 attempts"));
        // Every other job is untouched, in order.
        let ok: Vec<_> = report
            .outcomes()
            .iter()
            .filter_map(JobOutcome::as_ok)
            .copied()
            .collect();
        assert_eq!(ok, vec![0, 10, 20, 30, 50, 60, 70, 80, 90]);
        assert_eq!(report.into_results().unwrap_err(), failures);
    }

    #[test]
    fn retry_policy_clamps_and_defaults() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts(), 1);
        assert_eq!(RetryPolicy::none().max_attempts(), 1);
        assert_eq!(RetryPolicy::default().max_attempts(), 3);
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("literal message")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "literal message");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }

    #[test]
    fn try_dispatch_attributes_the_panicking_shard() {
        ShardPool::with(4, |pool| {
            let err = pool
                .try_dispatch(&|s| {
                    if s == 2 {
                        panic!("shard two boom");
                    }
                })
                .unwrap_err();
            assert_eq!(
                err,
                ShardPanic {
                    shard: 2,
                    message: "shard two boom".to_string(),
                }
            );
            assert_eq!(err.to_string(), "shard 2 panicked: shard two boom");
            // The pool is still usable after a reported panic.
            pool.try_dispatch(&|_| {}).unwrap();
            pool.dispatch(&|_| {});
        });
    }

    #[test]
    fn try_dispatch_reports_inline_shard_zero_panics() {
        ShardPool::with(1, |pool| {
            let err = pool.try_dispatch(&|_| panic!("inline boom")).unwrap_err();
            assert_eq!(err.shard, 0);
            assert_eq!(err.message, "inline boom");
            pool.try_dispatch(&|_| {}).unwrap();
        });
    }

    #[test]
    fn shard_pool_zero_clamps_to_one_inline_shard() {
        let id = std::thread::current().id();
        ShardPool::with(0, |pool| {
            assert_eq!(pool.shards(), 1);
            pool.dispatch(&|s| {
                assert_eq!(s, 0);
                assert_eq!(std::thread::current().id(), id);
            });
        });
    }

    /// The only test that touches the process-global round-thread override
    /// (a second one would race it across test threads); also covers
    /// `Threads::from_env`, which reads the same global.
    #[test]
    fn round_threads_default_is_serial() {
        use crate::Threads;
        set_round_threads(0);
        if std::env::var_os("POPSTAB_ROUND_THREADS").is_none() {
            assert_eq!(round_threads(), 1);
            assert_eq!(Threads::from_env(), Threads::Serial);
        }
        set_round_threads(5);
        assert_eq!(round_threads(), 5);
        assert_eq!(Threads::from_env(), Threads::Sharded(5));
        set_round_threads(0);
    }

    /// Coin-flip splitter/dier: every round each agent splits or dies on a
    /// fair draw, so the trajectory is maximally seed-sensitive — exactly
    /// what fork-divergence tests need.
    #[derive(Debug, Clone, Copy)]
    struct Drift;
    #[derive(Debug, Clone)]
    struct DriftState;
    impl crate::Observable for DriftState {
        fn observe(&self) -> crate::Observation {
            crate::Observation::default()
        }
    }
    impl crate::snapshot::SnapshotState for DriftState {
        fn state_tag() -> String {
            "drift-test".to_string()
        }
        fn encode(&self, _out: &mut Vec<u8>) {}
        fn decode(
            _r: &mut crate::snapshot::SnapshotReader<'_>,
        ) -> Result<Self, crate::snapshot::SnapshotError> {
            Ok(DriftState)
        }
    }
    impl Protocol for Drift {
        type State = DriftState;
        type Message = ();
        fn initial_state(&self, _rng: &mut crate::SimRng) -> DriftState {
            DriftState
        }
        fn message(&self, _s: &DriftState) {}
        fn step(
            &self,
            _s: &mut DriftState,
            _m: Option<&()>,
            rng: &mut crate::SimRng,
        ) -> crate::Action {
            use rand::Rng;
            if rng.random_bool(0.5) {
                crate::Action::Split
            } else {
                crate::Action::Die
            }
        }
    }

    fn drift_scenario() -> Scenario<Drift> {
        let cfg = SimConfig::builder().seed(0xF0_4B).build().unwrap();
        Scenario::new(Drift, cfg, 64)
    }

    fn trace_of<A: Adversary<DriftState>>(
        engine: &mut Engine<Drift, A>,
        rounds: u64,
    ) -> Vec<RoundReport> {
        let mut trace = Vec::new();
        engine.run(
            RunSpec::rounds(rounds),
            &mut crate::OnRound(|r: &RoundReport| trace.push(*r)),
        );
        trace
    }

    #[test]
    fn fork_identity_branch_reproduces_the_straight_line_run() {
        let mut straight = drift_scenario().engine();
        let full = trace_of(&mut straight, 20);

        let branches = vec![ForkBranch::new(0, NoOpAdversary)];
        let tails = drift_scenario().fork(7, branches, &BatchRunner::new(1), |_, mut engine| {
            (trace_of(&mut engine, 13), engine.population())
        });
        let (tail, final_pop) = &tails[0];
        assert_eq!(&full[7..], &tail[..]);
        assert_eq!(*final_pop, straight.population());
    }

    #[test]
    fn fork_branches_are_worker_count_invariant_and_salts_diverge() {
        let branches = || -> Vec<_> {
            (0..4u64)
                .map(|s| ForkBranch::new(s, NoOpAdversary))
                .collect()
        };
        let run = |workers| {
            drift_scenario().fork(
                5,
                branches(),
                &BatchRunner::new(workers),
                |_, mut engine| trace_of(&mut engine, 10),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(3));
        // Salted branches decorrelate from the unperturbed future.
        assert_ne!(serial[0], serial[1]);
        assert_ne!(serial[1], serial[2]);
    }

    #[test]
    fn fork_budget_override_rearms_the_adversary() {
        struct Nibbler;
        impl Adversary<DriftState> for Nibbler {
            fn name(&self) -> &'static str {
                "nibbler"
            }
            fn act(
                &mut self,
                _c: &crate::RoundContext,
                agents: &[DriftState],
                _r: &mut crate::SimRng,
            ) -> Vec<crate::Alteration<DriftState>> {
                (0..agents.len().min(8))
                    .map(crate::Alteration::Delete)
                    .collect()
            }
        }
        // The prefix config has budget 0; one branch re-arms it to 8.
        // Heterogeneous adversaries per branch go through `Box<dyn …>`.
        type Boxed = Box<dyn Adversary<DriftState> + Send>;
        let branches = vec![
            ForkBranch::new(0, Box::new(NoOpAdversary) as Boxed),
            ForkBranch::new(0, Box::new(Nibbler) as Boxed).budget(8),
        ];
        let deleted = drift_scenario().fork(3, branches, &BatchRunner::new(2), |_, mut engine| {
            let trace = trace_of(&mut engine, 6);
            trace.iter().map(|r| r.deleted).sum::<usize>()
        });
        assert_eq!(deleted[0], 0, "no-op branch must not delete");
        assert!(deleted[1] > 0, "re-armed deleter branch must delete");
    }

    #[test]
    fn explicit_default_jobs_override_wins() {
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        assert_eq!(BatchRunner::from_env().workers(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
