//! Struct-of-arrays (columnar) execution of the engine's step phase.
//!
//! The scalar step phase walks `Vec<P::State>` one agent at a time:
//! compose the partner's message, key a [`slot_rng`](crate::rng::slot_rng),
//! call [`Protocol::step`]. That layout streams the whole agent vector
//! through the cache every round and re-derives per-agent control flow
//! that is identical across almost every agent. A protocol can opt in to
//! a columnar twin of its step function via [`ColumnarProtocol`]: agent
//! state lives transposed in contiguous columns (`Vec<u32>`/`Vec<u64>`
//! words, packed [`BitCol`] bitmasks) and the round's transition runs as
//! word-at-a-time kernels over 64-agent blocks, batching coin draws with
//! the `_x8` kernels in [`rng`](crate::rng).
//!
//! # Residency: who owns the state
//!
//! A [`ColumnarStep`] is a *second representation* of the population, and
//! the engine tracks which side is current. [`ColumnarStep::load`]
//! transposes `Vec<P::State>` into the columns; [`ColumnarStep::step`]
//! and [`ColumnarStep::apply`] then advance the columns round after round
//! **without touching the vector**; [`ColumnarStep::store`] transposes
//! back on demand. On the recording-free fast path (`()` observer, no-op
//! adversary) the engine loads once, keeps the columns resident for the
//! whole run, and stores once at the end — the per-round traffic drops
//! from two streams over 24-byte structs to a handful of compact columns.
//! Whenever something needs the vector (a recording observer, a real
//! adversary, a snapshot), the engine materializes it first; whenever
//! something mutates the vector, the engine reloads the columns before
//! the next step. See [`Engine`](crate::Engine) for the exact gating
//! ([`Observer::needs_engine_state`](crate::Observer::needs_engine_state),
//! [`Adversary::is_noop`](crate::Adversary::is_noop)).
//!
//! # Determinism contract
//!
//! The columnar path is an *evaluation batching* change only: it must
//! consume exactly the draw positions the scalar path would consume for
//! every agent whose behavior is observable (draws are counter-addressable,
//! so batching cannot reorder them), and a `store` after any number of
//! resident rounds must leave `Vec<P::State>`, the split/death lists, and
//! therefore traces, snapshots (format v2) and golden fixtures
//! bit-identical to the scalar path. Engines expose
//! [`set_columnar`](crate::Engine::set_columnar) so equivalence tests can
//! pin the two paths against each other; `tests/columnar_equivalence.rs`
//! does exactly that over random `(seed, rounds, workers)`.

use std::fmt;

use crate::agent::Protocol;
use crate::batch::ShardPool;

/// A protocol's columnar state store and step-phase executor, as installed
/// into an engine.
///
/// One value lives inside each engine (carrying the column buffers across
/// rounds, so steady-state rounds allocate nothing). The engine drives it
/// through a load → (step → apply)* → store lifecycle; implementations
/// must uphold the module-level determinism contract at every `store`
/// point.
///
/// `Debug` keeps `Engine`'s derive working; `Send` lets engines holding a
/// stepper migrate across [`BatchRunner`](crate::BatchRunner) workers.
pub trait ColumnarStep<S>: fmt::Debug + Send {
    /// Transposes `agents` into the columns, making them authoritative.
    /// Called by the engine whenever the vector was mutated behind the
    /// columns' back (initial round, adversary alterations, restores).
    ///
    /// `pool` is `Some` when the engine runs its sharded round path; the
    /// transpose may fan out across [`dispatch`](ShardPool::dispatch), but
    /// the result must not depend on the shard count.
    fn load(&mut self, agents: &[S], pool: Option<&ShardPool>);

    /// Runs one step phase over the resident columns (which must be
    /// current, i.e. `load` or a previous `step`/`apply` produced them).
    ///
    /// `partners[i]` is agent `i`'s partner slot this round, or
    /// [`UNMATCHED`](crate::matching::UNMATCHED); `round_key` is the
    /// engine's per-round agent-stream key (agent `i` draws from
    /// [`slot_rng`](crate::rng::slot_rng)`(round_key, i)`). Split and death
    /// slots must be pushed exactly as the scalar loop pushes them:
    /// ascending slot order (the engine applies splits in push order).
    fn step(
        &mut self,
        partners: &[u32],
        round_key: u64,
        pool: Option<&ShardPool>,
        splits: &mut Vec<usize>,
        deaths: &mut Vec<usize>,
    );

    /// Applies the round's splits and deaths to the columns, mirroring the
    /// engine's vector semantics exactly: daughters are appended in
    /// `splits` order (each a copy of its post-step parent), then `deaths`
    /// (sorted ascending, deduplicated by the engine) are swap-removed in
    /// descending order.
    fn apply(&mut self, splits: &[usize], deaths: &[usize]);

    /// Transposes the columns back into `agents` (clearing it first),
    /// reproducing byte for byte the vector the scalar path would hold
    /// after the same rounds.
    fn store(&self, agents: &mut Vec<S>);

    /// Current population held in the columns.
    fn len(&self) -> usize;

    /// Whether the resident population is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the stepper's column buffers, for the
    /// bench harness's `mem_bytes_per_agent` accounting. Default 0 for
    /// steppers without retained buffers.
    fn mem_bytes(&self) -> usize {
        0
    }
}

/// Opt-in trait for protocols with a columnar step-phase twin.
///
/// Implementing this (plus overriding [`Protocol::columnar`] to call
/// [`columnar_box`]) switches every engine running the protocol onto the
/// columnar path; nothing else about the protocol, the observer surface,
/// or the snapshot format changes.
pub trait ColumnarProtocol: Protocol {
    /// The stepper type carrying this protocol's column buffers.
    type Columns: ColumnarStep<Self::State> + 'static;

    /// Builds a fresh stepper (empty buffers; sized lazily per round).
    fn columns(&self) -> Self::Columns;
}

/// Boxes a [`ColumnarProtocol`]'s stepper for [`Protocol::columnar`] — the
/// one-line body of the override:
///
/// ```ignore
/// fn columnar(&self) -> Option<Box<dyn ColumnarStep<Self::State>>> {
///     popstab_sim::columns::columnar_box(self)
/// }
/// ```
pub fn columnar_box<P: ColumnarProtocol>(protocol: &P) -> Option<Box<dyn ColumnarStep<P::State>>> {
    Some(Box::new(protocol.columns()))
}

/// A packed bit column: bit `i % 64` of word `i / 64` holds agent `i`'s
/// flag. The unit of kernel work is one 64-agent word; loaders write whole
/// words (tail bits zero), so resizing never needs to clear.
#[derive(Debug, Clone, Default)]
pub struct BitCol {
    words: Vec<u64>,
}

impl BitCol {
    /// Resizes to `words` words. Contents are unspecified — every loader
    /// writes each word in full before kernels read it, so no clearing.
    #[inline]
    pub fn resize_words(&mut self, words: usize) {
        self.words.resize(words, 0);
    }

    /// The packed words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The packed words, mutably.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        let word = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Retained capacity in bytes, for memory accounting.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// The mask selecting the live low `lanes` bits of a word (`lanes ≤ 64`);
/// kernels use it to keep a population tail's dead high bits zero.
#[inline]
pub fn tail_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// The *word* range shard `s` of `nshards` owns over `n_words` bitmask
/// words: contiguous, disjoint, covering `0..n_words`, balanced to within
/// one word. Sharding on word boundaries means no two shards ever touch
/// the same `u64` of a [`BitCol`], so the per-shard column writes of a
/// pooled [`ColumnarStep`] are disjoint by construction.
#[inline]
pub fn word_shard_range(n_words: usize, nshards: usize, s: usize) -> (usize, usize) {
    crate::batch::shard_range(n_words, nshards, s)
}

/// A raw pointer that may cross thread boundaries: the public twin of the
/// engine's internal shard pointer, for [`ColumnarStep`] implementations
/// that fan their column passes out over a [`ShardPool`]. Every
/// dereference site must document why its accesses are disjoint across
/// shards (word-aligned ranges from [`word_shard_range`] make that
/// argument structural).
pub struct ColPtr<T>(*mut T);

impl<T> ColPtr<T> {
    /// Wraps a raw pointer for cross-shard use.
    #[inline]
    pub fn new(ptr: *mut T) -> Self {
        ColPtr(ptr)
    }

    /// The wrapped pointer. A method (not field access) so closures capture
    /// the `ColPtr` itself — edition-2021 disjoint capture would otherwise
    /// grab the bare `*mut T` field, which is not `Sync`.
    #[inline]
    pub fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for ColPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ColPtr<T> {}

impl<T> fmt::Debug for ColPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ColPtr({:p})", self.0)
    }
}

// SAFETY: dereferencing is the caller's responsibility (each unsafe block
// at the use sites states its disjointness argument); the pointer value
// itself is freely copyable across threads.
unsafe impl<T> Send for ColPtr<T> {}
// SAFETY: shared references to the wrapper expose only the raw pointer
// value, never the pointee — same argument as `Send` above.
unsafe impl<T> Sync for ColPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcol_set_get_roundtrip() {
        let mut col = BitCol::default();
        col.resize_words(3);
        col.words_mut().fill(0);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 170] {
            assert!(!col.get(i));
            col.set(i, true);
            assert!(col.get(i));
        }
        col.set(64, false);
        assert!(!col.get(64));
        assert!(col.get(65), "clearing one bit must not touch neighbors");
    }

    #[test]
    fn tail_mask_covers_exact_lane_counts() {
        assert_eq!(tail_mask(0), 0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(63), u64::MAX >> 1);
        assert_eq!(tail_mask(64), u64::MAX);
    }

    #[test]
    fn word_shard_ranges_partition_and_balance() {
        for n_words in [0usize, 1, 5, 64, 1000] {
            for nshards in [1usize, 2, 3, 7] {
                let mut next = 0;
                for s in 0..nshards {
                    let (lo, hi) = word_shard_range(n_words, nshards, s);
                    assert_eq!(lo, next, "gap at shard {s}");
                    assert!(hi - lo <= n_words / nshards + 1, "unbalanced shard {s}");
                    next = hi;
                }
                assert_eq!(next, n_words, "ranges must cover all words");
            }
        }
    }
}
