//! Engine configuration.

use crate::error::SimError;
use crate::matching::MatchingModel;

/// Configuration of a simulation run.
///
/// Construct with [`SimConfig::builder`]; all fields have sensible defaults
/// (full matching, no adversary budget, generous safety caps). Metrics
/// recording is not configured here: it is an observer concern — see
/// [`RecordStats`](crate::RecordStats).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// How the per-round random matching is sampled.
    pub matching: MatchingModel,
    /// Per-round adversary alteration budget `K`. The engine truncates any
    /// excess alterations an adversary returns.
    pub adversary_budget: usize,
    /// Master seed; all randomness (agents, matching, adversary) derives
    /// from it through independent streams.
    pub seed: u64,
    /// Safety cap: the engine halts with [`HaltReason::Exploded`] if the
    /// population exceeds this (protects runaway baselines).
    ///
    /// [`HaltReason::Exploded`]: crate::engine::HaltReason::Exploded
    pub max_population: usize,
    /// The population target `N` exposed to adversaries via
    /// [`RoundContext::target`](crate::RoundContext::target).
    pub target: u64,
}

impl SimConfig {
    /// Starts building a configuration.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::builder()
            .build()
            .expect("default config is valid")
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    matching: MatchingModel,
    adversary_budget: usize,
    seed: u64,
    max_population: usize,
    target: u64,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            matching: MatchingModel::Full,
            adversary_budget: 0,
            seed: 0,
            max_population: 1 << 28,
            target: 0,
        }
    }
}

impl SimConfigBuilder {
    /// Sets the matching model.
    pub fn matching(&mut self, model: MatchingModel) -> &mut Self {
        self.matching = model;
        self
    }

    /// Sets the per-round adversary budget `K`.
    pub fn adversary_budget(&mut self, k: usize) -> &mut Self {
        self.adversary_budget = k;
        self
    }

    /// Sets the master seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the runaway-population safety cap.
    pub fn max_population(&mut self, cap: usize) -> &mut Self {
        self.max_population = cap;
        self
    }

    /// Sets the population target `N` exposed to adversaries.
    pub fn target(&mut self, n: u64) -> &mut Self {
        self.target = n;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the matching fraction is out of
    /// range or the cap is zero.
    pub fn build(&self) -> Result<SimConfig, SimError> {
        self.matching.validate()?;
        if self.max_population == 0 {
            return Err(SimError::invalid_config(
                "max_population",
                "must be positive",
            ));
        }
        Ok(SimConfig {
            matching: self.matching,
            adversary_budget: self.adversary_budget,
            seed: self.seed,
            max_population: self.max_population,
            target: self.target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.adversary_budget, 0);
        assert_eq!(cfg.matching, MatchingModel::Full);
        assert_eq!(cfg.target, 0);
    }

    #[test]
    fn builder_sets_all_fields() {
        let cfg = SimConfig::builder()
            .matching(MatchingModel::ExactFraction(0.25))
            .adversary_budget(7)
            .seed(99)
            .max_population(1000)
            .target(512)
            .build()
            .unwrap();
        assert_eq!(cfg.matching, MatchingModel::ExactFraction(0.25));
        assert_eq!(cfg.adversary_budget, 7);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.max_population, 1000);
        assert_eq!(cfg.target, 512);
    }

    #[test]
    fn builder_rejects_invalid_gamma() {
        let err = SimConfig::builder()
            .matching(MatchingModel::ExactFraction(2.0))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn builder_rejects_zero_cap() {
        assert!(SimConfig::builder().max_population(0).build().is_err());
    }
}
