//! The unified run driver: [`RunSpec`] + composable [`Observer`]s.
//!
//! Until PR 5 the engine had grown eight near-duplicate entry points
//! (`run_round`, `run_rounds`, `run_until`, `run_range`, `run_epochs`,
//! `par_round`, `run_rounds_par`, `run_until_par`) plus two recording side
//! channels (`set_recording`, `SimConfig::metrics_phase`). They all ran the
//! same round loop and differed only along three orthogonal axes, which this
//! module makes explicit:
//!
//! * **when to stop** — [`Stop`]: a fixed round count, a per-round
//!   predicate, or an epoch grid,
//! * **who executes a round** — [`Threads`]: the serial loop or the
//!   intra-round [`ShardPool`](crate::batch::ShardPool) sharding,
//! * **what to observe** — [`Observer`]: anything from the zero-cost `()`
//!   to a [`RecordStats`] metrics adapter, composed with [`Stride`] /
//!   [`Tee`] / [`OnRound`].
//!
//! [`Engine::run`](crate::Engine::run) takes one [`RunSpec`] and one
//! observer and returns a [`RunOutcome`]. Everything is monomorphized: with
//! the `()` observer the driver compiles to exactly the old recording-free
//! fast path (the golden fixtures under `tests/golden/` pin this byte for
//! byte), and by the engine's determinism contract `Threads::Serial` and
//! `Threads::Sharded(n)` produce identical trajectories for every `n`.
//!
//! # Example
//!
//! ```
//! use popstab_sim::{protocols::Inert, Engine, MetricsRecorder, RecordStats, RunSpec, SimConfig};
//!
//! let cfg = SimConfig::builder().seed(7).build().unwrap();
//! let mut engine = Engine::with_population(Inert, cfg, 64);
//!
//! // Fast path: no recording, nothing observed.
//! let outcome = engine.run(RunSpec::rounds(10), &mut ());
//! assert_eq!(outcome.executed, 10);
//! assert_eq!(outcome.population_range(), (64, 64));
//!
//! // Same trajectory, now recording stats every round into a recorder the
//! // caller owns.
//! let mut rec = MetricsRecorder::new();
//! engine.run(RunSpec::rounds(10), &mut RecordStats::new(&mut rec));
//! assert_eq!(rec.len(), 10);
//! ```

use std::collections::BTreeMap;

use crate::agent::Protocol;
use crate::config::SimConfig;
use crate::engine::{HaltReason, RoundReport};
use crate::metrics::{MetricsRecorder, RoundStats};

/// The predicate type of specs that never stop early ([`RunSpec::rounds`] /
/// [`RunSpec::epochs`]). A plain function pointer, so those constructors
/// need no generics at the call site.
pub type NoStop = fn(&RoundReport) -> bool;

/// When a run stops (in addition to the engine halting).
#[derive(Debug, Clone, Copy)]
pub enum Stop<F = NoStop> {
    /// Run exactly this many rounds.
    Rounds(u64),
    /// Run up to `max_rounds` rounds, stopping early when `stop` returns
    /// `true` for the round just executed.
    Until {
        /// Hard cap on executed rounds.
        max_rounds: u64,
        /// Early-exit predicate, evaluated after every round.
        stop: F,
    },
    /// Run `epochs × epoch_len` rounds. Purely descriptive sugar over
    /// [`Stop::Rounds`]: pair it with [`Stride::new`]`(epoch_len, …)` to
    /// observe epoch boundaries only.
    Epochs {
        /// Number of epochs.
        epochs: u64,
        /// Rounds per epoch.
        epoch_len: u64,
    },
}

/// How each round executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// The serial round loop.
    Serial,
    /// Shard the `O(population)` phases of every round (step scan, matching
    /// construction) across a persistent pool of this many workers. The
    /// trajectory is bit-identical to [`Threads::Serial`] for every worker
    /// count; worth it only when single rounds are large (the pool
    /// synchronizes twice per round).
    Sharded(usize),
}

impl Threads {
    /// The process-wide intra-round thread configuration: `Sharded(n)` when
    /// `--round-threads`/`POPSTAB_ROUND_THREADS` asked for `n > 1` workers
    /// (see [`crate::batch::round_threads`]), else `Serial`.
    pub fn from_env() -> Threads {
        match crate::batch::round_threads() {
            0 | 1 => Threads::Serial,
            n => Threads::Sharded(n),
        }
    }

    /// Collapses the degenerate sharded configurations: `Sharded(0)` and
    /// `Sharded(1)` describe the same trajectory as [`Threads::Serial`]
    /// (the determinism contract) but would execute through the sharded
    /// round body's reserve/merge machinery. [`Engine::run`](crate::Engine::run)
    /// dispatches on the normalized value, matching
    /// the normalization [`Threads::from_env`] applies to the environment.
    #[must_use]
    pub fn normalized(self) -> Threads {
        match self {
            Threads::Sharded(0 | 1) => Threads::Serial,
            other => other,
        }
    }
}

/// A declarative description of one [`Engine::run`](crate::Engine::run)
/// call: stop condition plus thread configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec<F = NoStop> {
    /// When to stop.
    pub stop: Stop<F>,
    /// How rounds execute.
    pub threads: Threads,
}

impl RunSpec<NoStop> {
    /// Runs exactly `n` rounds (fewer if the engine halts), serially.
    pub fn rounds(n: u64) -> RunSpec {
        RunSpec {
            stop: Stop::Rounds(n),
            threads: Threads::Serial,
        }
    }

    /// Runs `epochs` epochs of `epoch_len` rounds each, serially.
    pub fn epochs(epochs: u64, epoch_len: u64) -> RunSpec {
        RunSpec {
            stop: Stop::Epochs { epochs, epoch_len },
            threads: Threads::Serial,
        }
    }
}

impl<F: FnMut(&RoundReport) -> bool> RunSpec<F> {
    /// Runs up to `max_rounds` rounds, stopping early when `stop` returns
    /// `true` for the round just executed.
    pub fn until(max_rounds: u64, stop: F) -> RunSpec<F> {
        RunSpec {
            stop: Stop::Until { max_rounds, stop },
            threads: Threads::Serial,
        }
    }

    /// Sets the thread configuration.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Shards every round over `workers` threads
    /// ([`Threads::Sharded`]; `0` is clamped to 1).
    pub fn sharded(self, workers: usize) -> Self {
        self.threads(Threads::Sharded(workers.max(1)))
    }

    /// Total rounds this spec may execute.
    pub(crate) fn max_rounds(&self) -> u64 {
        match self.stop {
            Stop::Rounds(n) => n,
            Stop::Until { max_rounds, .. } => max_rounds,
            Stop::Epochs { epochs, epoch_len } => epochs.saturating_mul(epoch_len),
        }
    }
}

/// What one [`Engine::run`](crate::Engine::run) call did.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Rounds actually executed.
    pub executed: u64,
    /// Why the engine halted, if it did.
    pub halted: Option<HaltReason>,
    /// Whether a [`Stop::Until`] predicate ended the run early.
    pub stopped_early: bool,
    /// Report of the last executed round; an inert snapshot of the current
    /// state if no round executed (halted engine or a zero-round spec).
    pub last: RoundReport,
    /// Smallest post-round population over the executed rounds (the current
    /// population if none executed).
    pub min_population: usize,
    /// Largest post-round population over the executed rounds (the current
    /// population if none executed).
    pub max_population: usize,
}

impl RunOutcome {
    /// The `(min, max)` population band of the run — what the stability
    /// suites assert on (the old `Engine::run_range`, folded into every
    /// outcome at `O(1)` per round).
    pub fn population_range(&self) -> (usize, usize) {
        (self.min_population, self.max_population)
    }
}

/// A read-only snapshot of the engine handed to observers after each round.
#[derive(Debug)]
pub struct EngineView<'a, P: Protocol> {
    pub(crate) agents: &'a [P::State],
    pub(crate) round: u64,
    pub(crate) halted: Option<HaltReason>,
    pub(crate) config: &'a SimConfig,
    pub(crate) adv_rng_state: u64,
}

impl<'a, P: Protocol> EngineView<'a, P> {
    /// All agent states, post-round.
    pub fn agents(&self) -> &'a [P::State] {
        self.agents
    }

    /// Population size, post-round.
    pub fn population(&self) -> usize {
        self.agents.len()
    }

    /// Rounds executed so far (the *next* round number).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether the round just executed halted the engine.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// The engine's configuration.
    pub fn config(&self) -> &'a SimConfig {
        self.config
    }

    /// The raw post-round position of the engine-owned adversary RNG
    /// stream — together with [`agents`](Self::agents), [`round`](Self::round)
    /// and [`config`](Self::config) this is everything the engine's future
    /// depends on, which is what lets [`EngineView::snapshot`] (and thus
    /// the [`Checkpoint`](crate::Checkpoint) combinator) checkpoint a run
    /// from inside an observer.
    pub fn adv_rng_state(&self) -> u64 {
        self.adv_rng_state
    }
}

/// Something that watches a run, one callback per executed round.
///
/// Observers compose ([`Stride`], [`Tee`], [`OnRound`], [`RecordStats`])
/// and are monomorphized into the round loop: the `()` implementation
/// compiles away entirely, so the recording-free fast path pays nothing for
/// the abstraction. Observers see the engine *after* the round's splits and
/// deaths were applied; they cannot perturb the trajectory (the
/// `stride_and_tee_observers_do_not_perturb_the_run` property test pins
/// this).
pub trait Observer<P: Protocol> {
    /// Called once after every executed round.
    fn on_round(&mut self, report: &RoundReport, view: &EngineView<'_, P>);

    /// Whether this observer reads the agent state slice
    /// ([`EngineView::agents`]) from its callback. Defaults to `true` —
    /// engines running a columnar protocol then materialize
    /// `Vec<P::State>` from the resident columns before every callback, so
    /// third-party observers stay correct unexamined. Observers that only
    /// read the [`RoundReport`] (like [`OnRound`] and `()`) return `false`,
    /// keeping the columns resident across rounds; combinators delegate to
    /// what they wrap. Queried once per run, before the first round.
    fn needs_engine_state(&self) -> bool {
        true
    }
}

/// The zero-cost null observer.
impl<P: Protocol> Observer<P> for () {
    #[inline(always)]
    fn on_round(&mut self, _report: &RoundReport, _view: &EngineView<'_, P>) {}

    fn needs_engine_state(&self) -> bool {
        false
    }
}

/// Mutable references forward, so observers can be reused across runs.
impl<P: Protocol, O: Observer<P>> Observer<P> for &mut O {
    #[inline]
    fn on_round(&mut self, report: &RoundReport, view: &EngineView<'_, P>) {
        (**self).on_round(report, view);
    }

    fn needs_engine_state(&self) -> bool {
        (**self).needs_engine_state()
    }
}

/// Forwards every `every`-th round to the inner observer (rounds
/// `every, 2·every, …` of this run) — e.g. epoch boundaries when `every`
/// is the epoch length.
#[derive(Debug)]
pub struct Stride<O> {
    every: u64,
    seen: u64,
    inner: O,
}

impl<O> Stride<O> {
    /// Forwards one round in `every` (`0` is clamped to 1) to `inner`.
    pub fn new(every: u64, inner: O) -> Stride<O> {
        Stride {
            every: every.max(1),
            seen: 0,
            inner,
        }
    }

    /// The wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<P: Protocol, O: Observer<P>> Observer<P> for Stride<O> {
    #[inline]
    fn on_round(&mut self, report: &RoundReport, view: &EngineView<'_, P>) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.inner.on_round(report, view);
        }
    }

    fn needs_engine_state(&self) -> bool {
        self.inner.needs_engine_state()
    }
}

/// Forwards every round to both observers, `a` first.
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A, B> Tee<A, B> {
    /// Combines two observers.
    pub fn new(a: A, b: B) -> Tee<A, B> {
        Tee(a, b)
    }
}

impl<P: Protocol, A: Observer<P>, B: Observer<P>> Observer<P> for Tee<A, B> {
    #[inline]
    fn on_round(&mut self, report: &RoundReport, view: &EngineView<'_, P>) {
        self.0.on_round(report, view);
        self.1.on_round(report, view);
    }

    fn needs_engine_state(&self) -> bool {
        self.0.needs_engine_state() || self.1.needs_engine_state()
    }
}

/// Adapts a closure over the per-round report into an observer (e.g. to
/// collect a trace while a [`Stop::Rounds`] spec runs).
#[derive(Debug)]
pub struct OnRound<F>(pub F);

impl<P: Protocol, F: FnMut(&RoundReport)> Observer<P> for OnRound<F> {
    #[inline]
    fn on_round(&mut self, report: &RoundReport, _view: &EngineView<'_, P>) {
        (self.0)(report);
    }

    fn needs_engine_state(&self) -> bool {
        false
    }
}

/// The [`MetricsRecorder`] adapter: observes the population and records one
/// [`RoundStats`] per selected round.
///
/// This subsumes the engine's former built-in recording
/// (`Engine::set_recording` / `SimConfig::metrics_every` /
/// `SimConfig::metrics_phase`): the recorder now lives with the caller, and
/// the stride is part of the observer. [`RecordStats::new`] records every
/// round; [`RecordStats::stride`] reproduces the old config stride —
/// a round is recorded when `rounds_executed % every == phase` (counting
/// the engine's global round counter after the round) — plus any round
/// that ends in extinction, so a collapsing run always keeps its final
/// sample.
#[derive(Debug)]
pub struct RecordStats<'a> {
    rec: &'a mut MetricsRecorder,
    every: u64,
    phase: u64,
    /// Epoch-round histogram scratch, reused across recorded rounds
    /// (ordered so the majority tie-break is deterministic).
    counts: BTreeMap<u32, usize>,
}

impl<'a> RecordStats<'a> {
    /// Records every round into `rec`.
    pub fn new(rec: &'a mut MetricsRecorder) -> RecordStats<'a> {
        RecordStats::stride(rec, 1, 0)
    }

    /// Records the rounds where the engine's post-round global counter
    /// satisfies `round % every == phase`, plus extinction rounds.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero or `phase ≥ every`.
    pub fn stride(rec: &'a mut MetricsRecorder, every: u64, phase: u64) -> RecordStats<'a> {
        assert!(every > 0, "stride must be positive");
        assert!(
            phase < every,
            "phase {phase} must be smaller than the stride {every}"
        );
        RecordStats {
            rec,
            every,
            phase,
            counts: BTreeMap::new(),
        }
    }
}

impl<P: Protocol> Observer<P> for RecordStats<'_> {
    fn on_round(&mut self, report: &RoundReport, view: &EngineView<'_, P>) {
        if view.round() % self.every != self.phase && report.population_after != 0 {
            return;
        }
        let mut stats = RoundStats::observe_with(report.round, view.agents(), &mut self.counts);
        stats.splits = report.splits;
        stats.deaths = report.deaths;
        stats.adv_inserted = report.inserted;
        stats.adv_deleted = report.deleted;
        stats.adv_modified = report.modified;
        self.rec.record(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Engine;
    use crate::protocols::Inert;

    fn engine(seed: u64, n: usize) -> Engine<Inert> {
        let cfg = SimConfig::builder().seed(seed).build().unwrap();
        Engine::with_population(Inert, cfg, n)
    }

    #[test]
    fn stride_forwards_every_kth_round() {
        let mut hits = Vec::new();
        engine(1, 16).run(
            RunSpec::rounds(10),
            &mut Stride::new(3, OnRound(|r: &RoundReport| hits.push(r.round))),
        );
        assert_eq!(hits, vec![2, 5, 8]);
    }

    #[test]
    fn tee_forwards_to_both_in_order() {
        let mut log = Vec::new();
        {
            let log = std::cell::RefCell::new(&mut log);
            engine(2, 8).run(
                RunSpec::rounds(2),
                &mut Tee::new(
                    OnRound(|r: &RoundReport| log.borrow_mut().push(("a", r.round))),
                    OnRound(|r: &RoundReport| log.borrow_mut().push(("b", r.round))),
                ),
            );
        }
        assert_eq!(log, vec![("a", 0), ("b", 0), ("a", 1), ("b", 1)]);
    }

    #[test]
    fn record_stats_stride_matches_global_round_counter() {
        let mut rec = MetricsRecorder::new();
        let mut e = engine(3, 8);
        e.run(
            RunSpec::rounds(20),
            &mut RecordStats::stride(&mut rec, 5, 0),
        );
        assert_eq!(rec.len(), 4);
        assert_eq!(
            rec.rounds().iter().map(|s| s.round).collect::<Vec<_>>(),
            vec![4, 9, 14, 19]
        );
        // A later run continues the global stride rather than restarting it.
        e.run(RunSpec::rounds(5), &mut RecordStats::stride(&mut rec, 5, 0));
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.last().unwrap().round, 24);
    }

    #[test]
    #[should_panic(expected = "phase 5 must be smaller than the stride 5")]
    fn record_stats_rejects_phase_outside_stride() {
        let mut rec = MetricsRecorder::new();
        let _ = RecordStats::stride(&mut rec, 5, 5);
    }

    #[test]
    fn degenerate_sharded_configs_normalize_to_serial() {
        // `Sharded(0 | 1)` describes a serial trajectory; `Engine::run`
        // dispatches on the normalized value, so these take the serial
        // path — consistent with `Threads::from_env`'s treatment of
        // `POPSTAB_ROUND_THREADS={0,1}`.
        assert_eq!(Threads::Sharded(0).normalized(), Threads::Serial);
        assert_eq!(Threads::Sharded(1).normalized(), Threads::Serial);
        assert_eq!(Threads::Serial.normalized(), Threads::Serial);
        assert_eq!(Threads::Sharded(4).normalized(), Threads::Sharded(4));
    }

    // `Threads::from_env` is covered by `batch::tests::round_threads_default_is_serial`,
    // the one test that owns the process-global round-thread override — a
    // second test touching it here would race it across test threads.
}
