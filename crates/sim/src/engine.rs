//! The synchronous round engine.
//!
//! Round structure (matching §2 of the paper):
//!
//! 1. the **adversary** observes the full state of every agent and commits up
//!    to `K` alterations (insert / delete / modify),
//! 2. a random **matching** covering the configured fraction of the surviving
//!    agents is sampled (the adversary cannot see it in advance),
//! 3. matched agents simultaneously **exchange messages** composed from their
//!    pre-round states; every agent then **steps** once,
//! 4. **splits** and **deaths** decided during the step are applied.
//!
//! The engine is generic over the [`Protocol`] and the [`Adversary`] and
//! halts on extinction or population explosion (a safety cap for baselines
//! that are *supposed* to diverge).
//!
//! All execution goes through one generic driver, [`Engine::run`], which
//! takes a [`RunSpec`] (stop condition + thread configuration) and a
//! composable [`Observer`] (see [`crate::driver`]). Recording is an
//! observer concern ([`RecordStats`](crate::RecordStats)); the engine
//! itself holds no metrics.
//!
//! Agent randomness is **counter-based** (see [`crate::rng::counter_seed`]):
//! agent slot `s` in round `r` flips coins from a stateless stream keyed on
//! `(seed, r, s)`, so the step phase has no serial RNG dependency between
//! agents and can be sharded across threads
//! ([`Threads::Sharded`]) with results
//! bit-identical to the serial paths for every worker count. The matching
//! is counter-keyed the same way (see [`crate::matching`]): round `r`'s
//! pairs are a pure function of `round_key(match_key, r)`, and for large
//! populations their construction shards across the same pool as the step
//! phase.

use crate::adversary::{Adversary, Alteration, NoOpAdversary, RoundContext};
use crate::agent::{Action, Protocol};
use crate::batch::{shard_range, SendPtr, ShardPool};
use crate::columns::ColumnarStep;
use crate::config::SimConfig;
use crate::driver::{EngineView, Observer, RunOutcome, RunSpec, Stop, Threads};
use crate::matching::{sample_matching_into, sample_matching_into_par, Matching, UNMATCHED};
use crate::rng::{derive_seed, derive_stream, round_key, slot_rng, SimRng};
use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotState};

/// Why a run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// Every agent died or was deleted.
    Extinct,
    /// The population exceeded [`SimConfig::max_population`].
    Exploded,
}

/// Summary of a single executed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// Global round number of this report.
    pub round: u64,
    /// Population before the adversary acted.
    pub population_before: usize,
    /// Population after splits/deaths were applied.
    pub population_after: usize,
    /// Adversarial insertions applied.
    pub inserted: usize,
    /// Adversarial deletions applied.
    pub deleted: usize,
    /// Adversarial modifications applied.
    pub modified: usize,
    /// Agents matched this round (`2 ×` the sampled pairs). Pins the
    /// matching stream in golden traces even when no agent acts on its
    /// partner (an inert population's counts are otherwise invariant).
    pub matched: usize,
    /// Protocol splits this round.
    pub splits: usize,
    /// Protocol deaths this round.
    pub deaths: usize,
}

/// Persistent per-round working memory.
///
/// The engine's round loop needs several population-sized buffers (the
/// matching, the partner table, the simultaneous message snapshot, the
/// split/death work lists). Allocating them fresh every round dominated the
/// hot path at large `N`, so they live here and are reused; buffer reuse is
/// invisible to the simulation semantics (asserted round-for-round by the
/// `scratch_engine_matches_fresh_allocation_engine` property test and by the
/// golden-trace fixtures under `tests/golden/`).
#[derive(Debug)]
struct RoundScratch<M> {
    matching: Matching,
    shuffle: Vec<u32>,
    partners: Vec<u32>,
    messages: Vec<Option<M>>,
    splits: Vec<usize>,
    deaths: Vec<usize>,
    to_delete: Vec<usize>,
}

impl<M> Default for RoundScratch<M> {
    fn default() -> Self {
        RoundScratch {
            matching: Matching::default(),
            shuffle: Vec::new(),
            partners: Vec::new(),
            messages: Vec::new(),
            splits: Vec::new(),
            deaths: Vec::new(),
            to_delete: Vec::new(),
        }
    }
}

/// Per-shard output of the parallel step phase: the split/death work lists
/// one shard's slot range produced. Merged into the round scratch in shard
/// (= slot) order, so the merged lists match the serial step loop's.
#[derive(Debug, Default)]
struct StepShard {
    splits: Vec<usize>,
    deaths: Vec<usize>,
}

/// A running simulation: population, protocol, adversary, RNG streams.
#[derive(Debug)]
pub struct Engine<P: Protocol, A: Adversary<P::State> = NoOpAdversary> {
    protocol: P,
    adversary: A,
    cfg: SimConfig,
    agents: Vec<P::State>,
    round: u64,
    /// Master key of the counter-based agent randomness: agent `slot`'s
    /// coin flips in round `r` are `slot_rng(round_key(agent_key, r), slot)`
    /// — addressable per agent, independent of execution order.
    agent_key: u64,
    /// Master key of the counter-keyed matching stream: round `r`'s pairs
    /// are a pure function of `round_key(match_key, r)` — addressable per
    /// round, shardable within one (see [`crate::matching`]).
    match_key: u64,
    adv_rng: SimRng,
    halted: Option<HaltReason>,
    scratch: RoundScratch<P::Message>,
    /// The protocol's columnar state store, installed at construction when
    /// the protocol opts in ([`Protocol::columnar`]). `Some` switches
    /// [`phase_step_serial`](Self::phase_step_serial) and
    /// [`phase_step_parallel`](Self::phase_step_parallel) onto the
    /// struct-of-arrays path — bit-identical by the determinism contract of
    /// [`crate::columns`], so it is invisible to observers, adversaries,
    /// traces, and snapshots. The columns hold the population *resident*
    /// across rounds; the two flags below track which representation is
    /// current.
    columnar: Option<Box<dyn ColumnarStep<P::State>>>,
    /// Whether the stepper's columns mirror the authoritative population
    /// (a columnar step may run without re-transposing `agents`). Cleared
    /// whenever the vector is mutated behind the columns' back.
    cols_valid: bool,
    /// Whether `agents` is stale relative to the columns (a columnar step
    /// ran and nothing has materialized the vector since). Invariant:
    /// `vec_stale` implies `cols_valid` and `columnar.is_some()`; always
    /// false outside [`Engine::run`].
    vec_stale: bool,
}

impl<P: Protocol> Engine<P, NoOpAdversary> {
    /// Creates an engine with `population` fresh agents and no adversary.
    pub fn with_population(protocol: P, cfg: SimConfig, population: usize) -> Self {
        Engine::with_adversary(protocol, NoOpAdversary, cfg, population)
    }
}

impl<P: Protocol, A: Adversary<P::State>> Engine<P, A> {
    /// Creates an engine with `population` fresh agents and an adversary.
    pub fn with_adversary(protocol: P, adversary: A, cfg: SimConfig, population: usize) -> Self {
        // Initial states draw from a sequential stream (construction is not
        // a round and runs once); per-round agent flips use the counter key.
        let mut init_rng = derive_stream(cfg.seed, "agents");
        let agent_key = derive_seed(cfg.seed, "agent-counter");
        let match_key = derive_seed(cfg.seed, "matching");
        let adv_rng = derive_stream(cfg.seed, "adversary");
        let agents = (0..population)
            .map(|_| protocol.initial_state(&mut init_rng))
            .collect();
        let columnar = protocol.columnar();
        Engine {
            protocol,
            adversary,
            cfg,
            agents,
            round: 0,
            agent_key,
            match_key,
            adv_rng,
            halted: None,
            scratch: RoundScratch::default(),
            columnar,
            cols_valid: false,
            vec_stale: false,
        }
    }

    /// Current population size.
    pub fn population(&self) -> usize {
        self.live_population()
    }

    /// Read access to all agent states (what the adversary sees).
    pub fn agents(&self) -> &[P::State] {
        debug_assert!(
            !self.vec_stale,
            "agent vector read while stale (engine failed to materialize)"
        );
        &self.agents
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Why the engine halted, if it did.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Whether the step phase currently runs on the columnar
    /// (struct-of-arrays) path.
    pub fn columnar_enabled(&self) -> bool {
        self.columnar.is_some()
    }

    /// Enables or disables the columnar step path. It is on by default
    /// whenever the protocol opts in ([`Protocol::columnar`]); disabling
    /// forces the scalar [`Protocol::step`] loop. Both paths produce the
    /// same trajectory by the determinism contract of [`crate::columns`] —
    /// this switch exists so equivalence tests and benches can pin them
    /// against each other.
    pub fn set_columnar(&mut self, enabled: bool) {
        self.materialize();
        self.cols_valid = false;
        self.columnar = if enabled {
            self.protocol.columnar()
        } else {
            None
        };
    }

    /// Transposes the resident columns back into `agents` if a columnar
    /// step left the vector stale, restoring the `vec_stale == false`
    /// invariant every public accessor relies on.
    fn materialize(&mut self) {
        if self.vec_stale {
            let stepper = self
                .columnar
                .as_ref()
                .expect("stale vector implies a columnar stepper");
            stepper.store(&mut self.agents);
            self.vec_stale = false;
        }
    }

    /// The live population, read from whichever representation is current.
    fn live_population(&self) -> usize {
        if self.vec_stale {
            self.columnar.as_ref().map_or(0, |c| c.len())
        } else {
            self.agents.len()
        }
    }

    /// Approximate resident bytes of the simulation state: the agent
    /// vector, the reusable round scratch, and the columnar stepper's
    /// retained column buffers. Capacities (not lengths) are counted where
    /// available — this is the figure behind the bench harness's
    /// `mem_bytes_per_agent`.
    pub fn approx_mem_bytes(&self) -> usize {
        let agents = self.agents.capacity() * std::mem::size_of::<P::State>();
        let s = &self.scratch;
        let scratch = std::mem::size_of_val(s.matching.pairs())
            + s.shuffle.capacity() * std::mem::size_of::<u32>()
            + s.partners.capacity() * std::mem::size_of::<u32>()
            + s.messages.capacity() * std::mem::size_of::<Option<P::Message>>()
            + (s.splits.capacity() + s.deaths.capacity() + s.to_delete.capacity())
                * std::mem::size_of::<usize>();
        let columnar = self.columnar.as_ref().map_or(0, |c| c.mem_bytes());
        agents + scratch + columnar
    }

    /// The generic run loop shared by the serial and sharded drivers:
    /// executes rounds through `exec` until the spec is exhausted, the
    /// engine halts, or an [`Stop::Until`] predicate fires, notifying `obs`
    /// after every round.
    fn drive<F, O>(
        &mut self,
        spec: RunSpec<F>,
        obs: &mut O,
        scratch: &mut RoundScratch<P::Message>,
        mut exec: impl FnMut(&mut Self, &mut RoundScratch<P::Message>) -> RoundReport,
    ) -> RunOutcome
    where
        F: FnMut(&RoundReport) -> bool,
        O: Observer<P>,
    {
        let max_rounds = spec.max_rounds();
        let mut stop = spec.stop;
        let mut executed = 0u64;
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        let mut last: Option<RoundReport> = None;
        let mut stopped_early = false;
        // Observers that declare they never read the agent slice let the
        // columnar path keep its columns resident across rounds instead of
        // transposing the vector back after every step.
        let needs_state = obs.needs_engine_state();
        while executed < max_rounds {
            if self.halted.is_some() {
                break;
            }
            let report = exec(self, scratch);
            executed += 1;
            lo = lo.min(report.population_after);
            hi = hi.max(report.population_after);
            if needs_state {
                self.materialize();
            }
            let view = EngineView {
                agents: &self.agents,
                round: self.round,
                halted: self.halted,
                config: &self.cfg,
                adv_rng_state: self.adv_rng.raw_state(),
            };
            obs.on_round(&report, &view);
            last = Some(report);
            if let Stop::Until { stop, .. } = &mut stop {
                if stop(&report) {
                    stopped_early = true;
                    break;
                }
            }
        }
        // The vector is authoritative again from here on out.
        self.materialize();
        let population = self.agents.len();
        if executed == 0 {
            lo = population;
            hi = population;
        }
        RunOutcome {
            executed,
            halted: self.halted,
            stopped_early,
            last: last.unwrap_or(RoundReport {
                round: self.round,
                population_before: population,
                population_after: population,
                ..RoundReport::default()
            }),
            min_population: lo,
            max_population: hi,
        }
    }

    /// The bound-free serial driver: [`Engine::run`] minus the
    /// [`Threads::Sharded`] arm, so it needs none of that arm's
    /// `Send`/`Sync` bounds. `spec.threads` is ignored (rounds execute
    /// serially).
    ///
    /// [`Engine::run`] dispatches here for [`Threads::Serial`] (and for
    /// degenerate `Sharded(0 | 1)` specs); call it directly only for a
    /// protocol whose state is not thread-safe — every protocol in this
    /// workspace satisfies the `run` bounds.
    pub fn run_serial<F, O>(&mut self, spec: RunSpec<F>, obs: &mut O) -> RunOutcome
    where
        F: FnMut(&RoundReport) -> bool,
        O: Observer<P>,
    {
        let mut scratch = std::mem::take(&mut self.scratch);
        let outcome = self.drive(spec, obs, &mut scratch, |e, s| e.round_impl(s));
        self.scratch = scratch;
        outcome
    }

    /// Checkpoints the engine into a [`Snapshot`]: config, round counter,
    /// halt flag, adversary-stream position, and every agent's encoded
    /// state. [`Engine::restore`] of the result continues bit-for-bit
    /// identically to this engine (see the [`crate::snapshot`] module docs
    /// for what is and is not captured).
    pub fn snapshot(&self) -> Snapshot
    where
        P::State: SnapshotState,
    {
        debug_assert!(
            !self.vec_stale,
            "snapshot of a stale agent vector (engine failed to materialize)"
        );
        let mut agent_bytes = Vec::new();
        for agent in &self.agents {
            agent.encode(&mut agent_bytes);
        }
        Snapshot {
            label: String::new(),
            state_tag: P::State::state_tag(),
            config: self.cfg.clone(),
            round: self.round,
            halted: self.halted,
            adv_rng_state: self.adv_rng.raw_state(),
            agent_count: self.agents.len() as u64,
            agent_bytes,
        }
    }

    /// Rebuilds an engine from a [`Snapshot`], resuming exactly where
    /// [`Engine::snapshot`] left off — no `initial_state` calls, the
    /// per-round agent/matching keys re-derived from the snapshot's seed,
    /// the adversary stream repositioned. The caller supplies the protocol
    /// and adversary instances (they are not serialized); supplying a
    /// *different* adversary, or a [`Snapshot::fork`] branch, is how
    /// counterfactual futures are spawned.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::StateTagMismatch`] when the snapshot holds a
    /// different protocol's states, [`SnapshotError::Truncated`] /
    /// [`SnapshotError::Malformed`] when the agent column does not decode
    /// to exactly the captured population.
    pub fn restore(protocol: P, adversary: A, snap: &Snapshot) -> Result<Self, SnapshotError>
    where
        P::State: SnapshotState,
    {
        let expected = P::State::state_tag();
        if snap.state_tag != expected {
            return Err(SnapshotError::StateTagMismatch {
                found: snap.state_tag.clone(),
                expected,
            });
        }
        let mut reader = SnapshotReader::new(&snap.agent_bytes);
        reader.set_section("agent states");
        if snap.agent_count > crate::snapshot::MAX_SNAPSHOT_AGENTS {
            return Err(reader.malformed("agent count exceeds the sanity cap"));
        }
        let count = usize::try_from(snap.agent_count)
            .map_err(|_| reader.malformed("population too large"))?;
        // Pre-reserve from the *byte column*, not the claimed count: a
        // hand-sealed snapshot may claim billions of agents over an empty
        // column, and the decode loop below errors out long before the Vec
        // would grow that far.
        let mut agents = Vec::with_capacity(count.min(snap.agent_bytes.len().max(1024)));
        for _ in 0..count {
            agents.push(P::State::decode(&mut reader)?);
        }
        if reader.remaining() != 0 {
            return Err(reader.malformed("agent column longer than the captured population"));
        }
        let cfg = snap.config.clone();
        let agent_key = derive_seed(cfg.seed, "agent-counter");
        let match_key = derive_seed(cfg.seed, "matching");
        let columnar = protocol.columnar();
        Ok(Engine {
            protocol,
            adversary,
            cfg,
            agents,
            round: snap.round,
            agent_key,
            match_key,
            adv_rng: SimRng::from_raw_state(snap.adv_rng_state),
            halted: snap.halted,
            scratch: RoundScratch::default(),
            columnar,
            cols_valid: false,
            vec_stale: false,
        })
    }

    /// One synchronous round against explicit scratch buffers. The serial
    /// driver funnels through here; the sharded driver funnels through
    /// [`par_round_impl`](Self::par_round_impl), which differs *only* in how
    /// the step phase is executed.
    fn round_impl(&mut self, scratch: &mut RoundScratch<P::Message>) -> RoundReport {
        let mut report = RoundReport {
            round: self.round,
            population_before: self.live_population(),
            ..RoundReport::default()
        };
        if self.halted.is_some() {
            report.population_after = self.live_population();
            return report;
        }
        self.phase_adversary_and_matching(scratch, &mut report, None);
        self.phase_step_serial(scratch);
        self.phase_apply(scratch, &mut report);
        report
    }

    /// Phases 1–2: adversary alterations, then the matching over survivors
    /// and its compact partner table. The matching is counter-keyed per
    /// round, so the serial sampler and the pool-sharded sampler produce
    /// identical pairs — `pool` only changes who computes them.
    fn phase_adversary_and_matching(
        &mut self,
        scratch: &mut RoundScratch<P::Message>,
        report: &mut RoundReport,
        pool: Option<&ShardPool>,
    ) {
        // Phase 1: adversary (sees everything, blind to the coming matching).
        // A real adversary must see the authoritative vector; the declared
        // no-op ([`Adversary::is_noop`]) never reads it, which is what lets
        // the columnar path keep its columns resident across rounds.
        if !self.adversary.is_noop() {
            self.materialize();
        }
        let ctx = RoundContext {
            round: self.round,
            budget: self.cfg.adversary_budget,
            target: self.cfg.target,
        };
        let alterations = self.adversary.act(&ctx, &self.agents, &mut self.adv_rng);
        if !alterations.is_empty() {
            // An `is_noop` adversary that alters anyway broke its contract
            // (it acted on a possibly-stale slice); recover coherently.
            debug_assert!(!self.vec_stale, "is_noop adversary returned alterations");
            self.materialize();
            self.apply_alterations(alterations, &mut scratch.to_delete, report);
            if report.inserted + report.deleted + report.modified > 0 {
                // The vector changed behind the columns' back.
                self.cols_valid = false;
            }
        }

        // Phase 2: matching over survivors.
        let population = self.live_population();
        let mkey = round_key(self.match_key, self.round);
        match pool {
            Some(pool) => sample_matching_into_par(
                &mut scratch.matching,
                &mut scratch.shuffle,
                population,
                self.cfg.matching,
                mkey,
                pool,
            ),
            None => sample_matching_into(
                &mut scratch.matching,
                &mut scratch.shuffle,
                population,
                self.cfg.matching,
                mkey,
            ),
        }
        report.matched = scratch.matching.matched_agents();
        scratch
            .matching
            .partner_table_into(&mut scratch.partners, population);
    }

    /// Phase 3, serial flavor: simultaneous message exchange, then one step
    /// per agent under its `(round, slot)`-keyed RNG. Messages are composed
    /// from pre-step state for every matched agent.
    fn phase_step_serial(&mut self, scratch: &mut RoundScratch<P::Message>) {
        if self.phase_step_columnar(scratch, None) {
            return;
        }
        let RoundScratch {
            partners,
            messages,
            splits,
            deaths,
            ..
        } = scratch;
        messages.clear();
        messages.extend(partners.iter().map(|&p| {
            if p == UNMATCHED {
                None
            } else {
                Some(self.protocol.message(&self.agents[p as usize]))
            }
        }));

        deaths.clear();
        splits.clear();
        let rkey = round_key(self.agent_key, self.round);
        for (i, incoming) in messages.iter().enumerate() {
            let mut rng = slot_rng(rkey, i as u64);
            let action = self
                .protocol
                .step(&mut self.agents[i], incoming.as_ref(), &mut rng);
            match action {
                Action::Continue => {}
                Action::Split => splits.push(i),
                Action::Die => deaths.push(i),
                // Extended model (§1.2): remove the matched partner. A
                // kill and a same-round split of the victim both take
                // effect: the daughter survives, the victim does not.
                Action::KillPartner => {
                    let j = partners[i];
                    if j != UNMATCHED {
                        deaths.push(j as usize);
                    }
                }
            }
        }
    }

    /// The columnar arm of the step phase, shared by the serial and sharded
    /// flavors: reload the columns if the vector was mutated since they were
    /// last current, then advance them in place (leaving the vector stale
    /// until someone materializes it). Returns `false` when no columnar
    /// stepper is installed.
    fn phase_step_columnar(
        &mut self,
        scratch: &mut RoundScratch<P::Message>,
        pool: Option<&ShardPool>,
    ) -> bool {
        if self.columnar.is_none() {
            return false;
        }
        let rkey = round_key(self.agent_key, self.round);
        let stepper = self.columnar.as_mut().expect("checked above");
        scratch.splits.clear();
        scratch.deaths.clear();
        if !self.cols_valid {
            stepper.load(&self.agents, pool);
            self.cols_valid = true;
        }
        stepper.step(
            &scratch.partners,
            rkey,
            pool,
            &mut scratch.splits,
            &mut scratch.deaths,
        );
        self.vec_stale = true;
        true
    }

    /// Phase 4 plus bookkeeping: apply splits (append daughters) then
    /// deaths (swap-remove, descending index order so earlier indices stay
    /// valid; kills may duplicate an own-death, so dedup first), and check
    /// the halt conditions. After a columnar step the lists are applied to
    /// the resident columns instead — same order, same semantics.
    fn phase_apply(&mut self, scratch: &mut RoundScratch<P::Message>, report: &mut RoundReport) {
        let RoundScratch { splits, deaths, .. } = scratch;
        deaths.sort_unstable();
        deaths.dedup();
        report.splits = splits.len();
        report.deaths = deaths.len();
        if self.vec_stale {
            self.columnar
                .as_mut()
                .expect("stale vector implies a columnar stepper")
                .apply(splits, deaths);
        } else {
            for &i in splits.iter() {
                let daughter = self.agents[i].clone();
                self.agents.push(daughter);
            }
            for &i in deaths.iter().rev() {
                self.agents.swap_remove(i);
            }
        }

        let population = self.live_population();
        report.population_after = population;
        self.round += 1;

        if population == 0 {
            self.halted = Some(HaltReason::Extinct);
        } else if population > self.cfg.max_population {
            self.halted = Some(HaltReason::Exploded);
        }
    }

    /// Phase 3, parallel flavor: shards the message composition and the
    /// step/split/death scan over `pool`, merging per-shard work lists in
    /// slot order. Bit-identical to [`phase_step_serial`](Self::phase_step_serial)
    /// for every shard count because
    ///
    /// * each agent's coin flips come from its own `(round, slot)` counter
    ///   stream, not from a shared sequential stream,
    /// * shards cover contiguous disjoint slot ranges in order, so the
    ///   concatenated split lists equal the serial iteration's, and the
    ///   death lists are sorted + deduped afterwards either way.
    fn phase_step_parallel(
        &mut self,
        scratch: &mut RoundScratch<P::Message>,
        pool: &ShardPool,
        shard_out: &mut [StepShard],
    ) where
        P: Sync,
        P::State: Send + Sync,
        P::Message: Send,
    {
        if self.phase_step_columnar(scratch, Some(pool)) {
            return;
        }
        let RoundScratch {
            partners,
            messages,
            splits,
            deaths,
            ..
        } = scratch;
        let n = self.agents.len();
        let nshards = pool.shards();
        debug_assert_eq!(shard_out.len(), nshards);
        let partners: &[u32] = partners;
        let protocol = &self.protocol;
        let rkey = round_key(self.agent_key, self.round);

        // Message composition: every shard reads agent states (no one
        // mutates them during this dispatch) and writes the message slots
        // of its own range. Plain message types (no drop glue — every
        // protocol in this workspace) write into spare capacity and publish
        // the length after the barrier; droppy message types are prefilled
        // with `None` first so that a panicking shard cannot strand
        // already-written payloads in unreachable capacity (`ptr::write`
        // over a `None` leaks nothing either way).
        let prefill = std::mem::needs_drop::<Option<P::Message>>();
        messages.clear();
        if prefill {
            messages.resize_with(n, || None);
        } else {
            messages.reserve(n);
        }
        let msg_base = SendPtr(messages.as_mut_ptr());
        let agents_base = SendPtr(self.agents.as_mut_ptr());
        pool.dispatch(&|s| {
            let (lo, hi) = shard_range(n, nshards, s);
            // Indexing (not iterators) keeps the slot arithmetic aligned
            // with the raw-pointer writes below.
            #[allow(clippy::needless_range_loop)]
            for i in lo..hi {
                let p = partners[i];
                let msg = if p == UNMATCHED {
                    None
                } else {
                    // SAFETY: shared read; agents are not written to until
                    // the next dispatch, after this one's barrier.
                    Some(protocol.message(unsafe { &*agents_base.get().add(p as usize) }))
                };
                // SAFETY: slot `i` belongs to exactly one shard range and
                // lies within the capacity reserved above; it holds either
                // uninitialized memory (post-`clear`) or a prefilled `None`
                // — `write` is correct for both, since `None` of a droppy
                // payload type has nothing to drop.
                unsafe { msg_base.get().add(i).write(msg) };
            }
        });
        if !prefill {
            // SAFETY: the dispatch barrier guarantees all `n` slots are
            // initialized before the length is published.
            unsafe { messages.set_len(n) };
        }

        // Step scan: each shard mutates only its own agents, reads only its
        // own messages, and collects splits/deaths into its own list.
        let shards_base = SendPtr(shard_out.as_mut_ptr());
        pool.dispatch(&|s| {
            let (lo, hi) = shard_range(n, nshards, s);
            // SAFETY: `dispatch` runs each shard index exactly once, so
            // this is the only reference to `shard_out[s]`.
            let out = unsafe { &mut *shards_base.get().add(s) };
            out.splits.clear();
            out.deaths.clear();
            #[allow(clippy::needless_range_loop)]
            for i in lo..hi {
                // SAFETY: slot `i` belongs to exactly one shard range; no
                // other thread touches `agents[i]` or `messages[i]`.
                let state = unsafe { &mut *agents_base.get().add(i) };
                // SAFETY: same disjointness argument, and `messages` is only
                // ever read during the step phase.
                let incoming = unsafe { &*msg_base.get().add(i) };
                let mut rng = slot_rng(rkey, i as u64);
                match protocol.step(state, incoming.as_ref(), &mut rng) {
                    Action::Continue => {}
                    Action::Split => out.splits.push(i),
                    Action::Die => out.deaths.push(i),
                    Action::KillPartner => {
                        let j = partners[i];
                        if j != UNMATCHED {
                            out.deaths.push(j as usize);
                        }
                    }
                }
            }
        });

        // Deterministic merge in slot order (shard s covers smaller slots
        // than shard s+1).
        splits.clear();
        deaths.clear();
        for out in shard_out.iter() {
            splits.extend_from_slice(&out.splits);
            deaths.extend_from_slice(&out.deaths);
        }
    }

    /// One round with the step phase sharded over `pool`; everything else
    /// matches [`round_impl`](Self::round_impl).
    fn par_round_impl(
        &mut self,
        scratch: &mut RoundScratch<P::Message>,
        pool: &ShardPool,
        shard_out: &mut [StepShard],
    ) -> RoundReport
    where
        P: Sync,
        P::State: Send + Sync,
        P::Message: Send,
    {
        let mut report = RoundReport {
            round: self.round,
            population_before: self.live_population(),
            ..RoundReport::default()
        };
        if self.halted.is_some() {
            report.population_after = self.live_population();
            return report;
        }
        self.phase_adversary_and_matching(scratch, &mut report, Some(pool));
        self.phase_step_parallel(scratch, pool, shard_out);
        self.phase_apply(scratch, &mut report);
        report
    }

    /// Applies adversary alterations under the budget, in order. `Delete` and
    /// `Modify` indices refer to the slice the adversary saw; deletions are
    /// deferred to the end (swap-remove, descending) so indices stay stable,
    /// and insertions are appended after the original slice.
    fn apply_alterations(
        &mut self,
        alterations: Vec<Alteration<P::State>>,
        to_delete: &mut Vec<usize>,
        report: &mut RoundReport,
    ) {
        let original_len = self.agents.len();
        to_delete.clear();
        for alt in alterations.into_iter().take(self.cfg.adversary_budget) {
            match alt {
                Alteration::Delete(i) => {
                    // Duplicates are collected here and collapsed by the
                    // sort+dedup below (a repeat delete still consumes
                    // budget, exactly as before) — a per-push `contains`
                    // probe made bulk-delete adversaries O(budget²).
                    if i < original_len {
                        to_delete.push(i);
                    }
                }
                Alteration::Insert(state) => {
                    self.agents.push(state);
                    report.inserted += 1;
                }
                Alteration::Modify(i, state) => {
                    if i < original_len {
                        self.agents[i] = state;
                        report.modified += 1;
                    }
                }
            }
        }
        to_delete.sort_unstable();
        to_delete.dedup();
        report.deleted = to_delete.len();
        for &i in to_delete.iter().rev() {
            self.agents.swap_remove(i);
        }
    }
}

/// The unified run driver.
///
/// The `Send`/`Sync` bounds come from [`Threads::Sharded`], whose step scan
/// shards the two `O(population)` stretches of every round — the step phase
/// and the matching-pair construction — across one persistent [`ShardPool`];
/// the per-agent counter RNG and the counter-keyed matching permutation make
/// the results **bit-identical to the serial loop for every worker count**
/// (asserted by the `sharded_run_*` property tests and the CI determinism
/// diff). The remaining phases (adversary, partner-table scatter,
/// split/death application) stay serial — they are `O(K + matched)` scatter
/// work against the `O(population)` scans. Sharding is worth it only when
/// single rounds are large: the pool synchronizes twice per round, so at
/// small populations [`Threads::Serial`] wins.
impl<P, A> Engine<P, A>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    P::Message: Send,
    A: Adversary<P::State>,
{
    /// Runs the engine per `spec`, notifying `obs` after every executed
    /// round.
    ///
    /// This is the one execution entry point: the stop condition
    /// ([`Stop::Rounds`] / [`Stop::Until`] / [`Stop::Epochs`]) and the
    /// thread configuration ([`Threads::Serial`] /
    /// [`Threads::Sharded`], one pool persisting across all rounds) live in
    /// the [`RunSpec`]; recording and any other instrumentation live in the
    /// [`Observer`]. With the `()` observer the loop is the allocation-free
    /// fast path; with [`RecordStats`](crate::RecordStats) it reproduces the
    /// engine's former built-in stats recording. The trajectory is a pure
    /// function of the seed: the spec's thread configuration and the
    /// observer never change it.
    ///
    /// The `Send`/`Sync` bounds on this impl block exist for the
    /// [`Threads::Sharded`] arm (they are satisfied by every protocol in
    /// this workspace). A protocol with non-thread-safe state can still
    /// execute serially through the bound-free
    /// [`run_serial`](Engine::run_serial).
    ///
    /// The thread configuration is [normalized](Threads::normalized)
    /// before dispatch: `Sharded(0)` and `Sharded(1)` describe a serial
    /// trajectory (the determinism contract makes them identical to
    /// [`Threads::Serial`]), so they take the serial path rather than
    /// paying the sharded arm's per-round merge overhead — the same
    /// normalization [`Threads::from_env`] applies.
    pub fn run<F, O>(&mut self, spec: RunSpec<F>, obs: &mut O) -> RunOutcome
    where
        F: FnMut(&RoundReport) -> bool,
        O: Observer<P>,
    {
        match spec.threads.normalized() {
            Threads::Serial => self.run_serial(spec, obs),
            Threads::Sharded(workers) => {
                let mut scratch = std::mem::take(&mut self.scratch);
                let mut shard_out: Vec<StepShard> =
                    (0..workers).map(|_| StepShard::default()).collect();
                let outcome = ShardPool::with(workers, |pool| {
                    self.drive(spec, obs, &mut scratch, |e, s| {
                        e.par_round_impl(s, pool, &mut shard_out)
                    })
                });
                self.scratch = scratch;
                outcome
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Observable, Observation};
    use crate::matching::MatchingModel;
    use crate::protocols::{Inert, InertState};
    use rand::Rng;

    /// Every matched agent splits once, then goes quiet. Used to test split
    /// application.
    struct SplitOnce;

    #[derive(Debug, Clone)]
    struct SplitState {
        done: bool,
    }
    impl Observable for SplitState {
        fn observe(&self) -> Observation {
            Observation {
                active: self.done,
                ..Observation::default()
            }
        }
    }

    impl Protocol for SplitOnce {
        type State = SplitState;
        type Message = ();
        fn initial_state(&self, _rng: &mut SimRng) -> SplitState {
            SplitState { done: false }
        }
        fn message(&self, _s: &SplitState) {}
        fn step(&self, s: &mut SplitState, incoming: Option<&()>, _rng: &mut SimRng) -> Action {
            if !s.done && incoming.is_some() {
                s.done = true;
                Action::Split
            } else {
                Action::Continue
            }
        }
    }

    /// Everyone dies immediately.
    struct DieAll;
    #[derive(Debug, Clone)]
    struct Unit;
    impl Observable for Unit {
        fn observe(&self) -> Observation {
            Observation::default()
        }
    }
    impl Protocol for DieAll {
        type State = Unit;
        type Message = ();
        fn initial_state(&self, _rng: &mut SimRng) -> Unit {
            Unit
        }
        fn message(&self, _s: &Unit) {}
        fn step(&self, _s: &mut Unit, _m: Option<&()>, _rng: &mut SimRng) -> Action {
            Action::Die
        }
    }

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::builder().seed(seed).build().unwrap()
    }

    /// One round through the driver, returning its report.
    fn round<P, A>(engine: &mut Engine<P, A>) -> RoundReport
    where
        P: Protocol + Sync,
        P::State: Send + Sync,
        P::Message: Send,
        A: Adversary<P::State>,
    {
        engine.run(RunSpec::rounds(1), &mut ()).last
    }

    #[test]
    fn inert_population_is_stable() {
        let mut engine = Engine::with_population(Inert, cfg(1), 50);
        let mut rec = crate::MetricsRecorder::new();
        let outcome = engine.run(RunSpec::rounds(20), &mut crate::RecordStats::new(&mut rec));
        assert_eq!(outcome.executed, 20);
        assert_eq!(engine.population(), 50);
        assert_eq!(engine.halted(), None);
        assert_eq!(outcome.population_range(), (50, 50));
        assert_eq!(rec.len(), 20);
    }

    #[test]
    fn splits_double_matched_agents() {
        let mut engine = Engine::with_population(SplitOnce, cfg(2), 10);
        let report = round(&mut engine);
        // Full matching on 10 agents: all matched, all split.
        assert_eq!(report.splits, 10);
        assert_eq!(engine.population(), 20);
    }

    #[test]
    fn extinction_halts_engine() {
        let mut engine = Engine::with_population(DieAll, cfg(3), 8);
        let report = round(&mut engine);
        assert_eq!(report.deaths, 8);
        assert_eq!(engine.population(), 0);
        assert_eq!(engine.halted(), Some(HaltReason::Extinct));
        // Further rounds are inert.
        let outcome = engine.run(RunSpec::rounds(5), &mut ());
        assert_eq!(outcome.executed, 0);
        assert_eq!(outcome.halted, Some(HaltReason::Extinct));
        assert_eq!(outcome.population_range(), (0, 0));
        assert_eq!(outcome.last.population_before, 0);
    }

    #[test]
    fn explosion_cap_halts_engine() {
        /// Splits every round forever.
        struct Exploder;
        impl Protocol for Exploder {
            type State = Unit;
            type Message = ();
            fn initial_state(&self, _r: &mut SimRng) -> Unit {
                Unit
            }
            fn message(&self, _s: &Unit) {}
            fn step(&self, _s: &mut Unit, _m: Option<&()>, _r: &mut SimRng) -> Action {
                Action::Split
            }
        }
        let cfg = SimConfig::builder()
            .seed(4)
            .max_population(100)
            .build()
            .unwrap();
        let mut engine = Engine::with_population(Exploder, cfg, 10);
        engine.run(RunSpec::rounds(10), &mut ());
        assert_eq!(engine.halted(), Some(HaltReason::Exploded));
        assert!(engine.population() > 100);
    }

    #[test]
    fn budget_truncates_alterations() {
        struct GreedyDeleter;
        impl Adversary<InertState> for GreedyDeleter {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn act(
                &mut self,
                _c: &RoundContext,
                agents: &[InertState],
                _r: &mut SimRng,
            ) -> Vec<Alteration<InertState>> {
                (0..agents.len()).map(Alteration::Delete).collect()
            }
        }
        let cfg = SimConfig::builder()
            .seed(5)
            .adversary_budget(3)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(Inert, GreedyDeleter, cfg, 10);
        let report = round(&mut engine);
        assert_eq!(report.deleted, 3);
        assert_eq!(engine.population(), 7);
    }

    #[test]
    fn duplicate_and_out_of_range_deletes_are_ignored() {
        struct Sloppy;
        impl Adversary<InertState> for Sloppy {
            fn name(&self) -> &'static str {
                "sloppy"
            }
            fn act(
                &mut self,
                _c: &RoundContext,
                _a: &[InertState],
                _r: &mut SimRng,
            ) -> Vec<Alteration<InertState>> {
                vec![
                    Alteration::Delete(0),
                    Alteration::Delete(0),
                    Alteration::Delete(999),
                ]
            }
        }
        let cfg = SimConfig::builder()
            .seed(6)
            .adversary_budget(10)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(Inert, Sloppy, cfg, 5);
        let report = round(&mut engine);
        assert_eq!(report.deleted, 1);
        assert_eq!(engine.population(), 4);
    }

    #[test]
    fn inserts_and_modifies_are_applied() {
        struct Meddler;
        impl Adversary<InertState> for Meddler {
            fn name(&self) -> &'static str {
                "meddler"
            }
            fn act(
                &mut self,
                _c: &RoundContext,
                _a: &[InertState],
                _r: &mut SimRng,
            ) -> Vec<Alteration<InertState>> {
                vec![
                    Alteration::Insert(InertState),
                    Alteration::Insert(InertState),
                    Alteration::Modify(0, InertState),
                ]
            }
        }
        let cfg = SimConfig::builder()
            .seed(7)
            .adversary_budget(10)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(Inert, Meddler, cfg, 5);
        let report = round(&mut engine);
        assert_eq!(report.inserted, 2);
        assert_eq!(report.modified, 1);
        assert_eq!(engine.population(), 7);
    }

    #[test]
    fn kill_partner_removes_the_matched_agent() {
        /// Agents alternate: even seeds kill, odd do nothing. Using a state
        /// flag: killers kill any partner.
        struct Killer;
        #[derive(Debug, Clone)]
        struct KState {
            lethal: bool,
        }
        impl Observable for KState {
            fn observe(&self) -> Observation {
                Observation {
                    active: self.lethal,
                    ..Observation::default()
                }
            }
        }
        impl Protocol for Killer {
            type State = KState;
            type Message = bool;
            fn initial_state(&self, _r: &mut SimRng) -> KState {
                KState { lethal: false }
            }
            fn message(&self, s: &KState) -> bool {
                s.lethal
            }
            fn step(&self, s: &mut KState, m: Option<&bool>, _r: &mut SimRng) -> Action {
                match m {
                    Some(_) if s.lethal => Action::KillPartner,
                    _ => Action::Continue,
                }
            }
        }
        struct ArmHalf;
        impl Adversary<KState> for ArmHalf {
            fn name(&self) -> &'static str {
                "arm-half"
            }
            fn act(
                &mut self,
                ctx: &RoundContext,
                agents: &[KState],
                _r: &mut SimRng,
            ) -> Vec<Alteration<KState>> {
                if ctx.round == 0 {
                    (0..agents.len() / 2)
                        .map(|i| Alteration::Modify(i, KState { lethal: true }))
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
        let cfg = SimConfig::builder()
            .seed(21)
            .adversary_budget(100)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(Killer, ArmHalf, cfg, 20);
        let report = round(&mut engine);
        // Full matching pairs all 20 agents: with k killer-killer pairs there
        // are also k victim-victim pairs (no deaths) and 10 − 2k mixed pairs
        // (victim dies), so exactly 2k + (10 − 2k) = 10 agents die whatever
        // the matching.
        assert_eq!(report.deaths, 10, "deaths={}", report.deaths);
        assert_eq!(engine.population(), 20 - report.deaths);
        // Killers never die to non-killers, so the missing killers come in
        // killer-killer pairs: an even number is gone.
        let lethal_left = engine.agents().iter().filter(|a| a.lethal).count();
        assert_eq!(
            (10 - lethal_left) % 2,
            0,
            "killers died singly: lethal_left={lethal_left}"
        );
    }

    #[test]
    fn mutual_kills_remove_both_without_double_count() {
        /// Everyone kills their partner.
        struct AllKill;
        impl Protocol for AllKill {
            type State = Unit;
            type Message = ();
            fn initial_state(&self, _r: &mut SimRng) -> Unit {
                Unit
            }
            fn message(&self, _s: &Unit) {}
            fn step(&self, _s: &mut Unit, m: Option<&()>, _r: &mut SimRng) -> Action {
                if m.is_some() {
                    Action::KillPartner
                } else {
                    Action::Continue
                }
            }
        }
        let cfg = SimConfig::builder().seed(22).build().unwrap();
        let mut engine = Engine::with_population(AllKill, cfg, 10);
        let report = round(&mut engine);
        assert_eq!(report.deaths, 10);
        assert_eq!(engine.halted(), Some(HaltReason::Extinct));
    }

    #[test]
    fn population_accounting_identity() {
        // end = start + inserted - deleted + splits - deaths, on every round.
        struct Churn;
        impl Adversary<SplitState> for Churn {
            fn name(&self) -> &'static str {
                "churn"
            }
            fn act(
                &mut self,
                ctx: &RoundContext,
                agents: &[SplitState],
                rng: &mut SimRng,
            ) -> Vec<Alteration<SplitState>> {
                let mut out = Vec::new();
                if !agents.is_empty() && rng.random::<bool>() {
                    out.push(Alteration::Delete(rng.random_range(0..agents.len())));
                }
                if ctx.round.is_multiple_of(2) {
                    out.push(Alteration::Insert(SplitState { done: false }));
                }
                out
            }
        }
        let cfg = SimConfig::builder()
            .seed(8)
            .adversary_budget(4)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(SplitOnce, Churn, cfg, 30);
        for _ in 0..20 {
            let before = engine.population();
            let r = round(&mut engine);
            assert_eq!(r.population_before, before);
            assert_eq!(
                r.population_after,
                before + r.inserted - r.deleted + r.splits - r.deaths,
                "round {} accounting mismatch",
                r.round
            );
            assert_eq!(r.population_after, engine.population());
        }
    }

    #[test]
    fn metrics_stride_reduces_records() {
        let mut engine = Engine::with_population(Inert, cfg(9), 10);
        let mut rec = crate::MetricsRecorder::new();
        engine.run(
            RunSpec::rounds(20),
            &mut crate::RecordStats::stride(&mut rec, 5, 0),
        );
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            // A random matched fraction makes the trajectory seed-dependent.
            let cfg = SimConfig::builder()
                .seed(seed)
                .matching(MatchingModel::RandomFraction { min_gamma: 0.25 })
                .build()
                .unwrap();
            let mut e = Engine::with_population(SplitOnce, cfg, 64);
            let mut pops = Vec::new();
            e.run(
                RunSpec::rounds(5),
                &mut crate::OnRound(|r: &RoundReport| pops.push(r.population_after)),
            );
            pops
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn partial_matching_leaves_agents_unmatched() {
        let cfg = SimConfig::builder()
            .seed(10)
            .matching(MatchingModel::ExactFraction(0.5))
            .build()
            .unwrap();
        let mut engine = Engine::with_population(SplitOnce, cfg, 100);
        let report = round(&mut engine);
        // Exactly half are matched; only those split.
        assert_eq!(report.splits, 50);
    }

    #[test]
    fn serial_and_sharded_specs_agree() {
        let run = |threads: Threads| {
            let cfg = SimConfig::builder()
                .seed(77)
                .matching(MatchingModel::RandomFraction { min_gamma: 0.4 })
                .build()
                .unwrap();
            let mut e = Engine::with_population(SplitOnce, cfg, 120);
            let mut trace = Vec::new();
            let outcome = e.run(
                RunSpec::rounds(12).threads(threads),
                &mut crate::OnRound(|r: &RoundReport| trace.push(*r)),
            );
            (
                trace,
                outcome.executed,
                outcome.population_range(),
                e.population(),
            )
        };
        let serial = run(Threads::Serial);
        for workers in [1usize, 2, 4] {
            assert_eq!(serial, run(Threads::Sharded(workers)), "{workers} workers");
        }
    }

    #[test]
    fn until_spec_stops_early_and_reports_it() {
        let mut engine = Engine::with_population(SplitOnce, cfg(14), 64);
        let outcome = engine.run(RunSpec::until(50, |r| r.population_after > 100), &mut ());
        assert!(outcome.stopped_early);
        assert_eq!(outcome.executed, 1);
        assert!(outcome.last.population_after > 100);
        // Exhausting the cap is not an early stop.
        let outcome = engine.run(RunSpec::until(3, |_| false), &mut ());
        assert!(!outcome.stopped_early);
        assert_eq!(outcome.executed, 3);
    }

    #[test]
    fn epochs_spec_runs_the_full_grid() {
        let mut engine = Engine::with_population(Inert, cfg(15), 10);
        let outcome = engine.run(RunSpec::epochs(4, 7), &mut ());
        assert_eq!(outcome.executed, 28);
        assert_eq!(engine.round(), 28);
    }

    #[test]
    fn zero_budget_silences_adversary() {
        struct Deleter;
        impl Adversary<InertState> for Deleter {
            fn name(&self) -> &'static str {
                "del"
            }
            fn act(
                &mut self,
                _c: &RoundContext,
                _a: &[InertState],
                _r: &mut SimRng,
            ) -> Vec<Alteration<InertState>> {
                vec![Alteration::Delete(0)]
            }
        }
        let mut engine = Engine::with_adversary(Inert, Deleter, cfg(11), 5);
        let report = round(&mut engine);
        assert_eq!(report.deleted, 0);
        assert_eq!(engine.population(), 5);
    }

    #[test]
    fn sharded_one_takes_the_serial_path() {
        // `Sharded(0 | 1)` normalizes to `Serial` at the dispatch (the
        // `Threads::normalized` unit tests pin the mapping itself); here we
        // pin that the degenerate sharded specs drive the same trajectory
        // as the serial spec on a seed-sensitive protocol.
        let run = |threads: Threads| {
            let cfg = SimConfig::builder()
                .seed(99)
                .matching(MatchingModel::RandomFraction { min_gamma: 0.5 })
                .build()
                .unwrap();
            let mut e = Engine::with_population(SplitOnce, cfg, 96);
            let mut trace = Vec::new();
            e.run(
                RunSpec::rounds(8).threads(threads),
                &mut crate::OnRound(|r: &RoundReport| trace.push(*r)),
            );
            trace
        };
        let serial = run(Threads::Serial);
        assert_eq!(serial, run(Threads::Sharded(0)));
        assert_eq!(serial, run(Threads::Sharded(1)));
    }

    #[test]
    fn bulk_duplicate_deletes_still_dedup_and_consume_budget() {
        // A repeat delete consumes budget without freeing a second agent —
        // the first-seen semantics the O(budget²) `contains` probe used to
        // implement, now via sort+dedup.
        struct Hammer;
        impl Adversary<InertState> for Hammer {
            fn name(&self) -> &'static str {
                "hammer"
            }
            fn act(
                &mut self,
                _c: &RoundContext,
                _a: &[InertState],
                _r: &mut SimRng,
            ) -> Vec<Alteration<InertState>> {
                // 6 in-budget alterations: indices 2,2,0,5,2,0 → uniques {0,2,5}.
                vec![2usize, 2, 0, 5, 2, 0]
                    .into_iter()
                    .map(Alteration::Delete)
                    .collect()
            }
        }
        let cfg = SimConfig::builder()
            .seed(23)
            .adversary_budget(6)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(Inert, Hammer, cfg, 10);
        let report = round(&mut engine);
        assert_eq!(report.deleted, 3);
        assert_eq!(engine.population(), 7);
    }

    #[test]
    fn zero_round_spec_reports_the_live_engine() {
        let mut engine = Engine::with_population(Inert, cfg(31), 12);
        engine.run(RunSpec::rounds(3), &mut ());
        let outcome = engine.run(RunSpec::rounds(0), &mut ());
        assert_eq!(outcome.executed, 0);
        assert!(!outcome.stopped_early);
        assert_eq!(outcome.halted, None);
        // The synthetic `last` report mirrors the live engine exactly.
        assert_eq!(outcome.population_range(), (12, 12));
        assert_eq!(outcome.last.round, engine.round());
        assert_eq!(outcome.last.population_before, engine.population());
        assert_eq!(outcome.last.population_after, engine.population());
    }

    #[test]
    fn halted_engine_outcome_agrees_with_live_state() {
        let mut engine = Engine::with_population(DieAll, cfg(32), 6);
        engine.run(RunSpec::rounds(1), &mut ());
        assert_eq!(engine.halted(), Some(HaltReason::Extinct));
        let outcome = engine.run(RunSpec::rounds(10), &mut ());
        assert_eq!(outcome.executed, 0);
        assert_eq!(outcome.halted, Some(HaltReason::Extinct));
        assert_eq!(outcome.population_range(), (0, 0));
        assert_eq!(outcome.last.round, engine.round());
        assert_eq!(outcome.last.population_before, 0);
        assert_eq!(outcome.last.population_after, 0);
    }

    #[test]
    fn halt_on_first_round_still_counts_the_round() {
        let mut engine = Engine::with_population(DieAll, cfg(33), 5);
        let outcome = engine.run(RunSpec::rounds(5), &mut ());
        // The extinction round executed; only the remaining four were cut.
        assert_eq!(outcome.executed, 1);
        assert_eq!(outcome.halted, Some(HaltReason::Extinct));
        assert_eq!(outcome.population_range(), (0, 0));
        assert_eq!(outcome.last.population_before, 5);
        assert_eq!(outcome.last.population_after, 0);
        assert_eq!(outcome.last.deaths, 5);
        assert_eq!(engine.population(), 0);
    }

    #[test]
    fn snapshot_restore_resumes_bit_for_bit() {
        let cfg = || {
            SimConfig::builder()
                .seed(0x5EED)
                .matching(MatchingModel::RandomFraction { min_gamma: 0.4 })
                .build()
                .unwrap()
        };
        let mut straight = Engine::with_population(Inert, cfg(), 40);
        let mut full = Vec::new();
        straight.run(
            RunSpec::rounds(20),
            &mut crate::OnRound(|r: &RoundReport| full.push(*r)),
        );

        let mut prefix = Engine::with_population(Inert, cfg(), 40);
        prefix.run(RunSpec::rounds(7), &mut ());
        let snap = prefix.snapshot();
        assert_eq!(snap.round(), 7);
        assert_eq!(snap.population(), 40);

        // Round-trip through the byte format into a fresh engine.
        let bytes = snap.to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let mut resumed = Engine::restore(Inert, NoOpAdversary, &snap).unwrap();
        let mut tail = Vec::new();
        resumed.run(
            RunSpec::rounds(13),
            &mut crate::OnRound(|r: &RoundReport| tail.push(*r)),
        );
        assert_eq!(&full[7..], &tail[..]);
        assert_eq!(resumed.round(), straight.round());
        assert_eq!(resumed.population(), straight.population());
    }

    #[test]
    fn restore_rejects_a_foreign_state_tag() {
        let engine = Engine::with_population(Inert, cfg(40), 4);
        let snap = engine.snapshot();
        // InertState's tag is "inert"; decoding it as a different protocol
        // must fail loudly rather than misinterpret bytes.
        #[derive(Debug, Clone)]
        struct OtherState;
        impl Observable for OtherState {
            fn observe(&self) -> Observation {
                Observation::default()
            }
        }
        impl crate::snapshot::SnapshotState for OtherState {
            fn state_tag() -> String {
                "other".to_string()
            }
            fn encode(&self, _out: &mut Vec<u8>) {}
            fn decode(_r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
                Ok(OtherState)
            }
        }
        #[derive(Debug)]
        struct Other;
        impl Protocol for Other {
            type State = OtherState;
            type Message = ();
            fn initial_state(&self, _r: &mut SimRng) -> OtherState {
                OtherState
            }
            fn message(&self, _s: &OtherState) {}
            fn step(&self, _s: &mut OtherState, _m: Option<&()>, _r: &mut SimRng) -> Action {
                Action::Continue
            }
        }
        match Engine::restore(Other, NoOpAdversary, &snap) {
            Err(SnapshotError::StateTagMismatch { found, expected }) => {
                assert_eq!(found, "inert");
                assert_eq!(expected, "other");
            }
            other => panic!("expected a state-tag mismatch, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_of_a_halted_engine_restores_halted() {
        let cap_cfg = SimConfig::builder()
            .seed(42)
            .adversary_budget(4)
            .max_population(2)
            .build()
            .unwrap();
        struct Bomb;
        impl Adversary<InertState> for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn act(
                &mut self,
                _c: &RoundContext,
                _a: &[InertState],
                _r: &mut SimRng,
            ) -> Vec<Alteration<InertState>> {
                (0..4).map(|_| Alteration::Insert(InertState)).collect()
            }
        }
        let mut exploding = Engine::with_adversary(Inert, Bomb, cap_cfg, 2);
        exploding.run(RunSpec::rounds(3), &mut ());
        assert_eq!(exploding.halted(), Some(HaltReason::Exploded));
        let snap = exploding.snapshot();
        assert_eq!(snap.halted(), Some(HaltReason::Exploded));
        let mut restored = Engine::restore(Inert, NoOpAdversary, &snap).unwrap();
        assert_eq!(restored.halted(), Some(HaltReason::Exploded));
        // A halted engine stays inert after restore, too.
        assert_eq!(restored.run(RunSpec::rounds(5), &mut ()).executed, 0);
    }
}
