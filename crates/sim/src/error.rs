//! Error types for the simulation substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was outside its legal range.
    InvalidConfig {
        /// Which field was invalid.
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl SimError {
    pub(crate) fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_reason() {
        let err = SimError::invalid_config("gamma", "must be in (0, 1]");
        let text = err.to_string();
        assert!(text.contains("gamma"));
        assert!(text.contains("(0, 1]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
