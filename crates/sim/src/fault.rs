//! Deterministic fault injection.
//!
//! Testing the fault-tolerance layer needs faults, and this repository's
//! determinism contract applies to the faults themselves: a fault schedule
//! must be a pure function of a seed so a failing CI run can be replayed
//! locally byte for byte. [`FaultPlan`] is that schedule — every decision
//! (does job `i` panic on attempt `a`? does shard `s` stall in round `r`?
//! which bit of a snapshot flips?) is keyed on `(fault_seed, domain, key)`
//! and nothing else. No global state, no wall clock, no entropy.
//!
//! The injected faults mirror the failure modes the layer defends against:
//!
//! * **Job panics** — [`maybe_panic`](FaultPlan::maybe_panic) inside a
//!   [`BatchRunner::run_faulty`](crate::batch::BatchRunner::run_faulty)
//!   job panics on the first [`panic_attempts`](FaultPlan::panic_attempts)
//!   attempts of a deterministically chosen subset of jobs, so retries
//!   succeed and the sweep must come out bit-identical to a fault-free one.
//! * **Worker stalls** — [`stall_for`](FaultPlan::stall_for) picks
//!   `(round, shard)` pairs to delay, shaking out schedule-dependence:
//!   a correct engine produces the same trajectory no matter how unfairly
//!   the shards are scheduled.
//! * **Snapshot corruption** — [`corrupt`](FaultPlan::corrupt) flips one
//!   seed-chosen bit and [`truncate_len`](FaultPlan::truncate_len) picks a
//!   seed-chosen cut point, driving the checksum/truncation rejection paths
//!   of [`crate::snapshot`].
//!
//! All panic messages start with `"injected fault:"` so test harnesses can
//! distinguish scheduled faults from real bugs.

use std::time::Duration;

use crate::rng::derive_seed;

/// How an injected panic message begins — filter on this to separate
/// scheduled faults from genuine failures.
pub const INJECTED_FAULT_PREFIX: &str = "injected fault:";

/// The SplitMix64 finalizer: a bijective mixer whose output bits are
/// statistically independent of the input's, so consecutive keys (job
/// indices, round numbers) yield uncorrelated decisions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible fault schedule: pure function of `(fault_seed, domain,
/// key)` (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    panic_rate: f64,
    panic_attempts: u32,
    stall_rate: f64,
    stall_micros: u64,
}

impl FaultPlan {
    /// A plan keyed on `fault_seed` that injects nothing until rates are
    /// configured with the builder methods.
    pub fn new(fault_seed: u64) -> FaultPlan {
        FaultPlan {
            seed: fault_seed,
            panic_rate: 0.0,
            panic_attempts: 1,
            stall_rate: 0.0,
            stall_micros: 0,
        }
    }

    /// Makes each job faulty independently with probability `rate`
    /// (clamped to `0.0..=1.0`).
    pub fn panic_rate(mut self, rate: f64) -> FaultPlan {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// A faulty job panics on its first `attempts` attempts (clamped to at
    /// least 1), then succeeds — set it below the retry bound to exercise
    /// recovery, at or above it to exercise quarantine.
    pub fn panic_attempts(mut self, attempts: u32) -> FaultPlan {
        self.panic_attempts = attempts.max(1);
        self
    }

    /// Stalls each `(round, shard)` pair independently with probability
    /// `rate` (clamped to `0.0..=1.0`) for `micros` microseconds.
    pub fn stalls(mut self, rate: f64, micros: u64) -> FaultPlan {
        self.stall_rate = rate.clamp(0.0, 1.0);
        self.stall_micros = micros;
        self
    }

    /// The fault seed the whole schedule derives from.
    pub fn fault_seed(&self) -> u64 {
        self.seed
    }

    /// The per-fault decision stream: 64 well-mixed bits determined by
    /// `(fault_seed, domain, key)`.
    fn decide(&self, domain: &str, key: u64) -> u64 {
        mix(derive_seed(self.seed, domain).wrapping_add(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// A Bernoulli draw from the decision stream: the top 53 bits map
    /// uniformly onto `[0, 1)` and compare against `rate`.
    fn bernoulli(&self, domain: &str, key: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let unit = (self.decide(domain, key) >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }

    /// Whether job `job_index` is in the faulty subset.
    pub fn job_is_faulty(&self, job_index: usize) -> bool {
        self.bernoulli("fault.job-panic", job_index as u64, self.panic_rate)
    }

    /// Whether attempt `attempt` (1-based) of job `job_index` should panic:
    /// the job is faulty and the attempt is within the panic window.
    pub fn should_panic(&self, job_index: usize, attempt: u32) -> bool {
        attempt <= self.panic_attempts && self.job_is_faulty(job_index)
    }

    /// Panics with an [`INJECTED_FAULT_PREFIX`] message when
    /// [`should_panic`](FaultPlan::should_panic) says so; call it at the
    /// top of a `run_faulty` job body.
    ///
    /// # Panics
    ///
    /// By design, on the scheduled `(job_index, attempt)` pairs.
    pub fn maybe_panic(&self, job_index: usize, attempt: u32) {
        if self.should_panic(job_index, attempt) {
            panic!("{INJECTED_FAULT_PREFIX} job {job_index} attempt {attempt}");
        }
    }

    /// The scheduled stall for `(round, shard)`, if any.
    pub fn stall_for(&self, round: u64, shard: usize) -> Option<Duration> {
        let key = round.wrapping_mul(0x1_0001).wrapping_add(shard as u64);
        if self.stall_micros > 0 && self.bernoulli("fault.stall", key, self.stall_rate) {
            Some(Duration::from_micros(self.stall_micros))
        } else {
            None
        }
    }

    /// Sleeps through the scheduled stall for `(round, shard)`, if any.
    /// Stalls perturb scheduling only — never results; determinism tests
    /// run with and without them and diff the trajectories.
    pub fn maybe_stall(&self, round: u64, shard: usize) {
        if let Some(pause) = self.stall_for(round, shard) {
            std::thread::sleep(pause);
        }
    }

    /// Flips one seed-chosen bit of `bytes` in place and returns the byte
    /// offset it flipped, or `None` when `bytes` is empty. Each `key`
    /// (e.g. a checkpoint slot index) picks an independent position.
    pub fn corrupt(&self, bytes: &mut [u8], key: u64) -> Option<usize> {
        if bytes.is_empty() {
            return None;
        }
        let draw = self.decide("fault.corrupt", key);
        let offset = (draw >> 3) as usize % bytes.len();
        bytes[offset] ^= 1 << (draw & 7);
        Some(offset)
    }

    /// A seed-chosen truncation point strictly inside `0..len` (or 0 when
    /// `len` is 0) — feed it to a slicing operation to simulate a torn
    /// write.
    pub fn truncate_len(&self, len: usize, key: u64) -> usize {
        if len == 0 {
            return 0;
        }
        self.decide("fault.truncate", key) as usize % len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_schedule_is_a_pure_function_of_the_seed() {
        let a = FaultPlan::new(41).panic_rate(0.3).stalls(0.2, 50);
        let b = FaultPlan::new(41).panic_rate(0.3).stalls(0.2, 50);
        for i in 0..200 {
            assert_eq!(a.job_is_faulty(i), b.job_is_faulty(i));
            assert_eq!(a.stall_for(i as u64, i % 7), b.stall_for(i as u64, i % 7));
        }
        let mut x = vec![0u8; 64];
        let mut y = vec![0u8; 64];
        assert_eq!(a.corrupt(&mut x, 3), b.corrupt(&mut y, 3));
        assert_eq!(x, y);
    }

    #[test]
    fn distinct_seeds_schedule_distinct_faults() {
        let a = FaultPlan::new(1).panic_rate(0.5);
        let b = FaultPlan::new(2).panic_rate(0.5);
        let differ = (0..256).any(|i| a.job_is_faulty(i) != b.job_is_faulty(i));
        assert!(differ, "seeds 1 and 2 scheduled identical faults");
    }

    #[test]
    fn rates_are_honored_roughly() {
        let plan = FaultPlan::new(7).panic_rate(0.25);
        let faulty = (0..4000).filter(|&i| plan.job_is_faulty(i)).count();
        assert!((800..1200).contains(&faulty), "rate 0.25 hit {faulty}/4000");
        assert!((0..4000).all(|i| !FaultPlan::new(7).job_is_faulty(i)));
        let always = FaultPlan::new(7).panic_rate(2.0);
        assert!(
            (0..100).all(|i| always.job_is_faulty(i)),
            "rate clamps to 1"
        );
    }

    #[test]
    fn panic_window_respects_the_attempt_bound() {
        let plan = FaultPlan::new(11).panic_rate(1.0).panic_attempts(2);
        assert!(plan.should_panic(0, 1));
        assert!(plan.should_panic(0, 2));
        assert!(!plan.should_panic(0, 3));
        let caught = std::panic::catch_unwind(|| plan.maybe_panic(5, 1)).unwrap_err();
        let message = crate::batch::panic_message(caught.as_ref());
        assert_eq!(message, "injected fault: job 5 attempt 1");
        plan.maybe_panic(5, 3); // outside the window: no panic
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let plan = FaultPlan::new(13);
        let clean = vec![0xA5u8; 128];
        let mut dirty = clean.clone();
        let offset = plan.corrupt(&mut dirty, 0).unwrap();
        let flipped: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(c, d)| (c ^ d).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_ne!(clean[offset], dirty[offset]);
        assert_eq!(plan.corrupt(&mut [], 0), None);
    }

    #[test]
    fn truncation_points_stay_in_bounds() {
        let plan = FaultPlan::new(17);
        assert_eq!(plan.truncate_len(0, 0), 0);
        for key in 0..100 {
            let cut = plan.truncate_len(37, key);
            assert!(cut < 37, "cut {cut} out of bounds");
        }
        // And they spread: not every key lands on the same point.
        let first = plan.truncate_len(1000, 0);
        assert!((1..100).any(|k| plan.truncate_len(1000, k) != first));
    }

    #[test]
    fn stalls_only_fire_when_configured() {
        let off = FaultPlan::new(19);
        assert_eq!(off.stall_for(0, 0), None);
        let on = FaultPlan::new(19).stalls(1.0, 250);
        assert_eq!(on.stall_for(0, 0), Some(Duration::from_micros(250)));
        on.maybe_stall(0, 0);
    }
}
