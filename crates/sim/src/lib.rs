//! Synchronous population-model simulation substrate.
//!
//! This crate implements the communication and execution model of
//! *Population Stability: Regulating Size in the Presence of an Adversary*
//! (Goldwasser, Ostrovsky, Scafuro, Sealfon — PODC 2018), which is a
//! synchronous variant of the population model of Angluin et al.:
//!
//! * time proceeds in **rounds**; in each round a random matching covering at
//!   least a `γ` fraction of the agents is sampled and matched agents exchange
//!   one message each,
//! * agents may **split** into two identical copies or **self-destruct**,
//! * a worst-case **adversary** observes the complete state of every agent and
//!   may insert, delete or modify up to `K` agents per round, *before* the
//!   round's matching is sampled (the schedule is unknown to the adversary in
//!   advance).
//!
//! The substrate is protocol-agnostic: a protocol is anything implementing
//! [`Protocol`], and the paper's protocol as well as all baselines are
//! expressed against this trait. The engine is deterministic given a seed.
//!
//! # Quick example
//!
//! One generic driver runs everything: [`Engine::run`] takes a [`RunSpec`]
//! (stop condition + thread configuration) and an [`Observer`] (what to
//! watch — `()` for nothing, [`RecordStats`] for a metrics trace, composed
//! with [`Stride`]/[`Tee`]/[`OnRound`]).
//!
//! ```
//! use popstab_sim::{protocols::Inert, Engine, MetricsRecorder, RecordStats, RunSpec, SimConfig};
//!
//! // An inert population: nobody splits, nobody dies.
//! let cfg = SimConfig::builder().seed(7).build().unwrap();
//! let mut engine = Engine::with_population(Inert, cfg, 100);
//!
//! // Recording-free fast path; the outcome carries the population band.
//! let outcome = engine.run(RunSpec::rounds(10), &mut ());
//! assert_eq!(outcome.executed, 10);
//! assert_eq!(outcome.population_range(), (100, 100));
//!
//! // Same trajectory with a full metrics trace, owned by the caller.
//! let mut rec = MetricsRecorder::new();
//! engine.run(RunSpec::rounds(10), &mut RecordStats::new(&mut rec));
//! assert_eq!(rec.len(), 10);
//! assert_eq!(engine.population(), 100);
//! ```
//!
//! A declarative [`batch::Scenario`] bundles the `(protocol, adversary,
//! config, initial population)` tuple so sweeps and registries can build
//! jobs without hand-rolling engine construction.
//!
//! Running engines checkpoint exactly: [`Engine::snapshot`] captures
//! everything the future depends on into a versioned [`Snapshot`]
//! (std-only binary format, [`snapshot::SNAPSHOT_FORMAT_VERSION`]),
//! [`Engine::restore`] resumes it bit-for-bit, and
//! [`Snapshot::fork`] / [`batch::Scenario::fork`] branch one shared prefix
//! into many divergent futures — see the [`snapshot`] module docs.
//!
//! The substrate is also fault-tolerant without giving up determinism:
//! [`batch::BatchRunner::run_faulty`] retries and quarantines panicking
//! jobs (a retried job re-derives identical inputs, so recovery is
//! bit-exact), snapshots carry a verified checksum and are written
//! atomically, [`Checkpoint`] auto-checkpoints a running engine and
//! [`Checkpoint::scan`] finds the latest valid file to resume from, and
//! [`fault::FaultPlan`] injects reproducible faults to prove all of it —
//! see the [`batch`], [`snapshot`] and [`fault`] module docs.
//!
//! # Parallel execution and the determinism contract
//!
//! The substrate parallelizes on two axes, and **both are bit-identical to
//! serial execution for every worker count and scheduling order**:
//!
//! * **Across jobs** — observing the paper's asymptotic guarantees takes
//!   many independent trials at large `N`. The [`batch`] module fans
//!   `(protocol, adversary, config, seed)` jobs across a scoped thread
//!   pool: [`BatchRunner::run`] returns results in job order, each job
//!   derives all of its randomness from its own seed ([`batch::job_seed`] /
//!   [`rng::derive_seed`]), and no mutable state is shared between jobs, so
//!   a parallel sweep reproduces a serial one exactly. Trial loops
//!   throughout the workspace (the drift measurements, the experiment
//!   sweeps, the figures with their `--jobs` flag) are expressed as
//!   batches.
//! * **Inside a round** — agent randomness is *counter-output*
//!   ([`rng::counter_seed`] keying [`rng::CounterRng`], stream version
//!   [`rng::AGENT_STREAM_VERSION`]): agent slot `s` in round `r` draws
//!   from a stateless stream keyed on `(seed, r, s)`, never from a shared
//!   sequential stream. Because no agent's coins depend on any other
//!   agent having drawn first, the engine's step phase shards across a
//!   persistent [`batch::ShardPool`] ([`Threads::Sharded`] in the
//!   [`RunSpec`]) with per-shard split/death lists merged in slot order.
//!   The matching is counter-*keyed* the same way
//!   ([`matching::MATCHING_STREAM_VERSION`]): each round's pairs are a
//!   pure function of its round key, and above
//!   [`matching::KEYED_PERMUTATION_MIN_POPULATION`] their construction
//!   shards across the same pool — `--round-threads 32` and
//!   `--round-threads 1` produce the same trajectory byte for byte (CI
//!   diffs them every push).
//!
//! Observers never perturb the trajectory: the round loop is identical
//! whether a run records everything or nothing, so a recording run, a
//! sharded run and the `()` fast path replay the same simulation from the
//! same seed (golden fixtures under `tests/golden/` pin this byte for
//! byte).

pub mod adversary;
pub mod agent;
pub mod batch;
pub mod columns;
pub mod config;
pub mod driver;
pub mod engine;
pub mod error;
pub mod fault;
pub mod matching;
pub mod metrics;
pub mod protocols;
pub mod rng;
pub mod snapshot;
pub mod trace;

pub use adversary::{Adversary, Alteration, NoOpAdversary, RoundContext};
pub use agent::{Action, Observable, Observation, Protocol};
pub use batch::{
    BatchReport, BatchRunner, ForkBranch, JobFailure, JobOutcome, RetryPolicy, Scenario, ShardPanic,
};
pub use columns::{ColumnarProtocol, ColumnarStep};
pub use config::{SimConfig, SimConfigBuilder};
pub use driver::{
    EngineView, Observer, OnRound, RecordStats, RunOutcome, RunSpec, Stop, Stride, Tee, Threads,
};
pub use engine::{Engine, HaltReason, RoundReport};
pub use error::SimError;
pub use fault::FaultPlan;
pub use matching::{Matching, MatchingModel};
pub use metrics::{MetricsRecorder, RoundStats};
pub use rng::SimRng;
pub use snapshot::{
    Checkpoint, RecoveryScan, Snapshot, SnapshotError, SnapshotReader, SnapshotState,
    SNAPSHOT_FORMAT_VERSION,
};
pub use trace::Trajectory;
