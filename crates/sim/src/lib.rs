//! Synchronous population-model simulation substrate.
//!
//! This crate implements the communication and execution model of
//! *Population Stability: Regulating Size in the Presence of an Adversary*
//! (Goldwasser, Ostrovsky, Scafuro, Sealfon — PODC 2018), which is a
//! synchronous variant of the population model of Angluin et al.:
//!
//! * time proceeds in **rounds**; in each round a random matching covering at
//!   least a `γ` fraction of the agents is sampled and matched agents exchange
//!   one message each,
//! * agents may **split** into two identical copies or **self-destruct**,
//! * a worst-case **adversary** observes the complete state of every agent and
//!   may insert, delete or modify up to `K` agents per round, *before* the
//!   round's matching is sampled (the schedule is unknown to the adversary in
//!   advance).
//!
//! The substrate is protocol-agnostic: a protocol is anything implementing
//! [`Protocol`], and the paper's protocol as well as all baselines are
//! expressed against this trait. The engine is deterministic given a seed.
//!
//! # Quick example
//!
//! ```
//! use popstab_sim::{Engine, SimConfig, protocols::Inert};
//!
//! // An inert population: nobody splits, nobody dies.
//! let cfg = SimConfig::builder().seed(7).build().unwrap();
//! let mut engine = Engine::with_population(Inert, cfg, 100);
//! engine.run_rounds(10);
//! assert_eq!(engine.population(), 100);
//! ```

pub mod adversary;
pub mod agent;
pub mod config;
pub mod engine;
pub mod error;
pub mod matching;
pub mod metrics;
pub mod protocols;
pub mod rng;
pub mod trace;

pub use adversary::{Adversary, Alteration, NoOpAdversary, RoundContext};
pub use agent::{Action, Observable, Observation, Protocol};
pub use config::{SimConfig, SimConfigBuilder};
pub use engine::{Engine, HaltReason, RoundReport};
pub use error::SimError;
pub use matching::{Matching, MatchingModel};
pub use metrics::{MetricsRecorder, RoundStats};
pub use rng::SimRng;
pub use trace::Trajectory;
