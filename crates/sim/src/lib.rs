//! Synchronous population-model simulation substrate.
//!
//! This crate implements the communication and execution model of
//! *Population Stability: Regulating Size in the Presence of an Adversary*
//! (Goldwasser, Ostrovsky, Scafuro, Sealfon — PODC 2018), which is a
//! synchronous variant of the population model of Angluin et al.:
//!
//! * time proceeds in **rounds**; in each round a random matching covering at
//!   least a `γ` fraction of the agents is sampled and matched agents exchange
//!   one message each,
//! * agents may **split** into two identical copies or **self-destruct**,
//! * a worst-case **adversary** observes the complete state of every agent and
//!   may insert, delete or modify up to `K` agents per round, *before* the
//!   round's matching is sampled (the schedule is unknown to the adversary in
//!   advance).
//!
//! The substrate is protocol-agnostic: a protocol is anything implementing
//! [`Protocol`], and the paper's protocol as well as all baselines are
//! expressed against this trait. The engine is deterministic given a seed.
//!
//! # Quick example
//!
//! ```
//! use popstab_sim::{Engine, SimConfig, protocols::Inert};
//!
//! // An inert population: nobody splits, nobody dies.
//! let cfg = SimConfig::builder().seed(7).build().unwrap();
//! let mut engine = Engine::with_population(Inert, cfg, 100);
//! engine.run_rounds(10);
//! assert_eq!(engine.population(), 100);
//! ```
//!
//! # Parallel execution and the determinism contract
//!
//! The substrate parallelizes on two axes, and **both are bit-identical to
//! serial execution for every worker count and scheduling order**:
//!
//! * **Across jobs** — observing the paper's asymptotic guarantees takes
//!   many independent trials at large `N`. The [`batch`] module fans
//!   `(protocol, adversary, config, seed)` jobs across a scoped thread
//!   pool: [`BatchRunner::run`] returns results in job order, each job
//!   derives all of its randomness from its own seed ([`batch::job_seed`] /
//!   [`rng::derive_seed`]), and no mutable state is shared between jobs, so
//!   a parallel sweep reproduces a serial one exactly. Trial loops
//!   throughout the workspace (the drift measurements, the experiment
//!   sweeps, the figures with their `--jobs` flag) are expressed as
//!   batches.
//! * **Inside a round** — agent randomness is *counter-output*
//!   ([`rng::counter_seed`] keying [`rng::CounterRng`], stream version
//!   [`rng::AGENT_STREAM_VERSION`]): agent slot `s` in round `r` draws
//!   from a stateless stream keyed on `(seed, r, s)`, never from a shared
//!   sequential stream. Because no agent's coins depend on any other
//!   agent having drawn first, the engine's step phase shards across a
//!   persistent [`batch::ShardPool`] ([`Engine::run_until_par`],
//!   [`Engine::run_rounds_par`], [`Engine::par_round`]) with per-shard
//!   split/death lists merged in slot order. The matching is
//!   counter-*keyed* the same way ([`matching::MATCHING_STREAM_VERSION`]):
//!   each round's pairs are a pure function of its round key, and above
//!   [`matching::KEYED_PERMUTATION_MIN_POPULATION`] their construction
//!   shards across the same pool — `--round-threads 32` and
//!   `--round-threads 1` produce the same trajectory byte for byte (CI
//!   diffs them every push).
//!
//! Inside a single job, the engine additionally offers allocation-free fast
//! paths for the hot loop: [`Engine::run_until`] (no stats recording, early
//! exit on a per-round predicate) and [`Engine::run_epochs`] (records one
//! [`RoundStats`] per epoch boundary); [`SimConfig::metrics_phase`] offsets
//! the recording stride so suites that consume one specific round per epoch
//! (e.g. the variance estimator's evaluation snapshots) can keep recording
//! on at a per-epoch cost. All of these execute bit-identical rounds to
//! [`Engine::run_round`] — they only change the recording side channel.

pub mod adversary;
pub mod agent;
pub mod batch;
pub mod config;
pub mod engine;
pub mod error;
pub mod matching;
pub mod metrics;
pub mod protocols;
pub mod rng;
pub mod trace;

pub use adversary::{Adversary, Alteration, NoOpAdversary, RoundContext};
pub use agent::{Action, Observable, Observation, Protocol};
pub use batch::BatchRunner;
pub use config::{SimConfig, SimConfigBuilder};
pub use engine::{Engine, HaltReason, RoundReport};
pub use error::SimError;
pub use matching::{Matching, MatchingModel};
pub use metrics::{MetricsRecorder, RoundStats};
pub use rng::SimRng;
pub use trace::Trajectory;
