//! Random matching schedules.
//!
//! The paper's communication model: *"the pairs of agents that are able to
//! communicate in each round are selected by choosing a random matching of at
//! least a γ fraction of surviving agents"*, independently each round, with
//! the schedule unknown to the adversary in advance.
//!
//! # Counter-keyed sampling
//!
//! Since matching stream version [`MATCHING_STREAM_VERSION`] the sampler is
//! *counter-keyed*: round `r`'s matching is a pure function of a per-round
//! key (derived by the engine as `round_key(match_master, r)`), never of a
//! sequential stream position — so rounds are addressable, and serial and
//! parallel rounds consume identical randomness by construction. Within a
//! round the sampler is hybrid (see
//! [`KEYED_PERMUTATION_MIN_POPULATION`]): small populations run an exactly
//! uniform keyed Fisher–Yates shuffle inline, while large ones realize the
//! random permutation as a keyed invertible mixing network over the slot
//! space ([`SlotPermutation`]). Because `perm(i)` is a stateless function
//! of `(key, i)`, pair `p` of a large matching can be computed
//! independently of every other pair — so the construction shards across
//! the engine's [`ShardPool`]
//! ([`sample_matching_into_par`]) with results **bit-identical to the
//! serial sampler for every worker count**, removing the last serial
//! `O(population)` stretch from the parallel round exactly where
//! populations are large enough for it to bound the speedup.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::batch::{shard_range, SendPtr, ShardPool};
use crate::error::SimError;
use crate::rng::{sub_seed, CounterRng, SimRng};

/// Version of the engine's matching stream: the mapping from `(match
/// master key, round)` to the sampled pairs. Bumped whenever that mapping
/// changes, which invalidates the golden fixtures under `tests/golden/`.
///
/// * v1 — partial Fisher–Yates over an index buffer, consuming a
///   sequential `SimRng` matching stream (one draw per shuffled slot).
/// * v2 — counter-keyed: each round's pairs are a pure function of its
///   round key. Populations under [`KEYED_PERMUTATION_MIN_POPULATION`]
///   run the same partial Fisher–Yates from a per-round keyed stream;
///   larger ones use a keyed [`SlotPermutation`], pair `p` being
///   `(perm(2p), perm(2p+1))` — computable independently per pair (and
///   hence in parallel).
pub const MATCHING_STREAM_VERSION: u32 = 2;

/// How the per-round random matching is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MatchingModel {
    /// Every agent is matched every round (one agent idle when the population
    /// is odd). This is `γ = 1`.
    #[default]
    Full,
    /// Exactly `⌊γ·m/2⌋` uniformly random disjoint pairs each round.
    ExactFraction(f64),
    /// A fraction drawn uniformly from `[min_gamma, 1]` each round — models
    /// the paper's *lower bound* semantics where only `γ` is guaranteed.
    RandomFraction {
        /// Guaranteed lower bound on the matched fraction.
        min_gamma: f64,
    },
}

impl MatchingModel {
    /// The guaranteed matched fraction `γ` of this model.
    pub fn gamma(&self) -> f64 {
        match *self {
            MatchingModel::Full => 1.0,
            MatchingModel::ExactFraction(g) => g,
            MatchingModel::RandomFraction { min_gamma } => min_gamma,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the fraction is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        let g = self.gamma();
        if !(g > 0.0 && g <= 1.0) {
            return Err(SimError::invalid_config(
                "matching",
                format!("gamma must be in (0, 1], got {g}"),
            ));
        }
        Ok(())
    }
}

/// Sentinel for "unmatched" in the compact partner table built by
/// [`Matching::partner_table`]. A real partner index cannot reach it:
/// matchings index agents with `u32`, and the pair list itself would
/// overflow memory long before `2³² − 1` agents.
pub const UNMATCHED: u32 = u32::MAX;

/// A sampled matching: disjoint index pairs into the population slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    pairs: Vec<(u32, u32)>,
}

impl Matching {
    /// The matched pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no agent is matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of matched agents (`2 × len`).
    pub fn matched_agents(&self) -> usize {
        self.pairs.len() * 2
    }

    /// Builds the compact partner lookup: `partner[i] = j` iff `{i, j}`
    /// matched, [`UNMATCHED`] otherwise. The `u32`-sentinel form halves the
    /// table's memory traffic versus `Option<u32>`, which shows up directly
    /// in engine rounds/sec at large populations — it is the one partner
    /// representation used throughout the workspace.
    pub fn partner_table(&self, population: usize) -> Vec<u32> {
        let mut table = Vec::new();
        self.partner_table_into(&mut table, population);
        table
    }

    /// As [`partner_table`](Matching::partner_table), but reusing `table`'s
    /// allocation (the engine's per-round path).
    pub fn partner_table_into(&self, table: &mut Vec<u32>, population: usize) {
        table.clear();
        table.resize(population, UNMATCHED);
        for &(a, b) in &self.pairs {
            table[a as usize] = b;
            table[b as usize] = a;
        }
    }
}

/// Population at which the sampler switches from the serial keyed
/// Fisher–Yates shuffle to the shardable [`SlotPermutation`].
///
/// Below it (a ≤ 16-bit slot space) the shuffle wins on every axis: it is
/// *exactly* uniform, and at a couple of ns per slot it is faster than any
/// keyed bijection strong enough to pass the chi-squared suites below —
/// while rounds this small are nowhere near the Amdahl ceiling that
/// parallel matching exists to lift. From 2¹⁶ agents up, the permutation's
/// four-pass tier is statistically clean (partner-bucket chi-squared at
/// 120k trials), its serial cost reaches parity with the shuffle (whose
/// random swaps start cache-missing), and the pair construction shards
/// across the round pool. Both branches are pure functions of
/// `(population, model, mkey)`, so the serial/parallel determinism
/// contract holds on either side of the boundary.
pub const KEYED_PERMUTATION_MIN_POPULATION: usize = 1 << 16;

/// Maximum mixing passes of [`SlotPermutation`] (the narrowest-domain
/// tier runs all of them; see [`SlotPermutation::new`] for the schedule).
/// Each pass is keyed xor, masked odd multiply, masked xorshift — about
/// half a SplitMix64 finalizer — so the wide-domain hot path (four
/// passes, walk ≈ 1) costs ~2 finalizers per walk step. (A Feistel
/// network is the textbook choice here, but costs one finalizer per
/// Feistel round; at the six rounds it needs to mix well it made the
/// *serial* matching ~6× slower than the Fisher–Yates shuffle, which
/// this construction must not be.)
const MIX_PASSES: usize = 12;

/// Walk-domain width at which four tight-domain passes mix to statistical
/// uniformity (clean partner-bucket chi-squared at 120k trials; the
/// sampler only engages the permutation at
/// [`KEYED_PERMUTATION_MIN_POPULATION`], i.e. at this width or above —
/// narrower tiers exist for direct users of the type). Below it a masked
/// multiply has too few high bits to diffuse into, so the narrower tiers
/// walk a 4× oversized domain (the rejection steps compose the cipher
/// with itself) and run more passes — populations that small are cheap to
/// match anyway.
const FULL_STRENGTH_BITS: u32 = 16;

/// Pass count of the 14–15-bit tier (wide enough for tight-domain walks,
/// too narrow for the four-pass schedule: walk-free 14-bit domains need
/// the fifth pass to clear the chi-squared bar).
const MID_TIER_PASSES: u32 = 5;

/// Floor on the walk-domain width, in bits. Tiny populations would
/// otherwise get tiny domains, where even many mixing passes visibly
/// under-mix; walking a ≥ 256-element domain instead costs extra cycle-walk
/// steps on populations that are trivially cheap anyway, and keeps the
/// construction in its well-mixed regime at every size.
const MIN_DOMAIN_BITS: u32 = 8;

/// A keyed pseudo-random permutation of the slot space `0..n`: an
/// invertible mixing network (keyed xor, odd-constant multiply, xorshift —
/// each step a bijection mod `2^bits`) over the smallest adequate
/// power-of-two domain, restricted to `[0, n)` by cycle walking.
///
/// `apply(i)` is a pure function of `(key, n, i)` — no state, no draw
/// order — which is what makes the matching sampler shardable: any worker
/// can compute any pair of the matching independently and the result is
/// identical for every work division. Distinct keys give statistically
/// independent permutations (cross-validated against the naive
/// Fisher–Yates sampler by the chi-squared tests below).
#[derive(Debug, Clone, Copy)]
pub struct SlotPermutation {
    /// Per-pass subkeys, expanded once per permutation (i.e. once per
    /// engine round — never per slot).
    pass_keys: [u64; MIX_PASSES],
    /// Mixing passes this domain width runs (see
    /// [`SlotPermutation::new`]).
    passes: u32,
    /// Permutation size: `apply` maps `[0, n)` onto itself.
    n: u64,
    /// The walk domain is `2^bits ≥ n` (and `< 2n` above the
    /// [`MIN_DOMAIN_BITS`] floor, so the expected walk length is < 2).
    mask: u64,
    /// Cross-half fold distances, alternating between passes (a fixed
    /// single distance leaves shift-invariant structure the pair-frequency
    /// tests can see at walk-free power-of-two populations).
    shifts: [u32; 2],
}

/// Odd multipliers of the mixing passes (the SplitMix64 finalizer
/// constants and the MurmurHash3 finalizer constants): multiplication by
/// an odd constant is a bijection mod any power of two, and these are
/// empirically strong diffusers.
const MIX_MULS: [u64; MIX_PASSES] = [
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xFF51_AFD7_ED55_8CCD,
    0xC4CE_B9FE_1A85_EC53,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xFF51_AFD7_ED55_8CCD,
    0xC4CE_B9FE_1A85_EC53,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xFF51_AFD7_ED55_8CCD,
    0xC4CE_B9FE_1A85_EC53,
];

impl SlotPermutation {
    /// The permutation of `0..n` identified by `key`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (there is no empty permutation to walk).
    pub fn new(key: u64, n: u64) -> Self {
        assert!(n > 0, "SlotPermutation over an empty domain");
        // Smallest power-of-two domain covering n, floored so the mixing
        // passes have enough width to work with (see MIN_DOMAIN_BITS).
        let mut bits = (64 - (n - 1).leading_zeros()).max(MIN_DOMAIN_BITS);
        // The pass/domain schedule, each tier validated by 120–160k-trial
        // partner-bucket chi-squared probes: wide domains mix fully in
        // four (≥ 16 bits) or five (14–15 bits) passes over the tight
        // power-of-two domain; narrower ones additionally walk a 4×
        // oversized space (the rejection steps compose the cipher with
        // itself, expected ~4 applications per slot) and, below 11 bits,
        // run every pass — affordable because the per-slot cost only
        // rises as the slot count collapses.
        let passes = if bits >= FULL_STRENGTH_BITS {
            4
        } else if bits >= 14 {
            MID_TIER_PASSES
        } else {
            let narrow = bits <= 10;
            bits += 2;
            if narrow {
                MIX_PASSES as u32
            } else {
                6
            }
        };
        let mut pass_keys = [0u64; MIX_PASSES];
        for (r, pk) in pass_keys.iter_mut().enumerate() {
            *pk = sub_seed(key, r as u64);
        }
        SlotPermutation {
            pass_keys,
            passes,
            n,
            mask: if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            },
            shifts: [bits.div_ceil(2), (bits / 3).max(1)],
        }
    }

    /// The image of slot `i` under the permutation.
    ///
    /// Cycle walking: the mixing network is a bijection of the whole
    /// power-of-two domain, so iterating it from `i` must re-enter
    /// `[0, n)` (at worst by coming back around to `i` itself); the
    /// expected walk length is `domain / n < 2` once the domain exceeds
    /// the `MIN_DOMAIN_BITS` floor. The induced map on `[0, n)` is a
    /// bijection — the classic format-preserving-encryption argument.
    #[inline]
    pub fn apply(&self, i: u64) -> u64 {
        debug_assert!(i < self.n, "slot {i} outside permutation domain {}", self.n);
        let mut x = i;
        loop {
            x = self.mix(x);
            if x < self.n {
                return x;
            }
        }
    }

    /// The keyed bijection over the full walk domain: passes of (keyed
    /// xor, masked odd multiply, masked xorshift) — each step invertible
    /// mod `2^bits`, so the composition is too. The multiply diffuses low
    /// bits upward, the xorshift folds high bits back down; alternating
    /// them under distinct subkeys and multipliers avalanches the whole
    /// domain word — in four passes (~2 finalizers) on wide domains, more
    /// on narrow ones (see [`FULL_STRENGTH_BITS`]).
    // Indexed loops: each pass walks three arrays (subkey, multiplier,
    // alternating fold distance) in lockstep; the first four passes get a
    // constant bound so the hot wide-domain tier fully unrolls.
    #[allow(clippy::needless_range_loop)]
    #[inline]
    fn mix(&self, x: u64) -> u64 {
        let mut x = x;
        for i in 0..4 {
            x ^= self.pass_keys[i] & self.mask;
            x = x.wrapping_mul(MIX_MULS[i]) & self.mask;
            x ^= x >> self.shifts[i & 1];
        }
        for i in 4..self.passes as usize {
            x ^= self.pass_keys[i] & self.mask;
            x = x.wrapping_mul(MIX_MULS[i]) & self.mask;
            x ^= x >> self.shifts[i & 1];
        }
        x
    }
}

/// Sub-stream indices under the per-round matching key: the permutation
/// key and the `RandomFraction` fraction draw must not alias.
const PERM_SUBSTREAM: u64 = 0;
const FRACTION_SUBSTREAM: u64 = 1;

/// The number of pairs `model` matches over `population` agents, drawing
/// the `RandomFraction` fraction (if any) from the round's keyed stream.
fn planned_pairs(population: usize, model: MatchingModel, mkey: u64) -> usize {
    let fraction = match model {
        MatchingModel::Full => 1.0,
        MatchingModel::ExactFraction(g) => g,
        MatchingModel::RandomFraction { min_gamma } => {
            CounterRng::keyed(sub_seed(mkey, FRACTION_SUBSTREAM)).random_range(min_gamma..=1.0)
        }
    };
    let target_agents = (fraction * population as f64).floor() as usize;
    (target_agents / 2).min(population / 2)
}

/// Fills `out` with the first `n_pairs` pairs of a keyed Fisher–Yates
/// shuffle of the slot space — the sub-[`KEYED_PERMUTATION_MIN_POPULATION`]
/// branch of the sampler. Exactly uniform; serial (each swap depends on
/// the last), but a pure function of the round key, so the parallel round
/// paths compute it identically inline.
fn shuffle_matching_into(
    out: &mut Matching,
    indices: &mut Vec<u32>,
    population: usize,
    n_pairs: usize,
    mkey: u64,
) {
    let mut rng = CounterRng::keyed(sub_seed(mkey, PERM_SUBSTREAM));
    indices.clear();
    indices.extend(0..population as u32);
    // Partial Fisher–Yates: only the first 2·n_pairs slots are needed.
    for i in 0..(2 * n_pairs) {
        let j = rng.random_range(i..population);
        indices.swap(i, j);
    }
    out.pairs
        .extend(indices[..2 * n_pairs].chunks_exact(2).map(|c| (c[0], c[1])));
}

/// Samples the matching of the round keyed by `mkey` over `population`
/// agents according to `model`.
///
/// The result is a pure function of `(population, model, mkey)`: the engine
/// derives `mkey = round_key(match_master, round)`, so round `r`'s matching
/// is addressable without replaying rounds `0..r`. Cost is `O(population)`.
/// `indices` is shuffle scratch for the small-population branch (see
/// [`KEYED_PERMUTATION_MIN_POPULATION`]), reused so the per-round engine
/// loop performs no allocations.
pub fn sample_matching(population: usize, model: MatchingModel, mkey: u64) -> Matching {
    let mut out = Matching::default();
    let mut indices = Vec::new();
    sample_matching_into(&mut out, &mut indices, population, model, mkey);
    out
}

/// As [`sample_matching`], but writing into `out` and using `indices` as
/// shuffle scratch (the engine's per-round serial path).
pub fn sample_matching_into(
    out: &mut Matching,
    indices: &mut Vec<u32>,
    population: usize,
    model: MatchingModel,
    mkey: u64,
) {
    out.pairs.clear();
    if population < 2 {
        return;
    }
    let n_pairs = planned_pairs(population, model, mkey);
    if n_pairs == 0 {
        return;
    }
    if population < KEYED_PERMUTATION_MIN_POPULATION {
        shuffle_matching_into(out, indices, population, n_pairs, mkey);
        return;
    }
    let perm = SlotPermutation::new(sub_seed(mkey, PERM_SUBSTREAM), population as u64);
    out.pairs.extend((0..n_pairs).map(|p| {
        (
            perm.apply(2 * p as u64) as u32,
            perm.apply(2 * p as u64 + 1) as u32,
        )
    }));
}

/// As [`sample_matching_into`], with the pair construction sharded across
/// `pool`. Bit-identical to the serial sampler for every shard count:
/// below [`KEYED_PERMUTATION_MIN_POPULATION`] both run the identical keyed
/// shuffle inline (too small to be worth a dispatch), and above it pair
/// `p` is a pure function of `(mkey, p)`, shards cover disjoint contiguous
/// pair ranges, and each writes its own range of the output buffer.
pub fn sample_matching_into_par(
    out: &mut Matching,
    indices: &mut Vec<u32>,
    population: usize,
    model: MatchingModel,
    mkey: u64,
    pool: &ShardPool,
) {
    out.pairs.clear();
    if population < 2 {
        return;
    }
    let n_pairs = planned_pairs(population, model, mkey);
    if n_pairs == 0 {
        return;
    }
    if population < KEYED_PERMUTATION_MIN_POPULATION {
        shuffle_matching_into(out, indices, population, n_pairs, mkey);
        return;
    }
    let perm = SlotPermutation::new(sub_seed(mkey, PERM_SUBSTREAM), population as u64);
    out.pairs.resize(n_pairs, (0, 0));
    let nshards = pool.shards();
    let base = SendPtr(out.pairs.as_mut_ptr());
    pool.dispatch(&|s| {
        let (lo, hi) = shard_range(n_pairs, nshards, s);
        for p in lo..hi {
            let pair = (
                perm.apply(2 * p as u64) as u32,
                perm.apply(2 * p as u64 + 1) as u32,
            );
            // SAFETY: pair slot `p` belongs to exactly one shard range and
            // lies within the buffer resized above.
            unsafe { base.get().add(p).write(pair) };
        }
    });
}

/// Samples a full uniformly random permutation matching with a serial
/// Fisher–Yates shuffle over a caller-supplied sequential stream (used in
/// tests to cross-validate the keyed sampler).
pub fn sample_full_matching_naive(population: usize, rng: &mut SimRng) -> Matching {
    let mut indices: Vec<u32> = (0..population as u32).collect();
    indices.shuffle(rng);
    let pairs = indices.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    Matching { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{counter_seed, rng_from_seed};
    use std::collections::BTreeSet;

    /// A distinct matching key per `(master, trial)` for the statistical
    /// tests, mirroring how the engine keys one matching per round.
    fn trial_key(master: u64, trial: u64) -> u64 {
        counter_seed(master, trial, 0)
    }

    fn assert_valid(m: &Matching, population: usize) {
        let mut seen = BTreeSet::new();
        for &(a, b) in m.pairs() {
            assert_ne!(a, b, "self-match");
            assert!(
                (a as usize) < population && (b as usize) < population,
                "out of range"
            );
            assert!(seen.insert(a), "agent {a} matched twice");
            assert!(seen.insert(b), "agent {b} matched twice");
        }
    }

    #[test]
    fn empty_and_singleton_populations_yield_no_pairs() {
        assert!(sample_matching(0, MatchingModel::Full, trial_key(1, 0)).is_empty());
        assert!(sample_matching(1, MatchingModel::Full, trial_key(1, 1)).is_empty());
    }

    #[test]
    fn full_matching_covers_everyone_even() {
        let m = sample_matching(100, MatchingModel::Full, trial_key(2, 0));
        assert_eq!(m.matched_agents(), 100);
        assert_valid(&m, 100);
    }

    #[test]
    fn full_matching_leaves_one_out_odd() {
        let m = sample_matching(101, MatchingModel::Full, trial_key(3, 0));
        assert_eq!(m.matched_agents(), 100);
        assert_valid(&m, 101);
    }

    #[test]
    fn exact_fraction_matches_expected_count() {
        let m = sample_matching(1000, MatchingModel::ExactFraction(0.5), trial_key(4, 0));
        assert_eq!(m.matched_agents(), 500);
        assert_valid(&m, 1000);
    }

    #[test]
    fn random_fraction_respects_lower_bound() {
        for trial in 0..50 {
            let m = sample_matching(
                1000,
                MatchingModel::RandomFraction { min_gamma: 0.25 },
                trial_key(5, trial),
            );
            assert!(
                m.matched_agents() >= 250 - 1,
                "matched {}",
                m.matched_agents()
            );
            assert_valid(&m, 1000);
        }
    }

    #[test]
    fn slot_permutation_is_a_bijection_at_every_size() {
        for n in [
            1u64, 2, 3, 5, 16, 17, 100, 255, 256, 257, 1000, 65_536, 70_001,
        ] {
            for key in [0u64, 1, trial_key(6, n)] {
                let perm = SlotPermutation::new(key, n);
                let mut image: Vec<u64> = (0..n).map(|i| perm.apply(i)).collect();
                image.sort_unstable();
                assert!(
                    image.iter().enumerate().all(|(i, &v)| v == i as u64),
                    "not a bijection at n={n}, key={key}"
                );
            }
        }
    }

    /// The wide-domain (four-pass) regime of the permutation, which the
    /// small-`n` distribution tests never reach: at `n = 50000` (16-bit
    /// walk domain) the images of a few fixed slots, taken across many
    /// keys, must be uniform over coarse buckets of the slot space.
    #[test]
    fn slot_permutation_is_uniform_in_the_wide_domain_regime() {
        let n = 50_000u64;
        let buckets = 25usize;
        let keys = 8_000u64;
        for probe_slot in [0u64, 1, 24_999, 49_999] {
            let mut counts = vec![0u32; buckets];
            for k in 0..keys {
                let perm = SlotPermutation::new(trial_key(15, k), n);
                let image = perm.apply(probe_slot);
                counts[(image * buckets as u64 / n) as usize] += 1;
            }
            let expected = keys as f64 / buckets as f64;
            let chi2: f64 = counts
                .iter()
                .map(|&c| {
                    let d = f64::from(c) - expected;
                    d * d / expected
                })
                .sum();
            // df = 24; χ² beyond 60 is ~p < 10⁻⁴.
            assert!(chi2 < 60.0, "slot {probe_slot} bucket chi-squared {chi2}");
        }
    }

    /// Partner-of-agent-0 chi-squared against the *exact* expectation
    /// (agent 0 can never partner itself), at one population per sampler
    /// regime: 250/1000/8192/16384 run the keyed Fisher–Yates shuffle
    /// (below [`KEYED_PERMUTATION_MIN_POPULATION`]), 70000 the keyed
    /// permutation's four-pass wide tier. The acceptance bound is ~5σ of
    /// the chi-squared statistic; the residual permutation-tier biases
    /// measured during tuning sat well below it at 4× these trial counts.
    #[test]
    fn partner_chi_squared_is_clean_in_every_pass_tier() {
        for (n, buckets, trials) in [
            (250usize, 125usize, 40_000u64),
            (1_000, 500, 40_000),
            (8_192, 512, 10_000),
            (16_384, 512, 10_000),
            (70_000, 500, 4_000),
        ] {
            let mut counts = vec![0u32; buckets];
            let mut out = Matching::default();
            let mut scratch = Vec::new();
            for t in 0..trials {
                sample_matching_into(
                    &mut out,
                    &mut scratch,
                    n,
                    MatchingModel::Full,
                    trial_key(97, t),
                );
                let &(a, b) = out
                    .pairs()
                    .iter()
                    .find(|&&(a, b)| a == 0 || b == 0)
                    .expect("agent 0 matched under Full");
                let partner = if a == 0 { b } else { a } as usize;
                counts[partner * buckets / n] += 1;
            }
            let mut expect = vec![0f64; buckets];
            for partner in 1..n {
                expect[partner * buckets / n] += trials as f64 / (n as f64 - 1.0);
            }
            let chi2: f64 = counts
                .iter()
                .zip(&expect)
                .map(|(&c, &e)| {
                    let d = f64::from(c) - e;
                    d * d / e
                })
                .sum();
            let df = buckets as f64 - 1.0;
            assert!(
                chi2 < df + 5.0 * (2.0 * df).sqrt(),
                "n={n} ({trials} trials): partner bucket chi-squared {chi2:.1} (df {df})"
            );
        }
    }

    #[test]
    fn slot_permutation_differs_across_keys() {
        let n = 64u64;
        let a = SlotPermutation::new(trial_key(7, 0), n);
        let b = SlotPermutation::new(trial_key(7, 1), n);
        let fixed = (0..n).filter(|&i| a.apply(i) == b.apply(i)).count();
        // Two independent uniform permutations agree on ~1 point.
        assert!(
            fixed < 8,
            "permutations nearly identical: {fixed} agreements"
        );
    }

    #[test]
    fn partner_table_is_symmetric() {
        let m = sample_matching(64, MatchingModel::ExactFraction(0.75), trial_key(8, 0));
        let table = m.partner_table(64);
        for (i, &p) in table.iter().enumerate() {
            if p != UNMATCHED {
                assert_eq!(table[p as usize], i as u32);
            }
        }
        let matched = table.iter().filter(|&&p| p != UNMATCHED).count();
        assert_eq!(matched, m.matched_agents());
    }

    #[test]
    fn matching_is_uniform_ish() {
        // Agent 0's partner should be near-uniform over the other 63 agents.
        let mut counts = vec![0usize; 64];
        let trials = 20_000;
        for t in 0..trials {
            let m = sample_matching(64, MatchingModel::Full, trial_key(9, t));
            let partner = m.partner_table(64)[0];
            assert_ne!(partner, UNMATCHED);
            counts[partner as usize] += 1;
        }
        let expected = trials as f64 / 63.0;
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let ratio = c as f64 / expected;
            assert!((0.75..1.25).contains(&ratio), "partner {i} ratio {ratio}");
        }
    }

    #[test]
    fn gamma_accessor() {
        assert_eq!(MatchingModel::Full.gamma(), 1.0);
        assert_eq!(MatchingModel::ExactFraction(0.5).gamma(), 0.5);
        assert_eq!(
            MatchingModel::RandomFraction { min_gamma: 0.25 }.gamma(),
            0.25
        );
    }

    #[test]
    fn validate_rejects_bad_gamma() {
        assert!(MatchingModel::ExactFraction(0.0).validate().is_err());
        assert!(MatchingModel::ExactFraction(1.5).validate().is_err());
        assert!(MatchingModel::ExactFraction(-0.1).validate().is_err());
        assert!(MatchingModel::ExactFraction(0.3).validate().is_ok());
        assert!(MatchingModel::Full.validate().is_ok());
    }

    #[test]
    fn parallel_sampler_is_bit_identical_to_serial_for_every_shard_count() {
        use crate::batch::ShardPool;
        // Straddles KEYED_PERMUTATION_MIN_POPULATION: the small sizes pin
        // the inline-shuffle branch, 65536/70001 the sharded permutation.
        for population in [0usize, 1, 2, 3, 7, 64, 257, 1000, 65_536, 70_001] {
            for (t, model) in [
                MatchingModel::Full,
                MatchingModel::ExactFraction(0.37),
                MatchingModel::RandomFraction { min_gamma: 0.25 },
            ]
            .into_iter()
            .enumerate()
            {
                let mkey = trial_key(10, (population as u64) << 8 | t as u64);
                let mut serial = Matching::default();
                let mut scratch = Vec::new();
                sample_matching_into(&mut serial, &mut scratch, population, model, mkey);
                for shards in [1usize, 2, 3, 8] {
                    let mut par = Matching::default();
                    ShardPool::with(shards, |pool| {
                        sample_matching_into_par(
                            &mut par,
                            &mut scratch,
                            population,
                            model,
                            mkey,
                            pool,
                        );
                    });
                    assert_eq!(serial, par, "pop {population}, {shards} shards");
                }
            }
        }
    }

    // ---- cross-validation of the keyed sampler against the naive
    // ---- full-permutation Fisher–Yates sampler

    mod cross_validation {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Both samplers produce valid (pair-disjoint, in-range)
            /// matchings, and the keyed sampler covers exactly the model's
            /// γ fraction — exactly what the naive full matching covers
            /// when γ = 1.
            #[test]
            fn both_samplers_are_valid_and_cover_gamma(
                population in 0usize..1500,
                seed in 0u64..400,
                gamma in 0.05f64..=1.0,
            ) {
                let partial = sample_matching(
                    population,
                    MatchingModel::ExactFraction(gamma),
                    trial_key(11, seed),
                );
                assert_valid(&partial, population);
                // ≥ γ coverage, up to the integer floor of pairable agents.
                let want = (((gamma * population as f64).floor() as usize) / 2).min(population / 2);
                prop_assert_eq!(partial.len(), want);

                let mut rng = rng_from_seed(seed);
                let naive = sample_full_matching_naive(population, &mut rng);
                assert_valid(&naive, population);
                prop_assert_eq!(naive.len(), population / 2);
            }

            /// Fixed key/seed ⇒ identical output, run after run, for both
            /// samplers (the reproducibility half of the determinism
            /// contract; the distributional half is checked below).
            #[test]
            fn samplers_are_deterministic_under_fixed_key(
                population in 0usize..800,
                seed in 0u64..400,
            ) {
                let a = sample_matching(population, MatchingModel::Full, trial_key(12, seed));
                let b = sample_matching(population, MatchingModel::Full, trial_key(12, seed));
                prop_assert_eq!(a, b);
                let (a, b) = (
                    sample_full_matching_naive(population, &mut rng_from_seed(seed)),
                    sample_full_matching_naive(population, &mut rng_from_seed(seed)),
                );
                prop_assert_eq!(a, b);
            }
        }

        /// The keyed sampler and the naive full-permutation sampler
        /// draw from the same distribution: agent 0's partner is uniform
        /// over the other agents under both, and the two empirical
        /// histograms agree bucket-by-bucket.
        #[test]
        fn full_matching_distributions_agree() {
            let n = 16;
            let trials = 40_000u32;
            let keyed = {
                let mut counts = vec![0u32; n];
                for t in 0..trials {
                    let m = sample_matching(n, MatchingModel::Full, trial_key(13, u64::from(t)));
                    let partner = m.partner_table(n)[0];
                    assert_ne!(partner, UNMATCHED);
                    counts[partner as usize] += 1;
                }
                counts
            };
            let naive = {
                let mut counts = vec![0u32; n];
                let mut rng = rng_from_seed(1234);
                for _ in 0..trials {
                    let partner = sample_full_matching_naive(n, &mut rng).partner_table(n)[0];
                    assert_ne!(partner, UNMATCHED);
                    counts[partner as usize] += 1;
                }
                counts
            };
            let expected = f64::from(trials) / (n as f64 - 1.0);
            for i in 1..n {
                let (p, v) = (f64::from(keyed[i]), f64::from(naive[i]));
                assert!(
                    (0.85..1.15).contains(&(p / expected)),
                    "keyed sampler partner {i}: {p} vs expected {expected}"
                );
                assert!(
                    (0.85..1.15).contains(&(v / expected)),
                    "naive sampler partner {i}: {v} vs expected {expected}"
                );
                assert!(
                    (p - v).abs() < 6.0 * expected.sqrt() + 0.06 * expected,
                    "samplers disagree on partner {i}: {p} vs {v}"
                );
            }
        }

        /// Chi-squared cross-validation over the **full pair-frequency
        /// table**: for a full matching on `n` agents every unordered pair
        /// `{i, j}` appears with probability `1/(n−1)`; the χ² statistic of
        /// the empirical table against that uniform expectation must sit in
        /// the acceptance region for both samplers. This is strictly
        /// stronger than the partner-of-agent-0 marginal — a permutation
        /// family that favors, say, nearby slots pairs off-diagonally and
        /// fails here even with uniform marginals.
        #[test]
        fn pair_frequency_chi_squared_matches_naive_sampler() {
            let n = 8usize;
            let trials = 30_000u32;
            let cells = n * (n - 1) / 2; // 28 unordered pairs
            let chi_squared = |counts: &[u32]| {
                // Each trial matches all n agents: n/2 pairs per trial.
                let expected = f64::from(trials) * (n as f64 / 2.0) / cells as f64;
                counts
                    .iter()
                    .map(|&c| {
                        let d = f64::from(c) - expected;
                        d * d / expected
                    })
                    .sum::<f64>()
            };
            let cell = |a: u32, b: u32| {
                let (i, j) = if a < b { (a, b) } else { (b, a) };
                let (i, j) = (i as usize, j as usize);
                i * n - i * (i + 1) / 2 + (j - i - 1)
            };
            let mut keyed = vec![0u32; cells];
            for t in 0..trials {
                let m = sample_matching(n, MatchingModel::Full, trial_key(14, u64::from(t)));
                for &(a, b) in m.pairs() {
                    keyed[cell(a, b)] += 1;
                }
            }
            let mut naive = vec![0u32; cells];
            let mut rng = rng_from_seed(4321);
            for _ in 0..trials {
                for &(a, b) in sample_full_matching_naive(n, &mut rng).pairs() {
                    naive[cell(a, b)] += 1;
                }
            }
            // df = 27; χ² beyond 60 is ~p < 2·10⁻⁴ — far outside what a
            // healthy sampler produces, far inside what structural bias
            // (e.g. a near-slot preference) produces at 30k trials.
            let (k, v) = (chi_squared(&keyed), chi_squared(&naive));
            assert!(k < 60.0, "keyed sampler pair-frequency chi-squared {k}");
            assert!(v < 60.0, "naive sampler pair-frequency chi-squared {v}");
        }
    }
}
