//! Random matching schedules.
//!
//! The paper's communication model: *"the pairs of agents that are able to
//! communicate in each round are selected by choosing a random matching of at
//! least a γ fraction of surviving agents"*, independently each round, with
//! the schedule unknown to the adversary in advance.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::SimError;
use crate::rng::SimRng;

/// How the per-round random matching is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MatchingModel {
    /// Every agent is matched every round (one agent idle when the population
    /// is odd). This is `γ = 1`.
    #[default]
    Full,
    /// Exactly `⌊γ·m/2⌋` uniformly random disjoint pairs each round.
    ExactFraction(f64),
    /// A fraction drawn uniformly from `[min_gamma, 1]` each round — models
    /// the paper's *lower bound* semantics where only `γ` is guaranteed.
    RandomFraction {
        /// Guaranteed lower bound on the matched fraction.
        min_gamma: f64,
    },
}

impl MatchingModel {
    /// The guaranteed matched fraction `γ` of this model.
    pub fn gamma(&self) -> f64 {
        match *self {
            MatchingModel::Full => 1.0,
            MatchingModel::ExactFraction(g) => g,
            MatchingModel::RandomFraction { min_gamma } => min_gamma,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the fraction is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        let g = self.gamma();
        if !(g > 0.0 && g <= 1.0) {
            return Err(SimError::invalid_config(
                "matching",
                format!("gamma must be in (0, 1], got {g}"),
            ));
        }
        Ok(())
    }
}

/// Sentinel for "unmatched" in the compact partner table built by
/// [`Matching::partner_table`]. A real partner index cannot reach it:
/// matchings index agents with `u32`, and the pair list itself would
/// overflow memory long before `2³² − 1` agents.
pub const UNMATCHED: u32 = u32::MAX;

/// A sampled matching: disjoint index pairs into the population slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    pairs: Vec<(u32, u32)>,
}

impl Matching {
    /// The matched pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no agent is matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of matched agents (`2 × len`).
    pub fn matched_agents(&self) -> usize {
        self.pairs.len() * 2
    }

    /// Builds the compact partner lookup: `partner[i] = j` iff `{i, j}`
    /// matched, [`UNMATCHED`] otherwise. The `u32`-sentinel form halves the
    /// table's memory traffic versus `Option<u32>`, which shows up directly
    /// in engine rounds/sec at large populations — it is the one partner
    /// representation used throughout the workspace.
    pub fn partner_table(&self, population: usize) -> Vec<u32> {
        let mut table = Vec::new();
        self.partner_table_into(&mut table, population);
        table
    }

    /// As [`partner_table`](Matching::partner_table), but reusing `table`'s
    /// allocation (the engine's per-round path).
    pub fn partner_table_into(&self, table: &mut Vec<u32>, population: usize) {
        table.clear();
        table.resize(population, UNMATCHED);
        for &(a, b) in &self.pairs {
            table[a as usize] = b;
            table[b as usize] = a;
        }
    }
}

/// Samples a matching over `population` agents according to `model`.
///
/// The result is a uniformly random set of disjoint pairs covering the
/// model's fraction of agents. Cost is `O(m)`.
pub fn sample_matching(population: usize, model: MatchingModel, rng: &mut SimRng) -> Matching {
    let mut out = Matching::default();
    let mut indices = Vec::new();
    sample_matching_into(&mut out, &mut indices, population, model, rng);
    out
}

/// As [`sample_matching`], but writing into `out` and using `indices` as
/// shuffle scratch, so the per-round engine loop performs no allocations.
///
/// Consumes exactly the same RNG stream as [`sample_matching`]: one draw for
/// [`MatchingModel::RandomFraction`]'s fraction (only once `population ≥ 2`),
/// then one draw per shuffled slot.
pub fn sample_matching_into(
    out: &mut Matching,
    indices: &mut Vec<u32>,
    population: usize,
    model: MatchingModel,
    rng: &mut SimRng,
) {
    out.pairs.clear();
    if population < 2 {
        return;
    }
    let fraction = match model {
        MatchingModel::Full => 1.0,
        MatchingModel::ExactFraction(g) => g,
        MatchingModel::RandomFraction { min_gamma } => rng.random_range(min_gamma..=1.0),
    };
    let target_agents = (fraction * population as f64).floor() as usize;
    let n_pairs = (target_agents / 2).min(population / 2);
    if n_pairs == 0 {
        return;
    }
    indices.clear();
    indices.extend(0..population as u32);
    // Partial Fisher-Yates: we only need the first 2·n_pairs slots shuffled.
    for i in 0..(2 * n_pairs) {
        let j = rng.random_range(i..population);
        indices.swap(i, j);
    }
    out.pairs
        .extend(indices[..2 * n_pairs].chunks_exact(2).map(|c| (c[0], c[1])));
}

/// Samples a full uniformly random permutation matching (used in tests to
/// cross-validate the partial shuffle).
pub fn sample_full_matching_naive(population: usize, rng: &mut SimRng) -> Matching {
    let mut indices: Vec<u32> = (0..population as u32).collect();
    indices.shuffle(rng);
    let pairs = indices.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    Matching { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use std::collections::HashSet;

    fn assert_valid(m: &Matching, population: usize) {
        let mut seen = HashSet::new();
        for &(a, b) in m.pairs() {
            assert_ne!(a, b, "self-match");
            assert!(
                (a as usize) < population && (b as usize) < population,
                "out of range"
            );
            assert!(seen.insert(a), "agent {a} matched twice");
            assert!(seen.insert(b), "agent {b} matched twice");
        }
    }

    #[test]
    fn empty_and_singleton_populations_yield_no_pairs() {
        let mut rng = rng_from_seed(1);
        assert!(sample_matching(0, MatchingModel::Full, &mut rng).is_empty());
        assert!(sample_matching(1, MatchingModel::Full, &mut rng).is_empty());
    }

    #[test]
    fn full_matching_covers_everyone_even() {
        let mut rng = rng_from_seed(2);
        let m = sample_matching(100, MatchingModel::Full, &mut rng);
        assert_eq!(m.matched_agents(), 100);
        assert_valid(&m, 100);
    }

    #[test]
    fn full_matching_leaves_one_out_odd() {
        let mut rng = rng_from_seed(3);
        let m = sample_matching(101, MatchingModel::Full, &mut rng);
        assert_eq!(m.matched_agents(), 100);
        assert_valid(&m, 101);
    }

    #[test]
    fn exact_fraction_matches_expected_count() {
        let mut rng = rng_from_seed(4);
        let m = sample_matching(1000, MatchingModel::ExactFraction(0.5), &mut rng);
        assert_eq!(m.matched_agents(), 500);
        assert_valid(&m, 1000);
    }

    #[test]
    fn random_fraction_respects_lower_bound() {
        let mut rng = rng_from_seed(5);
        for _ in 0..50 {
            let m = sample_matching(
                1000,
                MatchingModel::RandomFraction { min_gamma: 0.25 },
                &mut rng,
            );
            assert!(
                m.matched_agents() >= 250 - 1,
                "matched {}",
                m.matched_agents()
            );
            assert_valid(&m, 1000);
        }
    }

    #[test]
    fn partner_table_is_symmetric() {
        let mut rng = rng_from_seed(6);
        let m = sample_matching(64, MatchingModel::ExactFraction(0.75), &mut rng);
        let table = m.partner_table(64);
        for (i, &p) in table.iter().enumerate() {
            if p != UNMATCHED {
                assert_eq!(table[p as usize], i as u32);
            }
        }
        let matched = table.iter().filter(|&&p| p != UNMATCHED).count();
        assert_eq!(matched, m.matched_agents());
    }

    #[test]
    fn matching_is_uniform_ish() {
        // Agent 0's partner should be near-uniform over the other 63 agents.
        let mut rng = rng_from_seed(7);
        let mut counts = vec![0usize; 64];
        let trials = 20_000;
        for _ in 0..trials {
            let m = sample_matching(64, MatchingModel::Full, &mut rng);
            let partner = m.partner_table(64)[0];
            assert_ne!(partner, UNMATCHED);
            counts[partner as usize] += 1;
        }
        let expected = trials as f64 / 63.0;
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let ratio = c as f64 / expected;
            assert!((0.75..1.25).contains(&ratio), "partner {i} ratio {ratio}");
        }
    }

    #[test]
    fn gamma_accessor() {
        assert_eq!(MatchingModel::Full.gamma(), 1.0);
        assert_eq!(MatchingModel::ExactFraction(0.5).gamma(), 0.5);
        assert_eq!(
            MatchingModel::RandomFraction { min_gamma: 0.25 }.gamma(),
            0.25
        );
    }

    #[test]
    fn validate_rejects_bad_gamma() {
        assert!(MatchingModel::ExactFraction(0.0).validate().is_err());
        assert!(MatchingModel::ExactFraction(1.5).validate().is_err());
        assert!(MatchingModel::ExactFraction(-0.1).validate().is_err());
        assert!(MatchingModel::ExactFraction(0.3).validate().is_ok());
        assert!(MatchingModel::Full.validate().is_ok());
    }

    // ---- cross-validation of the partial Fisher–Yates sampler against the
    // ---- naive full-permutation sampler

    mod cross_validation {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Both samplers produce valid (pair-disjoint, in-range)
            /// matchings, and the partial shuffle covers at least the
            /// model's γ fraction — exactly what the naive full matching
            /// covers when γ = 1.
            #[test]
            fn both_samplers_are_valid_and_cover_gamma(
                population in 0usize..1500,
                seed in 0u64..400,
                gamma in 0.05f64..=1.0,
            ) {
                let mut rng = rng_from_seed(seed);
                let partial =
                    sample_matching(population, MatchingModel::ExactFraction(gamma), &mut rng);
                assert_valid(&partial, population);
                // ≥ γ coverage, up to the integer floor of pairable agents.
                let want = (((gamma * population as f64).floor() as usize) / 2).min(population / 2);
                prop_assert_eq!(partial.len(), want);

                let mut rng = rng_from_seed(seed);
                let naive = sample_full_matching_naive(population, &mut rng);
                assert_valid(&naive, population);
                prop_assert_eq!(naive.len(), population / 2);
            }

            /// Fixed seed ⇒ identical output, run after run, for both
            /// samplers (the reproducibility half of the determinism
            /// contract; the distributional half is checked below).
            #[test]
            fn samplers_are_deterministic_under_fixed_seed(
                population in 0usize..800,
                seed in 0u64..400,
            ) {
                let sample_twice = |f: &dyn Fn(&mut SimRng) -> Matching| {
                    (f(&mut rng_from_seed(seed)), f(&mut rng_from_seed(seed)))
                };
                let (a, b) =
                    sample_twice(&|rng| sample_matching(population, MatchingModel::Full, rng));
                prop_assert_eq!(a, b);
                let (a, b) = sample_twice(&|rng| sample_full_matching_naive(population, rng));
                prop_assert_eq!(a, b);
            }
        }

        /// The partial Fisher–Yates sampler and the naive full-permutation
        /// sampler draw from the same distribution: agent 0's partner is
        /// uniform over the other agents under both, and the two empirical
        /// histograms agree bucket-by-bucket.
        #[test]
        fn full_matching_distributions_agree() {
            let n = 16;
            let trials = 40_000u32;
            let histogram = |f: &dyn Fn(&mut SimRng) -> Matching| {
                let mut counts = vec![0u32; n];
                let mut rng = rng_from_seed(1234);
                for _ in 0..trials {
                    let partner = f(&mut rng).partner_table(n)[0];
                    assert_ne!(partner, UNMATCHED);
                    counts[partner as usize] += 1;
                }
                counts
            };
            let partial = histogram(&|rng| sample_matching(n, MatchingModel::Full, rng));
            let naive = histogram(&|rng| sample_full_matching_naive(n, rng));
            let expected = f64::from(trials) / (n as f64 - 1.0);
            for i in 1..n {
                let (p, v) = (f64::from(partial[i]), f64::from(naive[i]));
                assert!(
                    (0.85..1.15).contains(&(p / expected)),
                    "partial sampler partner {i}: {p} vs expected {expected}"
                );
                assert!(
                    (0.85..1.15).contains(&(v / expected)),
                    "naive sampler partner {i}: {v} vs expected {expected}"
                );
                assert!(
                    (p - v).abs() < 6.0 * expected.sqrt() + 0.06 * expected,
                    "samplers disagree on partner {i}: {p} vs {v}"
                );
            }
        }
    }
}
