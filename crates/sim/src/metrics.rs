//! Per-round metrics derived from generic agent observations.

use std::collections::BTreeMap;

use crate::agent::{Observable, Observation};

/// Aggregate statistics of one recorded round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Global round number (0-based).
    pub round: u64,
    /// Population after the round's splits/deaths were applied.
    pub population: usize,
    /// Number of active (colored) agents.
    pub active: usize,
    /// Active agents with color 0.
    pub color0: usize,
    /// Active agents with color 1.
    pub color1: usize,
    /// Agents flagged as leaders this epoch (instrumentation).
    pub leaders: usize,
    /// Agents currently recruiting.
    pub recruiting: usize,
    /// Agents reporting they are in their evaluation round.
    pub in_eval: usize,
    /// The most common epoch-round value among agents, if any report one.
    pub majority_round: Option<u32>,
    /// Agents whose epoch-round differs from the majority value.
    pub wrong_round: usize,
    /// Splits executed this round.
    pub splits: usize,
    /// Protocol-initiated deaths this round (excludes adversarial deletion).
    pub deaths: usize,
    /// Agents inserted by the adversary this round.
    pub adv_inserted: usize,
    /// Agents deleted by the adversary this round.
    pub adv_deleted: usize,
    /// Agents whose memory the adversary overwrote this round.
    pub adv_modified: usize,
}

impl RoundStats {
    /// Builds the observation-derived part of the stats from a population.
    pub fn observe<S: Observable>(round: u64, agents: &[S]) -> RoundStats {
        RoundStats::observe_with(round, agents, &mut BTreeMap::new())
    }

    /// As [`observe`](RoundStats::observe), but reusing `round_counts` as the
    /// epoch-round histogram scratch (cleared on entry). The engine calls
    /// this on every recorded round, so the map's allocation is hoisted out
    /// of the hot loop.
    pub fn observe_with<S: Observable>(
        round: u64,
        agents: &[S],
        round_counts: &mut BTreeMap<u32, usize>,
    ) -> RoundStats {
        let mut stats = RoundStats {
            round,
            population: agents.len(),
            ..RoundStats::default()
        };
        round_counts.clear();
        for agent in agents {
            let obs: Observation = agent.observe();
            if obs.active {
                stats.active += 1;
                match obs.color {
                    Some(false) => stats.color0 += 1,
                    Some(true) => stats.color1 += 1,
                    None => {}
                }
            }
            if obs.recruiting {
                stats.recruiting += 1;
            }
            if obs.in_eval_phase {
                stats.in_eval += 1;
            }
            if obs.is_leader {
                stats.leaders += 1;
            }
            if let Some(r) = obs.round_in_epoch {
                *round_counts.entry(r).or_insert(0) += 1;
            }
        }
        // BTreeMap iteration is key-ordered, so the majority tie-break is
        // deterministic (largest round value wins) — a HashMap here would
        // resolve ties in per-process random order.
        if let Some((&majority, &count)) = round_counts.iter().max_by_key(|&(_, c)| *c) {
            stats.majority_round = Some(majority);
            let total: usize = round_counts.values().sum();
            stats.wrong_round = total - count;
        }
        stats
    }

    /// Signed color imbalance `c0 − c1` among active agents.
    pub fn color_imbalance(&self) -> i64 {
        self.color0 as i64 - self.color1 as i64
    }

    /// Fraction of the population that is active (0 if empty).
    pub fn active_fraction(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.active as f64 / self.population as f64
        }
    }
}

/// Collects [`RoundStats`] over a run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    stats: Vec<RoundStats>,
}

impl MetricsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Appends one round's stats.
    pub fn record(&mut self, stats: RoundStats) {
        self.stats.push(stats);
    }

    /// All recorded rounds, in order.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.stats
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&RoundStats> {
        self.stats.last()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Discards all records (e.g. after a warm-up phase).
    pub fn clear(&mut self) {
        self.stats.clear();
    }

    /// Trajectory view over the recorded rounds.
    pub fn trajectory(&self) -> crate::trace::Trajectory<'_> {
        crate::trace::Trajectory::new(self.rounds())
    }

    /// Minimum and maximum population over all records, if any.
    pub fn population_range(&self) -> Option<(usize, usize)> {
        let mut it = self.stats.iter().map(|s| s.population);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some((lo, hi))
    }

    /// Maximum `wrong_round` over all records (Lemma 3 diagnostics).
    pub fn max_wrong_round(&self) -> usize {
        self.stats.iter().map(|s| s.wrong_round).max().unwrap_or(0)
    }

    /// Maximum active fraction over all records (Lemma 4 diagnostics).
    pub fn max_active_fraction(&self) -> f64 {
        self.stats
            .iter()
            .map(|s| s.active_fraction())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Observation;

    struct Fake(Observation);
    impl Observable for Fake {
        fn observe(&self) -> Observation {
            self.0
        }
    }

    fn agent(active: bool, color: Option<bool>, round: Option<u32>) -> Fake {
        Fake(Observation {
            active,
            color,
            round_in_epoch: round,
            ..Observation::default()
        })
    }

    #[test]
    fn observe_counts_colors_and_rounds() {
        let pop = vec![
            agent(true, Some(false), Some(3)),
            agent(true, Some(true), Some(3)),
            agent(true, Some(true), Some(3)),
            agent(false, None, Some(5)),
        ];
        let s = RoundStats::observe(7, &pop);
        assert_eq!(s.round, 7);
        assert_eq!(s.population, 4);
        assert_eq!(s.active, 3);
        assert_eq!(s.color0, 1);
        assert_eq!(s.color1, 2);
        assert_eq!(s.majority_round, Some(3));
        assert_eq!(s.wrong_round, 1);
        assert_eq!(s.color_imbalance(), -1);
        assert!((s.active_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn observe_empty_population() {
        let pop: Vec<Fake> = vec![];
        let s = RoundStats::observe(0, &pop);
        assert_eq!(s.population, 0);
        assert_eq!(s.majority_round, None);
        assert_eq!(s.active_fraction(), 0.0);
    }

    #[test]
    fn recorder_range_and_maxima() {
        let mut rec = MetricsRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.population_range(), None);
        for (i, p) in [10usize, 14, 8, 12].iter().enumerate() {
            rec.record(RoundStats {
                round: i as u64,
                population: *p,
                active: *p / 2,
                wrong_round: i,
                ..RoundStats::default()
            });
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.population_range(), Some((8, 14)));
        assert_eq!(rec.max_wrong_round(), 3);
        assert!((rec.max_active_fraction() - 0.5).abs() < 1e-9);
        rec.clear();
        assert!(rec.is_empty());
    }
}
