//! Trivial protocols used for testing and as degenerate baselines.

use crate::agent::{Action, Observable, Observation, Protocol};
use crate::rng::SimRng;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotState};

/// The inert protocol: agents never split, never die, carry no state.
///
/// Useful for testing the substrate and as the "empty protocol" the paper
/// mentions when discussing Attempt 2 (§1.3.1): under no adversary it keeps
/// the population exactly constant, and under a deleting adversary it simply
/// shrinks — it has no corrective force at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Inert;

/// The (empty) state of an [`Inert`] agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InertState;

impl Observable for InertState {
    fn observe(&self) -> Observation {
        Observation::default()
    }
}

impl SnapshotState for InertState {
    fn state_tag() -> String {
        "inert".to_string()
    }

    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(InertState)
    }
}

impl Protocol for Inert {
    type State = InertState;
    type Message = ();

    fn initial_state(&self, _rng: &mut SimRng) -> InertState {
        InertState
    }

    fn message(&self, _state: &InertState) {}

    fn step(&self, _state: &mut InertState, _incoming: Option<&()>, _rng: &mut SimRng) -> Action {
        Action::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Engine;

    #[test]
    fn inert_never_changes_population() {
        let cfg = SimConfig::builder().seed(13).build().unwrap();
        let mut engine = Engine::with_population(Inert, cfg, 33);
        engine.run(crate::RunSpec::rounds(50), &mut ());
        assert_eq!(engine.population(), 33);
    }

    #[test]
    fn inert_observation_is_default() {
        assert_eq!(InertState.observe(), Observation::default());
    }
}
