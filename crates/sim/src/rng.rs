//! Deterministic randomness for simulations.
//!
//! All stochastic choices in the engine — agent coin flips, matching
//! schedules, adversary randomness — are drawn from [`SimRng`] streams derived
//! from a single user-provided seed, so that every run is exactly
//! reproducible. Distinct streams are derived with [`derive_stream`] so that,
//! e.g., the matching schedule does not perturb agent coin flips when an
//! adversary consumes extra randomness.
//!
//! # Counter-output randomness
//!
//! [`SimRng`] is [`CounterRng`], a *counter-output* generator: every output
//! is SplitMix64's keyed finalizer applied directly to a `(key, draw
//! counter)` position. Construction is two register writes — there is no
//! seed-expansion step and no generator state beyond the position — so the
//! engine can afford a fresh generator per agent per round.
//!
//! Agent coin flips are *addressable*, not sequential: the flips of agent
//! slot `s` in round `r` come from the generator keyed on `(master, r, s)`
//! ([`counter_seed`] / [`slot_rng`]). Because no agent's draw depends on any
//! other agent having drawn first, the engine's step phase can execute
//! agents in any order — or on any number of threads — and produce
//! bit-identical results (see `Engine::run_until_par`). This is stream
//! version [`AGENT_STREAM_VERSION`]; see `tests/golden/README.md` for the
//! version history.

use rand::{RngCore, SeedableRng};

/// Version of the engine's agent-randomness stream. Bumped whenever the
/// mapping from `(master seed, round, agent slot)` to coin flips changes,
/// which invalidates the golden fixtures under `tests/golden/`.
///
/// * v1 — one sequential `SimRng` stream consumed in agent-iteration order.
/// * v2 — counter-based: [`counter_seed`]`(master, round, slot)` keys an
///   independent xoshiro256++ generator per agent per round (seed expansion
///   per agent).
/// * v3 — counter-*output*: the `(master, round, slot)` key is a bare Weyl
///   position (`round_key(m, r) + s·c`, no per-agent finalizer) driving
///   [`CounterRng`] directly — no seed expansion, no per-agent state, one
///   finalizer per *draw* — and biased coins consume one 64-bit draw per
///   64 logical flips ([`biased_coin`]).
pub const AGENT_STREAM_VERSION: u32 = 3;

/// The concrete RNG used throughout the simulator: the counter-output
/// generator [`CounterRng`].
///
/// A concrete type (rather than `impl Rng` generics) keeps the
/// [`Adversary`](crate::Adversary) and [`Protocol`](crate::Protocol) traits
/// object-safe, which the engine relies on for heterogeneous experiment
/// suites. The generator is fast, statistically strong (SplitMix64 passes
/// BigCrush) and — the property the simulations actually rely on —
/// deterministic per key on every platform and in every future build of
/// this workspace. It is *not* cryptographically strong; the model's
/// "adversary cannot predict future flips" assumption is a modeling
/// convention here, exactly as it already was under the xoshiro shim.
pub type SimRng = CounterRng;

/// A counter-output generator (SplitMix64): output `i` of the stream keyed
/// by `k` is `finalize(k + (i + 1)·γ)` for the SplitMix64 Weyl constant
/// `γ`, i.e. every draw comes *straight from the keyed finalizer* at the
/// draw-counter position.
///
/// Compared to a conventional seeded generator there is no seed-expansion
/// step and no hidden state: [`CounterRng::keyed`] stores one word, and
/// each draw costs one finalizer. That makes per-agent-per-round
/// construction effectively free, which is what lets the engine key a fresh
/// generator on every `(master, round, slot)` tuple (see [`slot_rng`])
/// without paying the per-agent setup cost the golden fixtures' stream v2
/// measured at ~22% of the serial round at `N = 65536`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRng {
    /// Current stream position: `key + draws·γ`, advanced by one Weyl
    /// increment per draw.
    state: u64,
}

impl CounterRng {
    /// A generator positioned at draw 0 of the stream identified by `key`.
    ///
    /// Distinct keys yield statistically independent streams: every output
    /// passes through the finalizer, so keys only need *distinctness*, not
    /// mixing. Engine keys are either finalizer outputs ([`round_key`],
    /// [`sub_seed`], [`derive_seed`] +
    /// [`seed_from_u64`](SeedableRng::seed_from_u64)) or Weyl-spaced
    /// offsets of one ([`counter_seed`]).
    #[inline]
    pub fn keyed(key: u64) -> Self {
        CounterRng { state: key }
    }

    /// The raw stream position (`key + draws·γ`), for exact checkpointing:
    /// [`from_raw_state`](CounterRng::from_raw_state) of this value resumes
    /// the stream at the next draw.
    #[inline]
    pub(crate) fn raw_state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at a raw stream position previously captured
    /// with [`raw_state`](CounterRng::raw_state). Unlike [`keyed`]
    /// (CounterRng::keyed), the argument is a *position*, not a key — no
    /// finalization or normalization is applied.
    #[inline]
    pub(crate) fn from_raw_state(state: u64) -> Self {
        CounterRng { state }
    }
}

impl SeedableRng for CounterRng {
    /// Finalizes the raw seed into the stream key, so that similar seeds
    /// (0, 1, 2, … are common in tests) land at unrelated counter
    /// positions.
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        CounterRng::keyed(splitmix_finalize(seed))
    }
}

/// The SplitMix64 Weyl increment: the draw-counter spacing of every
/// [`CounterRng`] stream. Output `i` of the stream keyed by `k` is
/// `finalize(k + (i + 1)·GAMMA)` — which is what makes draws *addressable*
/// ([`nth_draw`]) and hence lane-batchable ([`nth_draw_x8`]).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl RngCore for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        splitmix_finalize(self.state)
    }
}

/// Creates a [`SimRng`] from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = popstab_sim::rng::rng_from_seed(42);
/// let mut b = popstab_sim::rng::rng_from_seed(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derives the seed of an independent named stream from a base seed.
///
/// The label is folded into the seed with an FNV-1a hash; different labels
/// yield statistically independent streams while remaining reproducible.
/// This is the seed-level primitive behind [`derive_stream`]; batch
/// execution uses it to give every job in a batch its own master seed (see
/// [`batch::job_seed`](crate::batch::job_seed)).
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    seed ^ h
}

/// Derives an independent named stream from a base seed (see
/// [`derive_seed`]).
pub fn derive_stream(seed: u64, label: &str) -> SimRng {
    SimRng::seed_from_u64(derive_seed(seed, label))
}

/// The SplitMix64 finalizer: a 64-bit bijection with full avalanche, the
/// standard mixing core for counter-based generators.
#[inline]
pub(crate) fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds the round number into a master key, producing the per-round key
/// that [`counter_seed`] / [`slot_rng`] offset per slot. Hoisting this out
/// of the per-agent loop leaves one multiply-add per agent;
/// `counter_seed(m, r, s)` equals `round_key(m, r)` plus the slot's Weyl
/// offset by construction (pinned by the stream tests below).
#[inline]
pub fn round_key(master: u64, round: u64) -> u64 {
    // Weyl-increment the round so consecutive rounds land far apart before
    // mixing; the XOR constant separates this domain from `derive_seed`.
    splitmix_finalize(
        (master ^ 0x517C_C1B7_2722_0A95).wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// Derives the `index`-th independent sub-key of a key: a finalizer over a
/// second Weyl sequence (a different increment than the draw counter's, so
/// sub-key spacing and draw spacing never alias). This is the key-domain
/// analogue of [`derive_seed`] for numbered rather than named sub-streams
/// — the matching sampler keys its permutation and its fraction draw with
/// it, and [`SlotPermutation`](crate::matching::SlotPermutation) expands
/// its pass keys through it.
#[inline]
pub fn sub_seed(key: u64, index: u64) -> u64 {
    splitmix_finalize(key.wrapping_add(index.wrapping_mul(SLOT_WEYL)))
}

/// Spacing of per-slot agent streams within one round key (an odd constant
/// distinct from the SplitMix64 draw increment, so `(slot, draw)` positions
/// form a non-degenerate 2-D lattice: `s·SLOT_WEYL + i·γ` collides only
/// for astronomically large `(s, i)` differences).
const SLOT_WEYL: u64 = 0xD1B5_4A32_D192_ED03;

/// The counter-based agent stream key: a stateless function of
/// `(master, round, slot)`.
///
/// This keys the engine's per-agent randomness (stream version
/// [`AGENT_STREAM_VERSION`]): agent `slot`'s coin flips in round `round`
/// are the stream of [`slot_rng`], independent of every other `(round,
/// slot)` pair and of how many draws any other agent made.
///
/// Since v3 the key is the *bare* Weyl position `round_key + slot·c` — the
/// avalanche lives in the draw path ([`CounterRng`] finalizes every
/// output), so the key itself only needs distinctness, and the engine's
/// per-agent setup drops to one multiply-add. The draw *outputs* still
/// avalanche across adjacent slots (asserted by the stream tests below).
#[inline]
pub fn counter_seed(master: u64, round: u64, slot: u64) -> u64 {
    round_key(master, round).wrapping_add(slot.wrapping_mul(SLOT_WEYL))
}

/// Builds the [`SimRng`] of agent `slot` in round `round` (see
/// [`counter_seed`]).
#[inline]
pub fn counter_rng(master: u64, round: u64, slot: u64) -> SimRng {
    CounterRng::keyed(counter_seed(master, round, slot))
}

/// The stream key of agent `slot` under a precomputed [`round_key`]:
/// `counter_seed` with the round fold hoisted out. Scalar reference twin of
/// [`slot_key_x8`].
#[inline]
pub fn slot_key(round_key: u64, slot: u64) -> u64 {
    round_key.wrapping_add(slot.wrapping_mul(SLOT_WEYL))
}

/// As [`counter_rng`], but from a precomputed [`round_key`] (the engine's
/// hot path: one key per round, one multiply-add per agent — the finalizer
/// runs per draw, not per agent).
#[inline]
pub fn slot_rng(round_key: u64, slot: u64) -> SimRng {
    CounterRng::keyed(slot_key(round_key, slot))
}

/// Number of lanes in the batched `_x8` kernels below. Eight 64-bit lanes
/// fill an AVX-512 register and split evenly across two AVX2 / NEON
/// registers; the kernels are plain array loops, sized and shaped so LLVM
/// autovectorizes them (this workspace is `std`-only — no `std::simd`, no
/// intrinsics).
pub const LANES: usize = 8;

/// Stream keys of [`LANES`] consecutive slots under one [`round_key`]:
/// lane `l` equals the scalar twin `slot_key(round_key, base_slot + l)`
/// (pinned lane-for-lane by `slot_key_x8_matches_scalar_twin`).
#[inline]
pub fn slot_key_x8(round_key: u64, base_slot: u64) -> [u64; LANES] {
    let mut keys = [0u64; LANES];
    for (l, key) in keys.iter_mut().enumerate() {
        *key = slot_key(round_key, base_slot.wrapping_add(l as u64));
    }
    keys
}

/// Counter-stream keys of [`LANES`] consecutive slots: lane `l` equals the
/// scalar twin [`counter_seed`]`(master, round, base_slot + l)`. Callers
/// stepping many lane groups per round should hoist the round fold and use
/// [`slot_key_x8`] directly.
#[inline]
pub fn counter_seed_x8(master: u64, round: u64, base_slot: u64) -> [u64; LANES] {
    slot_key_x8(round_key(master, round), base_slot)
}

/// Output `draw` (0-based) of the [`CounterRng`] stream keyed by `key`,
/// computed positionally: `finalize(key + (draw + 1)·γ)`. Scalar reference
/// twin of [`nth_draw_x8`]; equals the `draw + 1`-th `next_u64`
/// (RngCore::next_u64) of `CounterRng::keyed(key)` (pinned by
/// `nth_draw_matches_sequential_stream`).
#[inline]
pub fn nth_draw(key: u64, draw: u64) -> u64 {
    splitmix_finalize(key.wrapping_add(draw.wrapping_add(1).wrapping_mul(GAMMA)))
}

/// Output `draw` of [`LANES`] streams at once: lane `l` equals the scalar
/// twin `nth_draw(keys[l], draw)`. One Weyl offset plus [`LANES`]
/// independent finalizers — branch-free, so LLVM vectorizes the loop.
#[inline]
pub fn nth_draw_x8(keys: &[u64; LANES], draw: u64) -> [u64; LANES] {
    let offset = draw.wrapping_add(1).wrapping_mul(GAMMA);
    let mut out = [0u64; LANES];
    for (l, word) in out.iter_mut().enumerate() {
        *word = splitmix_finalize(keys[l].wrapping_add(offset));
    }
    out
}

/// [`LANES`] biased coins at once: bit `l` of the result is the scalar twin
/// `biased_coin(bias_exp, &mut CounterRng::keyed(keys[l]))` (pinned
/// lane-for-lane by `biased_coin_x8_matches_scalar_twin`).
///
/// Lanes are exact, not just equidistributed, because [`biased_coin`]'s
/// early exit never moves a *later* draw: a stream either passes every mask
/// word (consuming all `⌈bias_exp / 64⌉` draws) or fails and draws nothing
/// further, and each word is addressable by [`nth_draw`] regardless.
/// Computing every lane's word unconditionally therefore reads exactly the
/// positions the scalar twin would have read wherever the result bit is
/// observed.
pub fn biased_coin_x8(bias_exp: u32, keys: &[u64; LANES]) -> u8 {
    let mut alive: u8 = 0xFF;
    let mut remaining = bias_exp;
    let mut draw = 0u64;
    while remaining > 0 && alive != 0 {
        let take = remaining.min(64);
        let mask = if take == 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        let words = nth_draw_x8(keys, draw);
        let mut pass: u8 = 0;
        for (l, word) in words.iter().enumerate() {
            pass |= u8::from(word & mask == mask) << l;
        }
        alive &= pass;
        remaining -= take;
        draw += 1;
    }
    alive
}

/// Draws `true` with probability `2^-bias_exp`, mirroring the paper's
/// `TossBiasedCoin` subroutine at the substrate level (protocol crates
/// re-implement it with explicit memory accounting).
///
/// The *logical* cost is `bias_exp` fair coin flips, exactly as in the
/// paper; since stream v3 the flips are drawn 64 to a word (`⌈bias_exp /
/// 64⌉` draws, each checked against a mask) instead of one draw per flip.
/// The distribution is unchanged — every mask bit is fair and independent —
/// but the draw count is, which is part of the v3 stream bump.
pub fn biased_coin(bias_exp: u32, rng: &mut SimRng) -> bool {
    let mut remaining = bias_exp;
    while remaining > 0 {
        let take = remaining.min(64);
        let mask = if take == 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        if rng.next_u64() & mask != mask {
            return false;
        }
        remaining -= take;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent_of_each_other() {
        let mut a = derive_stream(9, "matching");
        let mut b = derive_stream(9, "agents");
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_stream_is_reproducible() {
        let mut a = derive_stream(9, "x");
        let mut b = derive_stream(9, "x");
        assert_eq!(a.random::<u128>(), b.random::<u128>());
    }

    #[test]
    fn counter_seed_is_reproducible_and_matches_split_form() {
        for master in [0u64, 1, 42, u64::MAX] {
            for round in [0u64, 1, 63, 1 << 40] {
                let rk = round_key(master, round);
                for slot in [0u64, 1, 2, 1000, u64::MAX - 1] {
                    let seed = counter_seed(master, round, slot);
                    assert_eq!(seed, counter_seed(master, round, slot));
                    let mut a = counter_rng(master, round, slot);
                    let mut b = slot_rng(rk, slot);
                    assert_eq!(a.random::<u128>(), b.random::<u128>());
                }
            }
        }
    }

    #[test]
    fn sub_seeds_are_distinct_and_avalanched() {
        let mut seeds: Vec<u64> = (0..256).map(|i| sub_seed(99, i)).collect();
        for w in seeds.windows(2) {
            let flipped = (w[0] ^ w[1]).count_ones();
            assert!((12..=52).contains(&flipped), "weak sub-key avalanche");
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 256, "sub-keys collide");
    }

    /// No collisions and no correlation across a dense grid of
    /// `(round, slot)` keys: every first draw is distinct, and the pooled
    /// output bits are balanced (a cheap whole-stream independence check —
    /// a sequential-stream or low-avalanche implementation fails both).
    #[test]
    fn counter_streams_are_statistically_independent_across_keys() {
        let mut first_draws = Vec::new();
        let mut ones: u32 = 0;
        for round in 0..64u64 {
            for slot in 0..64u64 {
                let mut rng = counter_rng(7, round, slot);
                let draw = rng.random::<u64>();
                first_draws.push(draw);
                ones += draw.count_ones();
            }
        }
        let n = first_draws.len();
        first_draws.sort_unstable();
        first_draws.dedup();
        assert_eq!(first_draws.len(), n, "counter streams collide");
        // 64·64·64 pooled bits, expectation 1/2 each: 5σ ≈ 0.5%.
        let total_bits = (n * 64) as f64;
        let frac = f64::from(ones) / total_bits;
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }

    /// Perturbing any argument of the key tuple moves the stream *output*
    /// far: adjacent rounds/slots/masters share no observable structure.
    /// (The v3 key itself is a bare Weyl position — the avalanche
    /// guarantee lives at the draw, where the finalizer runs.)
    #[test]
    fn counter_stream_avalanches_in_every_argument() {
        let base = counter_rng(99, 5, 17).random::<u64>();
        for (m, r, s) in [(98, 5, 17), (99, 4, 17), (99, 5, 16), (99, 5, 18)] {
            let other = counter_rng(m, r, s).random::<u64>();
            let flipped = (base ^ other).count_ones();
            assert!(
                (12..=52).contains(&flipped),
                "weak stream avalanche vs ({m},{r},{s}): {flipped} bits"
            );
        }
    }

    /// The counter streams must also be independent of the derived
    /// matching/adversary streams sharing the master seed.
    #[test]
    fn counter_streams_do_not_collide_with_derived_streams() {
        for label in ["agents", "matching", "adversary"] {
            let mut derived = derive_stream(3, label);
            let d = derived.random::<u64>();
            for round in 0..8u64 {
                for slot in 0..8u64 {
                    let mut c = counter_rng(3, round, slot);
                    assert_ne!(c.random::<u64>(), d, "{label} collides at ({round},{slot})");
                }
            }
        }
    }

    // ---- CounterRng output statistics (mirroring the `counter_seed` key
    // ---- tests one level down, at the draw stream itself)

    /// Pooled output bits of many whole streams are balanced: neither the
    /// key position nor the draw counter biases any bit.
    #[test]
    fn counter_rng_output_bits_are_balanced() {
        let mut ones: u64 = 0;
        let draws_per_key = 32u64;
        let keys = 128u64;
        for k in 0..keys {
            let mut rng = CounterRng::keyed(counter_seed(11, 0, k));
            for _ in 0..draws_per_key {
                ones += u64::from(rng.next_u64().count_ones());
            }
        }
        let total_bits = (keys * draws_per_key * 64) as f64;
        let frac = ones as f64 / total_bits;
        // 262144 pooled bits, expectation 1/2: 5σ ≈ 0.49%.
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }

    /// Outputs never collide across a dense grid of `(key, draw)` positions:
    /// the finalizer is a bijection per key, and distinct keys occupy
    /// far-apart counter windows.
    #[test]
    fn counter_rng_outputs_do_not_collide_across_keys_and_draws() {
        let mut outputs = Vec::new();
        for k in 0..64u64 {
            let mut rng = CounterRng::keyed(counter_seed(13, 1, k));
            for _ in 0..64 {
                outputs.push(rng.next_u64());
            }
        }
        let n = outputs.len();
        outputs.sort_unstable();
        outputs.dedup();
        assert_eq!(outputs.len(), n, "counter-output draws collide");
    }

    /// Avalanche across the draw counter: consecutive draws of one stream
    /// differ in roughly half their bits — the counter increment is fully
    /// mixed, with no low-order drift surviving the finalizer.
    #[test]
    fn counter_rng_avalanches_across_the_draw_counter() {
        let mut rng = CounterRng::keyed(counter_seed(17, 3, 5));
        let mut prev = rng.next_u64();
        let mut total_flips = 0u32;
        let draws = 256;
        for _ in 0..draws {
            let next = rng.next_u64();
            let flips = (prev ^ next).count_ones();
            assert!(
                (8..=56).contains(&flips),
                "weak per-draw avalanche: {flips} bits"
            );
            total_flips += flips;
            prev = next;
        }
        let mean = f64::from(total_flips) / f64::from(draws);
        assert!((30.0..34.0).contains(&mean), "mean avalanche {mean}");
    }

    /// `keyed` really is stateless addressing: re-keying at the same
    /// position replays the stream, and the draw counter alone separates
    /// positions under one key.
    #[test]
    fn counter_rng_is_addressable_by_key_and_counter() {
        let key = counter_seed(23, 9, 40);
        let mut a = CounterRng::keyed(key);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = CounterRng::keyed(key);
        let replay: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, replay);
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "draw counter repeats outputs");
    }

    #[test]
    fn biased_coin_zero_exp_is_always_true() {
        let mut rng = rng_from_seed(5);
        assert!((0..32).all(|_| biased_coin(0, &mut rng)));
    }

    #[test]
    fn biased_coin_one_exp_is_roughly_half() {
        let mut rng = rng_from_seed(5);
        let hits = (0..10_000).filter(|_| biased_coin(1, &mut rng)).count();
        assert!((4_500..5_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn biased_coin_large_exp_is_rare() {
        let mut rng = rng_from_seed(5);
        let hits = (0..10_000).filter(|_| biased_coin(10, &mut rng)).count();
        // expectation ~9.77
        assert!(hits < 40, "hits={hits}");
    }

    /// The word-batched implementation spans the 64-flip word boundary
    /// correctly: a 100-flip coin consumes two draws and still has the
    /// right (tiny) acceptance behavior on a doctored all-ones stream.
    #[test]
    fn biased_coin_spans_word_boundaries() {
        // Statistically: exponent 65 should essentially never hit.
        let mut rng = rng_from_seed(6);
        assert!((0..10_000).all(|_| !biased_coin(65, &mut rng)));
        // Consumption: exponent ≤ 64 takes one draw, 65..=128 take two.
        let key = counter_seed(29, 0, 0);
        for (exp, draws) in [(1u32, 1u64), (64, 1), (65, 2), (128, 2)] {
            let mut coin = CounterRng::keyed(key);
            let _ = biased_coin(exp, &mut coin);
            let mut manual = CounterRng::keyed(key);
            for _ in 0..draws {
                manual.next_u64();
            }
            // Same stream position afterwards: next draws agree. (False
            // early-outs consume fewer draws; pick a key whose first word
            // is accepted for small exponents to pin the full path.)
            if biased_coin_first_word_accepts(key, exp) {
                assert_eq!(coin.next_u64(), manual.next_u64(), "exp {exp}");
            }
        }
    }

    /// Whether the first stream word of `key` passes the mask for `exp`
    /// (≤ 64) flips — helper for the consumption test above.
    fn biased_coin_first_word_accepts(key: u64, exp: u32) -> bool {
        let take = exp.min(64);
        let mask = if take == 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        CounterRng::keyed(key).next_u64() & mask == mask
    }

    // ---- Lane-batched kernels: every `_x8` kernel pinned lane-for-lane
    // ---- against its scalar twin over random keys/counters.

    mod x8_twins {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `slot_key_x8` lane `l` is exactly the scalar twin
            /// `slot_key(round_key, base + l)`, including at wrapping
            /// slot positions.
            #[test]
            fn slot_key_x8_matches_scalar_twin(
                master in any::<u64>(),
                round in 0u64..1 << 48,
                base in any::<u64>(),
            ) {
                let rk = round_key(master, round);
                let lanes = slot_key_x8(rk, base);
                for (l, &lane) in lanes.iter().enumerate() {
                    assert_eq!(lane, slot_key(rk, base.wrapping_add(l as u64)), "lane {l}");
                }
            }

            /// `counter_seed_x8` lane `l` is exactly the scalar twin
            /// `counter_seed(master, round, base + l)`.
            #[test]
            fn counter_seed_x8_matches_scalar_twin(
                master in any::<u64>(),
                round in 0u64..1 << 48,
                base in any::<u64>(),
            ) {
                let lanes = counter_seed_x8(master, round, base);
                for (l, &lane) in lanes.iter().enumerate() {
                    assert_eq!(
                        lane,
                        counter_seed(master, round, base.wrapping_add(l as u64)),
                        "lane {l}"
                    );
                }
            }

            /// `nth_draw(key, i)` addresses the same output the sequential
            /// stream reaches by drawing `i + 1` times.
            #[test]
            fn nth_draw_matches_sequential_stream(key in any::<u64>()) {
                let mut rng = CounterRng::keyed(key);
                for draw in 0..16u64 {
                    assert_eq!(nth_draw(key, draw), rng.next_u64(), "draw {draw}");
                }
            }

            /// `nth_draw_x8` lane `l` is exactly the scalar twin
            /// `nth_draw(keys[l], draw)` over random keys and counters.
            #[test]
            fn nth_draw_x8_matches_scalar_twin(
                seed in any::<u64>(),
                draw in any::<u64>(),
            ) {
                let mut g = rng_from_seed(seed);
                let mut keys = [0u64; LANES];
                for key in keys.iter_mut() {
                    *key = g.next_u64();
                }
                let lanes = nth_draw_x8(&keys, draw);
                for (l, &lane) in lanes.iter().enumerate() {
                    assert_eq!(lane, nth_draw(keys[l], draw), "lane {l}");
                }
            }

            /// `biased_coin_x8` bit `l` is exactly the scalar twin
            /// `biased_coin(exp, keyed(keys[l]))` — across word-boundary
            /// exponents (0, 1, 63..=65, 128) and random keys. Exercises
            /// production exponents (3..=13) densely via the sampled range.
            #[test]
            fn biased_coin_x8_matches_scalar_twin(
                seed in any::<u64>(),
                exp in 0u32..=130,
            ) {
                let mut g = rng_from_seed(seed);
                let mut keys = [0u64; LANES];
                for key in keys.iter_mut() {
                    *key = g.next_u64();
                }
                let batch = biased_coin_x8(exp, &keys);
                for (l, &key) in keys.iter().enumerate() {
                    let scalar = biased_coin(exp, &mut CounterRng::keyed(key));
                    assert_eq!(batch & (1 << l) != 0, scalar, "exp {exp} lane {l}");
                }
            }
        }

        /// Low exponents hit often enough that the lane mask is exercised
        /// with a mixed pass/fail population, not just all-zeros.
        #[test]
        fn biased_coin_x8_sees_mixed_verdicts_at_low_exponents() {
            let mut any_pass = false;
            let mut any_fail = false;
            for group in 0..64u64 {
                let keys = counter_seed_x8(31, 2, group * LANES as u64);
                let mask = biased_coin_x8(1, &keys);
                any_pass |= mask != 0;
                any_fail |= mask != 0xFF;
            }
            assert!(any_pass && any_fail, "exp-1 coin lanes are degenerate");
        }
    }
}
