//! Deterministic randomness for simulations.
//!
//! All stochastic choices in the engine — agent coin flips, matching
//! schedules, adversary randomness — are drawn from [`SimRng`] streams derived
//! from a single user-provided seed, so that every run is exactly
//! reproducible. Distinct streams are derived with [`derive_stream`] so that,
//! e.g., the matching schedule does not perturb agent coin flips when an
//! adversary consumes extra randomness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The concrete RNG used throughout the simulator.
///
/// A concrete type (rather than `impl Rng` generics) keeps the
/// [`Adversary`](crate::Adversary) and [`Protocol`](crate::Protocol) traits
/// object-safe, which the engine relies on for heterogeneous experiment
/// suites. `StdRng` is a cryptographically strong PRNG, which matters here:
/// the model grants the adversary full knowledge of agent *state* but not of
/// *future* coin flips, so the stream must be unpredictable from its output.
pub type SimRng = StdRng;

/// Creates a [`SimRng`] from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = popstab_sim::rng::rng_from_seed(42);
/// let mut b = popstab_sim::rng::rng_from_seed(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> SimRng {
    StdRng::seed_from_u64(seed)
}

/// Derives the seed of an independent named stream from a base seed.
///
/// The label is folded into the seed with an FNV-1a hash; different labels
/// yield statistically independent streams while remaining reproducible.
/// This is the seed-level primitive behind [`derive_stream`]; batch
/// execution uses it to give every job in a batch its own master seed (see
/// [`batch::job_seed`](crate::batch::job_seed)).
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    seed ^ h
}

/// Derives an independent named stream from a base seed (see
/// [`derive_seed`]).
pub fn derive_stream(seed: u64, label: &str) -> SimRng {
    StdRng::seed_from_u64(derive_seed(seed, label))
}

/// Draws `true` with probability `2^-bias_exp` using `bias_exp` fair coin
/// flips, mirroring the paper's `TossBiasedCoin` subroutine at the substrate
/// level (protocol crates re-implement it with explicit memory accounting).
pub fn biased_coin(bias_exp: u32, rng: &mut SimRng) -> bool {
    for _ in 0..bias_exp {
        if !rng.random::<bool>() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent_of_each_other() {
        let mut a = derive_stream(9, "matching");
        let mut b = derive_stream(9, "agents");
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_stream_is_reproducible() {
        let mut a = derive_stream(9, "x");
        let mut b = derive_stream(9, "x");
        assert_eq!(a.random::<u128>(), b.random::<u128>());
    }

    #[test]
    fn biased_coin_zero_exp_is_always_true() {
        let mut rng = rng_from_seed(5);
        assert!((0..32).all(|_| biased_coin(0, &mut rng)));
    }

    #[test]
    fn biased_coin_one_exp_is_roughly_half() {
        let mut rng = rng_from_seed(5);
        let hits = (0..10_000).filter(|_| biased_coin(1, &mut rng)).count();
        assert!((4_500..5_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn biased_coin_large_exp_is_rare() {
        let mut rng = rng_from_seed(5);
        let hits = (0..10_000).filter(|_| biased_coin(10, &mut rng)).count();
        // expectation ~9.77
        assert!(hits < 40, "hits={hits}");
    }
}
