//! Deterministic randomness for simulations.
//!
//! All stochastic choices in the engine — agent coin flips, matching
//! schedules, adversary randomness — are drawn from [`SimRng`] streams derived
//! from a single user-provided seed, so that every run is exactly
//! reproducible. Distinct streams are derived with [`derive_stream`] so that,
//! e.g., the matching schedule does not perturb agent coin flips when an
//! adversary consumes extra randomness.
//!
//! # Counter-based agent randomness
//!
//! Agent coin flips are *addressable*, not sequential: the flips of agent
//! slot `s` in round `r` come from a stateless generator keyed on
//! `(master, r, s)` ([`counter_seed`] / [`slot_rng`]). Because no agent's
//! draw depends on any other agent having drawn first, the engine's step
//! phase can execute agents in any order — or on any number of threads —
//! and produce bit-identical results (see `Engine::run_until_par`). This is
//! stream version [`AGENT_STREAM_VERSION`]; see `tests/golden/README.md`
//! for the version history.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Version of the engine's agent-randomness stream. Bumped whenever the
/// mapping from `(master seed, round, agent slot)` to coin flips changes,
/// which invalidates the golden fixtures under `tests/golden/`.
///
/// * v1 — one sequential `SimRng` stream consumed in agent-iteration order.
/// * v2 — counter-based: [`counter_seed`]`(master, round, slot)` keys an
///   independent generator per agent per round.
pub const AGENT_STREAM_VERSION: u32 = 2;

/// The concrete RNG used throughout the simulator.
///
/// A concrete type (rather than `impl Rng` generics) keeps the
/// [`Adversary`](crate::Adversary) and [`Protocol`](crate::Protocol) traits
/// object-safe, which the engine relies on for heterogeneous experiment
/// suites. `StdRng` is a cryptographically strong PRNG, which matters here:
/// the model grants the adversary full knowledge of agent *state* but not of
/// *future* coin flips, so the stream must be unpredictable from its output.
pub type SimRng = StdRng;

/// Creates a [`SimRng`] from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = popstab_sim::rng::rng_from_seed(42);
/// let mut b = popstab_sim::rng::rng_from_seed(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> SimRng {
    StdRng::seed_from_u64(seed)
}

/// Derives the seed of an independent named stream from a base seed.
///
/// The label is folded into the seed with an FNV-1a hash; different labels
/// yield statistically independent streams while remaining reproducible.
/// This is the seed-level primitive behind [`derive_stream`]; batch
/// execution uses it to give every job in a batch its own master seed (see
/// [`batch::job_seed`](crate::batch::job_seed)).
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    seed ^ h
}

/// Derives an independent named stream from a base seed (see
/// [`derive_seed`]).
pub fn derive_stream(seed: u64, label: &str) -> SimRng {
    StdRng::seed_from_u64(derive_seed(seed, label))
}

/// The SplitMix64 finalizer: a 64-bit bijection with full avalanche, the
/// standard mixing core for counter-based generators.
#[inline]
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds the round number into a master key, producing the per-round key
/// consumed by [`slot_seed`]. Hoisting this out of the per-agent loop saves
/// one finalizer per agent; `counter_seed(m, r, s) ==
/// slot_seed(round_key(m, r), s)` by construction.
#[inline]
pub fn round_key(master: u64, round: u64) -> u64 {
    // Weyl-increment the round so consecutive rounds land far apart before
    // mixing; the XOR constant separates this domain from `derive_seed`.
    splitmix_finalize(
        (master ^ 0x517C_C1B7_2722_0A95).wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// Folds an agent slot into a per-round key (see [`round_key`]).
#[inline]
pub fn slot_seed(round_key: u64, slot: u64) -> u64 {
    splitmix_finalize(round_key.wrapping_add(slot.wrapping_mul(0xD1B5_4A32_D192_ED03)))
}

/// The counter-based agent seed: a stateless function of
/// `(master, round, slot)` with full avalanche in every argument.
///
/// This keys the engine's per-agent randomness (stream version
/// [`AGENT_STREAM_VERSION`]): agent `slot`'s coin flips in round `round`
/// are the stream of [`slot_rng`], independent of every other `(round,
/// slot)` pair and of how many draws any other agent made.
#[inline]
pub fn counter_seed(master: u64, round: u64, slot: u64) -> u64 {
    slot_seed(round_key(master, round), slot)
}

/// Builds the [`SimRng`] of agent `slot` in round `round` (see
/// [`counter_seed`]).
#[inline]
pub fn counter_rng(master: u64, round: u64, slot: u64) -> SimRng {
    rng_from_seed(counter_seed(master, round, slot))
}

/// As [`counter_rng`], but from a precomputed [`round_key`] (the engine's
/// hot path: one key per round, one finalizer + seed expansion per agent).
#[inline]
pub fn slot_rng(round_key: u64, slot: u64) -> SimRng {
    rng_from_seed(slot_seed(round_key, slot))
}

/// Draws `true` with probability `2^-bias_exp` using `bias_exp` fair coin
/// flips, mirroring the paper's `TossBiasedCoin` subroutine at the substrate
/// level (protocol crates re-implement it with explicit memory accounting).
pub fn biased_coin(bias_exp: u32, rng: &mut SimRng) -> bool {
    for _ in 0..bias_exp {
        if !rng.random::<bool>() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent_of_each_other() {
        let mut a = derive_stream(9, "matching");
        let mut b = derive_stream(9, "agents");
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_stream_is_reproducible() {
        let mut a = derive_stream(9, "x");
        let mut b = derive_stream(9, "x");
        assert_eq!(a.random::<u128>(), b.random::<u128>());
    }

    #[test]
    fn counter_seed_is_reproducible_and_matches_split_form() {
        for master in [0u64, 1, 42, u64::MAX] {
            for round in [0u64, 1, 63, 1 << 40] {
                let rk = round_key(master, round);
                for slot in [0u64, 1, 2, 1000, u64::MAX - 1] {
                    let seed = counter_seed(master, round, slot);
                    assert_eq!(seed, counter_seed(master, round, slot));
                    assert_eq!(seed, slot_seed(rk, slot));
                    let mut a = counter_rng(master, round, slot);
                    let mut b = slot_rng(rk, slot);
                    assert_eq!(a.random::<u128>(), b.random::<u128>());
                }
            }
        }
    }

    /// No collisions and no correlation across a dense grid of
    /// `(round, slot)` keys: every first draw is distinct, and the pooled
    /// output bits are balanced (a cheap whole-stream independence check —
    /// a sequential-stream or low-avalanche implementation fails both).
    #[test]
    fn counter_streams_are_statistically_independent_across_keys() {
        let mut first_draws = Vec::new();
        let mut ones: u32 = 0;
        for round in 0..64u64 {
            for slot in 0..64u64 {
                let mut rng = counter_rng(7, round, slot);
                let draw = rng.random::<u64>();
                first_draws.push(draw);
                ones += draw.count_ones();
            }
        }
        let n = first_draws.len();
        first_draws.sort_unstable();
        first_draws.dedup();
        assert_eq!(first_draws.len(), n, "counter streams collide");
        // 64·64·64 pooled bits, expectation 1/2 each: 5σ ≈ 0.5%.
        let total_bits = (n * 64) as f64;
        let frac = f64::from(ones) / total_bits;
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }

    /// Flipping any single input bit of the key tuple moves the output far:
    /// adjacent rounds/slots/masters share no obvious structure.
    #[test]
    fn counter_seed_avalanches_in_every_argument() {
        let base = counter_seed(99, 5, 17);
        for (m, r, s) in [(98, 5, 17), (99, 4, 17), (99, 5, 16), (99, 5, 18)] {
            let other = counter_seed(m, r, s);
            let flipped = (base ^ other).count_ones();
            assert!(
                (12..=52).contains(&flipped),
                "weak avalanche vs ({m},{r},{s}): {flipped} bits"
            );
        }
    }

    /// The counter streams must also be independent of the derived
    /// matching/adversary streams sharing the master seed.
    #[test]
    fn counter_streams_do_not_collide_with_derived_streams() {
        for label in ["agents", "matching", "adversary"] {
            let mut derived = derive_stream(3, label);
            let d = derived.random::<u64>();
            for round in 0..8u64 {
                for slot in 0..8u64 {
                    let mut c = counter_rng(3, round, slot);
                    assert_ne!(c.random::<u64>(), d, "{label} collides at ({round},{slot})");
                }
            }
        }
    }

    #[test]
    fn biased_coin_zero_exp_is_always_true() {
        let mut rng = rng_from_seed(5);
        assert!((0..32).all(|_| biased_coin(0, &mut rng)));
    }

    #[test]
    fn biased_coin_one_exp_is_roughly_half() {
        let mut rng = rng_from_seed(5);
        let hits = (0..10_000).filter(|_| biased_coin(1, &mut rng)).count();
        assert!((4_500..5_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn biased_coin_large_exp_is_rare() {
        let mut rng = rng_from_seed(5);
        let hits = (0..10_000).filter(|_| biased_coin(10, &mut rng)).count();
        // expectation ~9.77
        assert!(hits < 40, "hits={hits}");
    }
}
