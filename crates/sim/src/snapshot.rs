//! Exact checkpoint/restore of engine state (ROADMAP open item 3).
//!
//! Because every random quantity in the engine is *counter-addressable* —
//! agent draws are keyed on `(seed, round, slot)` (agent stream
//! [`AGENT_STREAM_VERSION`]), matching on
//! `round_key(match_key, round)` (matching stream
//! [`MATCHING_STREAM_VERSION`])
//! — an engine's future is a pure function of `(SimConfig, round, agent
//! states, adversary-stream position)`. A [`Snapshot`] captures exactly
//! those four things, so a restored engine continues **bit-for-bit**
//! identically to the uninterrupted run, under [`Threads::Serial`] and
//! [`Threads::Sharded`] alike (pinned by the `snapshot_resume` property
//! tests and the CI snapshot determinism leg).
//!
//! [`Threads::Serial`]: crate::Threads::Serial
//! [`Threads::Sharded`]: crate::Threads::Sharded
//!
//! # What is (and is not) captured
//!
//! Captured: the [`SimConfig`] (seed, matching model, budget, caps), the
//! round counter, the halt flag, every agent's protocol state (via
//! [`SnapshotState`]), and the raw position of the engine-owned adversary
//! RNG stream. Per-round agent/matching keys are *not* stored — they are
//! re-derived from the config seed on restore, which is what makes a
//! seed-perturbed [`fork`](Snapshot::fork) diverge.
//!
//! Not captured: the protocol instance and the adversary instance (the
//! caller supplies both to [`Engine::restore`](crate::Engine::restore) —
//! which is the fork hook: restore the same bytes against a *different*
//! adversary to branch the future), any internal adversary state outside
//! the engine-owned RNG stream (every workspace adversary is stateless or
//! round-keyed, so registry scenarios resume exactly), and the engine's
//! scratch buffers (semantically invisible; rebuilt lazily).
//!
//! # Format
//!
//! A versioned, std-only little-endian binary layout: an 8-byte magic, the
//! [`SNAPSHOT_FORMAT_VERSION`], the two embedded stream versions (a
//! snapshot from a different stream generation is *rejected*, not
//! reinterpreted), a free-form label, the protocol-state tag, the config,
//! the round/halt/adversary-stream words, and the encoded agent column.
//! Format bumps follow the same coordinated protocol as stream bumps (see
//! `tests/golden/README.md`), and popstab-lint's `stream-version-coherence`
//! rule cross-checks the constant against the README table.

use std::fmt;
use std::io;
use std::path::Path;

use crate::config::SimConfig;
use crate::engine::HaltReason;
use crate::matching::{MatchingModel, MATCHING_STREAM_VERSION};
use crate::rng::{splitmix_finalize, AGENT_STREAM_VERSION};

/// Version of the snapshot binary format. Bumped whenever the byte layout
/// changes; the README table under `### Snapshot format` in
/// `tests/golden/README.md` records the history (cross-checked by
/// popstab-lint).
///
/// * v1 — initial layout: magic + versions + label + state tag + config +
///   round/halt/adv-stream + encoded agent column.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Leading magic of every snapshot file.
const MAGIC: &[u8; 8] = b"POPSNAP\0";

/// Domain separator for the adversary-stream perturbation in
/// [`Snapshot::fork`], so the adversary stream and the master seed never
/// receive the same mix of one salt.
const ADV_FORK_DOMAIN: u64 = 0xA5A5_1DE0_0B5E_55ED;

/// What can go wrong encoding, decoding, or restoring a snapshot.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(io::Error),
    /// The byte stream ended before the layout did.
    Truncated,
    /// The bytes parse but violate the layout's invariants.
    Malformed(&'static str),
    /// The leading magic is not a snapshot's.
    BadMagic,
    /// The snapshot was written by an unknown (newer) format version.
    UnsupportedVersion {
        /// The format version the snapshot claims.
        found: u32,
    },
    /// The snapshot was captured under a different randomness stream
    /// generation; resuming it would not reproduce the original run.
    StreamMismatch {
        /// Which stream disagrees (`"agent"` or `"matching"`).
        stream: &'static str,
        /// The version embedded in the snapshot.
        found: u32,
        /// This build's version.
        expected: u32,
    },
    /// The snapshot holds a different protocol's agent states.
    StateTagMismatch {
        /// The state tag embedded in the snapshot.
        found: String,
        /// The restoring protocol's tag.
        expected: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format v{found} (this build reads v{SNAPSHOT_FORMAT_VERSION})"
                )
            }
            SnapshotError::StreamMismatch {
                stream,
                found,
                expected,
            } => write!(
                f,
                "snapshot was captured under {stream} stream v{found}, this build runs v{expected}"
            ),
            SnapshotError::StateTagMismatch { found, expected } => write!(
                f,
                "snapshot holds `{found}` agent states, the restoring protocol needs `{expected}`"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Appends a `u8` to a snapshot byte stream.
pub fn write_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `bool` as one byte (`0`/`1`).
pub fn write_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    write_u64(out, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a snapshot byte stream, handed to
/// [`SnapshotState::decode`] implementations. Every read is
/// bounds-checked; running off the end yields
/// [`SnapshotError::Truncated`].
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Consumes one `bool` byte; anything but `0`/`1` is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool byte out of range")),
        }
    }

    /// Consumes an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consumes a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8"))
    }
}

/// Exact binary encode/decode of one protocol's per-agent state.
///
/// Implementations must round-trip exactly (`decode(encode(s)) == s` field
/// for field) — the snapshot determinism guarantee is only as strong as
/// the state encoding. The tag names the state type so a snapshot cannot
/// be restored against the wrong protocol; wrapper states compose it
/// (e.g. the extensions crate's malice wrapper tags itself
/// `malice<{inner}>`).
pub trait SnapshotState: Sized {
    /// A stable, human-readable name for this state type.
    fn state_tag() -> String;
    /// Appends this state's exact binary encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one state from the reader (the inverse of
    /// [`encode`](SnapshotState::encode)).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`] when the
    /// bytes do not hold a valid state.
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

/// A checkpoint of a running engine: everything its future depends on.
///
/// Produced by [`Engine::snapshot`](crate::Engine::snapshot), consumed by
/// [`Engine::restore`](crate::Engine::restore); serialized with
/// [`to_bytes`](Snapshot::to_bytes) / [`from_bytes`](Snapshot::from_bytes)
/// (or the file conveniences). [`fork`](Snapshot::fork) derives divergent
/// branches. See the module docs for what is and is not captured.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Free-form caller label (e.g. the registry scenario name a CLI
    /// snapshot was taken from); round-trips through the byte format but
    /// never affects the simulation.
    pub label: String,
    pub(crate) state_tag: String,
    pub(crate) config: SimConfig,
    pub(crate) round: u64,
    pub(crate) halted: Option<HaltReason>,
    pub(crate) adv_rng_state: u64,
    pub(crate) agent_count: u64,
    pub(crate) agent_bytes: Vec<u8>,
}

impl Snapshot {
    /// The round the engine had completed when the snapshot was taken.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The captured population size.
    pub fn population(&self) -> usize {
        self.agent_count as usize
    }

    /// The captured configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Mutable access to the captured configuration, for counterfactual
    /// branches that change parameters (budget, matching model, caps)
    /// before [`Engine::restore`](crate::Engine::restore). Changing the
    /// `seed` re-keys the *future* randomness exactly like
    /// [`fork`](Snapshot::fork) does.
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.config
    }

    /// The tag of the protocol state type captured here.
    pub fn state_tag(&self) -> &str {
        &self.state_tag
    }

    /// Whether the captured engine had halted, and why.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// A branch of this snapshot: the same population and round, with all
    /// *future* randomness re-keyed by `salt`.
    ///
    /// Salt `0` is the identity — restoring the branch reproduces the
    /// straight-line run bit for bit. Any other salt perturbs the master
    /// seed (re-keying the agent and matching streams, which restore
    /// re-derives from the seed) and, through a separate domain, the
    /// adversary stream position, so sibling branches diverge immediately
    /// but each remains exactly reproducible.
    #[must_use]
    pub fn fork(&self, salt: u64) -> Snapshot {
        let mut branch = self.clone();
        if salt != 0 {
            branch.config.seed = splitmix_finalize(self.config.seed ^ splitmix_finalize(salt));
            branch.adv_rng_state =
                splitmix_finalize(self.adv_rng_state ^ splitmix_finalize(salt ^ ADV_FORK_DOMAIN));
        }
        branch
    }

    /// Serializes the snapshot (see the module docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.label.len() + self.agent_bytes.len());
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, SNAPSHOT_FORMAT_VERSION);
        write_u32(&mut out, AGENT_STREAM_VERSION);
        write_u32(&mut out, MATCHING_STREAM_VERSION);
        write_str(&mut out, &self.label);
        write_str(&mut out, &self.state_tag);
        encode_config(&mut out, &self.config);
        write_u64(&mut out, self.round);
        write_u8(&mut out, encode_halt(self.halted));
        write_u64(&mut out, self.adv_rng_state);
        write_u64(&mut out, self.agent_count);
        write_u64(&mut out, self.agent_bytes.len() as u64);
        out.extend_from_slice(&self.agent_bytes);
        out
    }

    /// Deserializes a snapshot, rejecting wrong magic, unknown format
    /// versions, and snapshots captured under a different randomness
    /// stream generation.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]; trailing bytes after the layout are
    /// [`SnapshotError::Malformed`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        if r.bytes(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let format = r.u32()?;
        if format != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: format });
        }
        for (stream, expected) in [
            ("agent", AGENT_STREAM_VERSION),
            ("matching", MATCHING_STREAM_VERSION),
        ] {
            let found = r.u32()?;
            if found != expected {
                return Err(SnapshotError::StreamMismatch {
                    stream,
                    found,
                    expected,
                });
            }
        }
        let label = r.str()?;
        let state_tag = r.str()?;
        let config = decode_config(&mut r)?;
        let round = r.u64()?;
        let halted = decode_halt(r.u8()?)?;
        let adv_rng_state = r.u64()?;
        let agent_count = r.u64()?;
        let agent_len = r.u64()?;
        let agent_len = usize::try_from(agent_len)
            .map_err(|_| SnapshotError::Malformed("agent column too large"))?;
        let agent_bytes = r.bytes(agent_len)?.to_vec();
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(Snapshot {
            label,
            state_tag,
            config,
            round,
            halted,
            adv_rng_state,
            agent_count,
            agent_bytes,
        })
    }

    /// Writes [`to_bytes`](Snapshot::to_bytes) to a file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn write_to_file<Q: AsRef<Path>>(&self, path: Q) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and [`from_bytes`](Snapshot::from_bytes)-decodes a file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, plus every
    /// [`from_bytes`](Snapshot::from_bytes) error.
    pub fn read_from_file<Q: AsRef<Path>>(path: Q) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_bytes(&std::fs::read(path)?)
    }
}

/// Encodes a [`SimConfig`] (tagged matching model, then the scalar
/// fields; `usize` fields widen to `u64`).
fn encode_config(out: &mut Vec<u8>, cfg: &SimConfig) {
    match cfg.matching {
        MatchingModel::Full => write_u8(out, 0),
        MatchingModel::ExactFraction(gamma) => {
            write_u8(out, 1);
            write_f64(out, gamma);
        }
        MatchingModel::RandomFraction { min_gamma } => {
            write_u8(out, 2);
            write_f64(out, min_gamma);
        }
    }
    write_u64(out, cfg.adversary_budget as u64);
    write_u64(out, cfg.seed);
    write_u64(out, cfg.max_population as u64);
    write_u64(out, cfg.target);
}

/// The inverse of [`encode_config`].
fn decode_config(r: &mut SnapshotReader<'_>) -> Result<SimConfig, SnapshotError> {
    let matching = match r.u8()? {
        0 => MatchingModel::Full,
        1 => MatchingModel::ExactFraction(r.f64()?),
        2 => MatchingModel::RandomFraction {
            min_gamma: r.f64()?,
        },
        _ => return Err(SnapshotError::Malformed("unknown matching model tag")),
    };
    let adversary_budget = read_usize(r, "adversary budget")?;
    let seed = r.u64()?;
    let max_population = read_usize(r, "max population")?;
    let target = r.u64()?;
    Ok(SimConfig {
        matching,
        adversary_budget,
        seed,
        max_population,
        target,
    })
}

/// Reads a `u64` that must fit this platform's `usize`.
fn read_usize(r: &mut SnapshotReader<'_>, what: &'static str) -> Result<usize, SnapshotError> {
    usize::try_from(r.u64()?).map_err(|_| SnapshotError::Malformed(what))
}

/// One-byte halt tag: `0` running, `1` extinct, `2` exploded.
fn encode_halt(halted: Option<HaltReason>) -> u8 {
    match halted {
        None => 0,
        Some(HaltReason::Extinct) => 1,
        Some(HaltReason::Exploded) => 2,
    }
}

/// The inverse of [`encode_halt`].
fn decode_halt(tag: u8) -> Result<Option<HaltReason>, SnapshotError> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some(HaltReason::Extinct)),
        2 => Ok(Some(HaltReason::Exploded)),
        _ => Err(SnapshotError::Malformed("unknown halt tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            label: "clean-1024".into(),
            state_tag: "inert".into(),
            config: SimConfig::builder()
                .seed(0xFEED)
                .matching(MatchingModel::ExactFraction(0.25))
                .adversary_budget(3)
                .target(1024)
                .build()
                .unwrap(),
            round: 17,
            halted: None,
            adv_rng_state: 0xDEAD_BEEF_CAFE_F00D,
            agent_count: 2,
            agent_bytes: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let snap = sample();
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn every_matching_model_roundtrips() {
        for model in [
            MatchingModel::Full,
            MatchingModel::ExactFraction(0.7),
            MatchingModel::RandomFraction { min_gamma: 0.4 },
        ] {
            let mut snap = sample();
            snap.config.matching = model;
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            assert_eq!(back.config.matching, model);
        }
    }

    #[test]
    fn every_halt_state_roundtrips() {
        for halted in [None, Some(HaltReason::Extinct), Some(HaltReason::Exploded)] {
            let mut snap = sample();
            snap.halted = halted;
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            assert_eq!(back.halted, halted);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&(SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn foreign_stream_versions_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[12..16].copy_from_slice(&(AGENT_STREAM_VERSION + 1).to_le_bytes());
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::StreamMismatch { stream, .. }) => assert_eq!(stream, "agent"),
            other => panic!("expected a stream mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn fork_with_salt_zero_is_the_identity() {
        let snap = sample();
        assert_eq!(snap.fork(0), snap);
    }

    #[test]
    fn fork_perturbs_seed_and_adversary_stream_independently() {
        let snap = sample();
        let a = snap.fork(1);
        let b = snap.fork(2);
        // The branch keeps population/round but re-keys future randomness.
        assert_eq!(a.round, snap.round);
        assert_eq!(a.agent_bytes, snap.agent_bytes);
        assert_ne!(a.config.seed, snap.config.seed);
        assert_ne!(a.adv_rng_state, snap.adv_rng_state);
        // Distinct salts yield distinct branches, and forking is a pure
        // function of (snapshot, salt).
        assert_ne!(a.config.seed, b.config.seed);
        assert_eq!(snap.fork(1), a);
    }

    #[test]
    fn reader_primitives_roundtrip() {
        let mut out = Vec::new();
        write_u8(&mut out, 7);
        write_u32(&mut out, 0xAABB_CCDD);
        write_u64(&mut out, u64::MAX - 1);
        write_bool(&mut out, true);
        write_f64(&mut out, -0.125);
        write_str(&mut out, "tag<inner>");
        let mut r = SnapshotReader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xAABB_CCDD);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "tag<inner>");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.u8(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn bogus_bool_bytes_are_malformed() {
        let mut r = SnapshotReader::new(&[2]);
        assert!(matches!(r.bool(), Err(SnapshotError::Malformed(_))));
    }
}
