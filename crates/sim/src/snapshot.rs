//! Exact checkpoint/restore of engine state (ROADMAP open item 3).
//!
//! Because every random quantity in the engine is *counter-addressable* —
//! agent draws are keyed on `(seed, round, slot)` (agent stream
//! [`AGENT_STREAM_VERSION`]), matching on
//! `round_key(match_key, round)` (matching stream
//! [`MATCHING_STREAM_VERSION`])
//! — an engine's future is a pure function of `(SimConfig, round, agent
//! states, adversary-stream position)`. A [`Snapshot`] captures exactly
//! those four things, so a restored engine continues **bit-for-bit**
//! identically to the uninterrupted run, under [`Threads::Serial`] and
//! [`Threads::Sharded`] alike (pinned by the `snapshot_resume` property
//! tests and the CI snapshot determinism leg).
//!
//! [`Threads::Serial`]: crate::Threads::Serial
//! [`Threads::Sharded`]: crate::Threads::Sharded
//!
//! # What is (and is not) captured
//!
//! Captured: the [`SimConfig`] (seed, matching model, budget, caps), the
//! round counter, the halt flag, every agent's protocol state (via
//! [`SnapshotState`]), and the raw position of the engine-owned adversary
//! RNG stream. Per-round agent/matching keys are *not* stored — they are
//! re-derived from the config seed on restore, which is what makes a
//! seed-perturbed [`fork`](Snapshot::fork) diverge.
//!
//! Not captured: the protocol instance and the adversary instance (the
//! caller supplies both to [`Engine::restore`](crate::Engine::restore) —
//! which is the fork hook: restore the same bytes against a *different*
//! adversary to branch the future), any internal adversary state outside
//! the engine-owned RNG stream (every workspace adversary is stateless or
//! round-keyed, so registry scenarios resume exactly), and the engine's
//! scratch buffers (semantically invisible; rebuilt lazily).
//!
//! # Format
//!
//! A versioned, std-only little-endian binary layout: an 8-byte magic, the
//! [`SNAPSHOT_FORMAT_VERSION`], the two embedded stream versions (a
//! snapshot from a different stream generation is *rejected*, not
//! reinterpreted), a free-form label, the protocol-state tag, the config,
//! the round/halt/adversary-stream words, the encoded agent column, and —
//! since format v2 — a trailing [FNV-1a](fnv1a) checksum over everything
//! before it, verified before any payload field is parsed. A truncated or
//! bit-flipped file is therefore always rejected with a contextual
//! [`SnapshotError`] (byte offset + layout section) instead of decoding to
//! plausible garbage. [`write_to_file`](Snapshot::write_to_file) is atomic
//! (temp file + fsync + rename), so a crash mid-write never leaves a
//! half-snapshot at the target path. Format bumps follow the same
//! coordinated protocol as stream bumps (see `tests/golden/README.md`), and
//! popstab-lint's `stream-version-coherence` rule cross-checks the constant
//! against the README table and this module's version history.
//!
//! # Auto-checkpointing and crash recovery
//!
//! The [`Checkpoint`] observer snapshots a running engine every `k` rounds
//! into a rotation of files, and [`Checkpoint::scan`] finds the newest
//! *valid* checkpoint in such a rotation — skipping corrupt files, which the
//! checksum makes detectable — so a crashed run resumes from the latest
//! surviving state (`experiments run-recoverable` wires this end to end).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use crate::agent::Protocol;
use crate::config::SimConfig;
use crate::driver::{EngineView, Observer};
use crate::engine::{HaltReason, RoundReport};
use crate::matching::{MatchingModel, MATCHING_STREAM_VERSION};
use crate::rng::{splitmix_finalize, AGENT_STREAM_VERSION};

/// Version of the snapshot binary format. Bumped whenever the byte layout
/// changes; the README table under `### Snapshot format` in
/// `tests/golden/README.md` records the history (cross-checked by
/// popstab-lint, which also requires the newest `vN` entry below to match
/// this constant).
///
/// * v1 — initial layout: magic + versions + label + state tag + config +
///   round/halt/adv-stream + encoded agent column.
/// * v2 — appends a trailing FNV-1a 64 checksum over all preceding bytes,
///   verified at decode before any payload field is parsed.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// Leading magic of every snapshot file.
const MAGIC: &[u8; 8] = b"POPSNAP\0";

/// Bytes of the format-v2 checksum trailer (one little-endian `u64`).
const CHECKSUM_LEN: usize = 8;

/// Sanity cap on the agent count a snapshot may claim. Decoding is
/// length-checked everywhere, but the agent *count* is a bare integer a
/// corrupted-yet-resealed file could set to `u64::MAX`; capping it bounds
/// the restore loop (and any pre-allocation) long before memory pressure.
pub const MAX_SNAPSHOT_AGENTS: u64 = 1 << 26;

/// Domain separator for the adversary-stream perturbation in
/// [`Snapshot::fork`], so the adversary stream and the master seed never
/// receive the same mix of one salt.
const ADV_FORK_DOMAIN: u64 = 0xA5A5_1DE0_0B5E_55ED;

/// FNV-1a 64-bit over `bytes` — the snapshot's std-only integrity checksum
/// (format v2 trailer). Not cryptographic: it detects the accidental
/// corruption class (truncation, bit rot, torn writes), which is the
/// failure model snapshot files actually face in checkpoint rotations.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// What can go wrong encoding, decoding, or restoring a snapshot.
///
/// Every decode-side variant carries enough context to act on: truncation
/// and malformation name the byte offset and the layout section being
/// decoded, checksum mismatches carry both sums.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(io::Error),
    /// The byte stream ended before the layout did.
    Truncated {
        /// Byte offset the failed read started at.
        offset: usize,
        /// The layout section being decoded when the bytes ran out.
        section: &'static str,
    },
    /// The bytes parse but violate the layout's invariants.
    Malformed {
        /// What invariant the bytes violate.
        what: &'static str,
        /// Byte offset of the offending value.
        offset: usize,
        /// The layout section being decoded.
        section: &'static str,
    },
    /// The trailing checksum does not match the payload: the file was
    /// corrupted (bit flip, torn write, truncation) after it was sealed.
    ChecksumMismatch {
        /// The checksum computed over the payload actually present.
        expected: u64,
        /// The checksum stored in the trailer.
        found: u64,
    },
    /// The leading magic is not a snapshot's.
    BadMagic,
    /// The snapshot was written by an unknown (newer) format version.
    UnsupportedVersion {
        /// The format version the snapshot claims.
        found: u32,
    },
    /// The snapshot was captured under a different randomness stream
    /// generation; resuming it would not reproduce the original run.
    StreamMismatch {
        /// Which stream disagrees (`"agent"` or `"matching"`).
        stream: &'static str,
        /// The version embedded in the snapshot.
        found: u32,
        /// This build's version.
        expected: u32,
    },
    /// The snapshot holds a different protocol's agent states.
    StateTagMismatch {
        /// The state tag embedded in the snapshot.
        found: String,
        /// The restoring protocol's tag.
        expected: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Truncated { offset, section } => {
                write!(
                    f,
                    "snapshot truncated at byte {offset} (decoding {section})"
                )
            }
            SnapshotError::Malformed {
                what,
                offset,
                section,
            } => write!(f, "malformed snapshot at byte {offset} ({section}): {what}"),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: payload hashes to {expected:#018x} but the trailer \
                 says {found:#018x} — the file is corrupted"
            ),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format v{found} (this build reads v{SNAPSHOT_FORMAT_VERSION})"
                )
            }
            SnapshotError::StreamMismatch {
                stream,
                found,
                expected,
            } => write!(
                f,
                "snapshot was captured under {stream} stream v{found}, this build runs v{expected}"
            ),
            SnapshotError::StateTagMismatch { found, expected } => write!(
                f,
                "snapshot holds `{found}` agent states, the restoring protocol needs `{expected}`"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Appends a `u8` to a snapshot byte stream.
pub fn write_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `bool` as one byte (`0`/`1`).
pub fn write_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    write_u64(out, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a snapshot byte stream, handed to
/// [`SnapshotState::decode`] implementations. Every read is
/// bounds-checked; running off the end yields
/// [`SnapshotError::Truncated`] carrying the byte offset and the layout
/// section being decoded (set with [`set_section`](Self::set_section)).
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SnapshotReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader {
            buf,
            pos: 0,
            section: "snapshot",
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The byte offset of the next read.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Names the layout section subsequent reads belong to, so decode
    /// errors report *where in the layout* the bytes went wrong, not just
    /// the raw offset.
    pub fn set_section(&mut self, section: &'static str) {
        self.section = section;
    }

    /// A [`SnapshotError::Malformed`] at the reader's current position —
    /// the error constructor `decode` implementations should use, so their
    /// diagnostics carry the same offset/section context as the reader's
    /// own.
    pub fn malformed(&self, what: &'static str) -> SnapshotError {
        SnapshotError::Malformed {
            what,
            offset: self.pos,
            section: self.section,
        }
    }

    /// A [`SnapshotError::Truncated`] at the reader's current position.
    fn truncated(&self) -> SnapshotError {
        SnapshotError::Truncated {
            offset: self.pos,
            section: self.section,
        }
    }

    /// Consumes the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.buf.len() {
            return Err(self.truncated());
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Consumes one `bool` byte; anything but `0`/`1` is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.malformed("bool byte out of range")),
        }
    }

    /// Consumes an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consumes a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed("string is not UTF-8"))
    }
}

/// Exact binary encode/decode of one protocol's per-agent state.
///
/// Implementations must round-trip exactly (`decode(encode(s)) == s` field
/// for field) — the snapshot determinism guarantee is only as strong as
/// the state encoding. The tag names the state type so a snapshot cannot
/// be restored against the wrong protocol; wrapper states compose it
/// (e.g. the extensions crate's malice wrapper tags itself
/// `malice<{inner}>`).
pub trait SnapshotState: Sized {
    /// A stable, human-readable name for this state type.
    fn state_tag() -> String;
    /// Appends this state's exact binary encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one state from the reader (the inverse of
    /// [`encode`](SnapshotState::encode)).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`] when the
    /// bytes do not hold a valid state (build the latter with
    /// [`SnapshotReader::malformed`], which stamps the offset context in).
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

/// A checkpoint of a running engine: everything its future depends on.
///
/// Produced by [`Engine::snapshot`](crate::Engine::snapshot) (or
/// [`EngineView::snapshot`] from inside an observer), consumed by
/// [`Engine::restore`](crate::Engine::restore); serialized with
/// [`to_bytes`](Snapshot::to_bytes) / [`from_bytes`](Snapshot::from_bytes)
/// (or the file conveniences). [`fork`](Snapshot::fork) derives divergent
/// branches. See the module docs for what is and is not captured.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Free-form caller label (e.g. the registry scenario name a CLI
    /// snapshot was taken from); round-trips through the byte format but
    /// never affects the simulation.
    pub label: String,
    pub(crate) state_tag: String,
    pub(crate) config: SimConfig,
    pub(crate) round: u64,
    pub(crate) halted: Option<HaltReason>,
    pub(crate) adv_rng_state: u64,
    pub(crate) agent_count: u64,
    pub(crate) agent_bytes: Vec<u8>,
}

impl Snapshot {
    /// The round the engine had completed when the snapshot was taken.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The captured population size.
    pub fn population(&self) -> usize {
        self.agent_count as usize
    }

    /// The captured configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Mutable access to the captured configuration, for counterfactual
    /// branches that change parameters (budget, matching model, caps)
    /// before [`Engine::restore`](crate::Engine::restore). Changing the
    /// `seed` re-keys the *future* randomness exactly like
    /// [`fork`](Snapshot::fork) does.
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.config
    }

    /// The tag of the protocol state type captured here.
    pub fn state_tag(&self) -> &str {
        &self.state_tag
    }

    /// Whether the captured engine had halted, and why.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// A branch of this snapshot: the same population and round, with all
    /// *future* randomness re-keyed by `salt`.
    ///
    /// Salt `0` is the identity — restoring the branch reproduces the
    /// straight-line run bit for bit. Any other salt perturbs the master
    /// seed (re-keying the agent and matching streams, which restore
    /// re-derives from the seed) and, through a separate domain, the
    /// adversary stream position, so sibling branches diverge immediately
    /// but each remains exactly reproducible.
    #[must_use]
    pub fn fork(&self, salt: u64) -> Snapshot {
        let mut branch = self.clone();
        if salt != 0 {
            branch.config.seed = splitmix_finalize(self.config.seed ^ splitmix_finalize(salt));
            branch.adv_rng_state =
                splitmix_finalize(self.adv_rng_state ^ splitmix_finalize(salt ^ ADV_FORK_DOMAIN));
        }
        branch
    }

    /// Serializes the snapshot (see the module docs for the layout),
    /// sealing it with the format-v2 [`fnv1a`] checksum trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(72 + self.label.len() + self.agent_bytes.len());
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, SNAPSHOT_FORMAT_VERSION);
        write_u32(&mut out, AGENT_STREAM_VERSION);
        write_u32(&mut out, MATCHING_STREAM_VERSION);
        write_str(&mut out, &self.label);
        write_str(&mut out, &self.state_tag);
        encode_config(&mut out, &self.config);
        write_u64(&mut out, self.round);
        write_u8(&mut out, encode_halt(self.halted));
        write_u64(&mut out, self.adv_rng_state);
        write_u64(&mut out, self.agent_count);
        write_u64(&mut out, self.agent_bytes.len() as u64);
        out.extend_from_slice(&self.agent_bytes);
        let seal = fnv1a(&out);
        write_u64(&mut out, seal);
        out
    }

    /// Deserializes a snapshot, rejecting wrong magic, unknown format
    /// versions, corrupted payloads (checksum verified before any payload
    /// field is parsed), and snapshots captured under a different
    /// randomness stream generation.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]; every decode error names the byte offset and
    /// layout section it arose in. Trailing bytes after the layout are
    /// [`SnapshotError::Malformed`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        r.set_section("magic");
        if r.bytes(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        r.set_section("format version");
        let format = r.u32()?;
        if format != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: format });
        }
        // v2 trailer: the final 8 bytes checksum everything before them.
        // Verified *now*, before any payload parsing, so corruption anywhere
        // in the payload reports as a checksum mismatch rather than as
        // whatever decode error the flipped bytes happen to trip.
        r.set_section("checksum trailer");
        if bytes.len() < r.offset() + CHECKSUM_LEN {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
                section: "checksum trailer",
            });
        }
        let body_len = bytes.len() - CHECKSUM_LEN;
        let found = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
        let expected = fnv1a(&bytes[..body_len]);
        if found != expected {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }
        r.set_section("stream versions");
        for (stream, expected) in [
            ("agent", AGENT_STREAM_VERSION),
            ("matching", MATCHING_STREAM_VERSION),
        ] {
            let found = r.u32()?;
            if found != expected {
                return Err(SnapshotError::StreamMismatch {
                    stream,
                    found,
                    expected,
                });
            }
        }
        r.set_section("label");
        let label = r.str()?;
        r.set_section("state tag");
        let state_tag = r.str()?;
        r.set_section("config");
        let config = decode_config(&mut r)?;
        r.set_section("round/halt/adversary stream");
        let round = r.u64()?;
        let halted = decode_halt(&mut r)?;
        let adv_rng_state = r.u64()?;
        r.set_section("agent column");
        let agent_count = r.u64()?;
        if agent_count > MAX_SNAPSHOT_AGENTS {
            return Err(r.malformed("agent count exceeds the sanity cap"));
        }
        let agent_len = r.u64()?;
        let agent_len =
            usize::try_from(agent_len).map_err(|_| r.malformed("agent column too large"))?;
        let agent_bytes = r.bytes(agent_len)?.to_vec();
        if r.remaining() != CHECKSUM_LEN {
            return Err(r.malformed("trailing bytes"));
        }
        Ok(Snapshot {
            label,
            state_tag,
            config,
            round,
            halted,
            adv_rng_state,
            agent_count,
            agent_bytes,
        })
    }

    /// Writes [`to_bytes`](Snapshot::to_bytes) to a file **atomically**:
    /// the bytes go to a `.tmp` sibling first, are fsynced, and the
    /// temporary is renamed over `path` — so a crash (or injected fault) at
    /// any point leaves either the previous file or the complete new one,
    /// never a half-snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure (the temporary is
    /// cleaned up on the error path).
    pub fn write_to_file<Q: AsRef<Path>>(&self, path: Q) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let bytes = self.to_bytes();
        let result = (|| -> io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, &bytes)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        Ok(result?)
    }

    /// Reads and [`from_bytes`](Snapshot::from_bytes)-decodes a file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, plus every
    /// [`from_bytes`](Snapshot::from_bytes) error.
    pub fn read_from_file<Q: AsRef<Path>>(path: Q) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_bytes(&std::fs::read(path)?)
    }
}

impl<P: Protocol> EngineView<'_, P>
where
    P::State: SnapshotState,
{
    /// Captures the observed post-round engine state as an unlabeled
    /// [`Snapshot`] — the observer-side twin of
    /// [`Engine::snapshot`](crate::Engine::snapshot), which is what lets
    /// the [`Checkpoint`] combinator checkpoint a run from *inside* the
    /// round loop.
    pub fn snapshot(&self) -> Snapshot {
        let mut agent_bytes = Vec::new();
        for agent in self.agents() {
            agent.encode(&mut agent_bytes);
        }
        Snapshot {
            label: String::new(),
            state_tag: P::State::state_tag(),
            config: self.config().clone(),
            round: self.round(),
            halted: self.halted(),
            adv_rng_state: self.adv_rng_state(),
            agent_count: self.agents().len() as u64,
            agent_bytes,
        }
    }
}

/// An [`Observer`] that checkpoints the run every `k` rounds into a
/// rotation of snapshot files.
///
/// Rounds `k, 2k, 3k, …` (the engine's post-round global counter) are
/// snapshotted to `<base>.<slot>.snap` with `slot = (round / k) % keep`, so
/// at most `keep` files ever exist and the newest checkpoints overwrite the
/// oldest slots. Writes are atomic ([`Snapshot::write_to_file`]), and write
/// *failures never interrupt the run* — they are collected into
/// [`errors`](Checkpoint::errors) for the caller to inspect, because a
/// full disk should cost you checkpoints, not the simulation.
///
/// [`Checkpoint::scan`] is the recovery-side counterpart: it inspects a
/// rotation and returns the newest checkpoint that still decodes, skipping
/// corrupt files (which the format-v2 checksum makes reliably detectable).
///
/// ```no_run
/// use popstab_sim::{protocols::Inert, Checkpoint, Engine, RunSpec, SimConfig};
///
/// let cfg = SimConfig::builder().seed(7).build().unwrap();
/// let mut engine = Engine::with_population(Inert, cfg, 64);
/// let mut ckpt = Checkpoint::every(10, "run.ckpt").keep(3).label("demo");
/// engine.run(RunSpec::rounds(100), &mut ckpt);
/// assert!(ckpt.errors().is_empty());
/// ```
#[derive(Debug)]
pub struct Checkpoint {
    base: PathBuf,
    every: u64,
    keep: usize,
    label: String,
    written: u64,
    errors: Vec<(u64, SnapshotError)>,
}

impl Checkpoint {
    /// Checkpoints every `every` rounds (`0` is clamped to 1) into the
    /// rotation rooted at `base`, keeping 3 slots by default.
    pub fn every<Q: Into<PathBuf>>(every: u64, base: Q) -> Checkpoint {
        Checkpoint {
            base: base.into(),
            every: every.max(1),
            keep: 3,
            label: String::new(),
            written: 0,
            errors: Vec::new(),
        }
    }

    /// Sets the rotation depth (`0` is clamped to 1).
    #[must_use]
    pub fn keep(mut self, keep: usize) -> Checkpoint {
        self.keep = keep.max(1);
        self
    }

    /// Sets the label stamped into every written snapshot (e.g. the
    /// registry scenario name, which is how `experiments run-recoverable`
    /// refuses to resume the wrong scenario's checkpoints).
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Checkpoint {
        self.label = label.into();
        self
    }

    /// Snapshots successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Checkpoint writes that failed, as `(round, error)` pairs. Failures
    /// never interrupt the observed run.
    pub fn errors(&self) -> &[(u64, SnapshotError)] {
        &self.errors
    }

    /// The rotation file for `slot`: `<base>.<slot>.snap`.
    pub fn slot_path(base: &Path, slot: usize) -> PathBuf {
        let mut name = base.as_os_str().to_os_string();
        name.push(format!(".{slot}.snap"));
        PathBuf::from(name)
    }

    /// Scans the rotation rooted at `base` (slots `0..keep`) for the newest
    /// *valid* checkpoint: the decodable snapshot with the highest round.
    /// Files that exist but fail to decode — truncated, bit-flipped,
    /// version-foreign — are reported in [`RecoveryScan::skipped`] and
    /// recovery falls back to the next-best slot; missing slots are simply
    /// absent.
    pub fn scan(base: &Path, keep: usize) -> RecoveryScan {
        let mut best: Option<(PathBuf, Snapshot)> = None;
        let mut skipped = Vec::new();
        for slot in 0..keep.max(1) {
            let path = Checkpoint::slot_path(base, slot);
            match Snapshot::read_from_file(&path) {
                Ok(snap) => {
                    if best.as_ref().is_none_or(|(_, b)| snap.round > b.round) {
                        best = Some((path, snap));
                    }
                }
                Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => skipped.push((path, e)),
            }
        }
        RecoveryScan { best, skipped }
    }
}

impl<P: Protocol> Observer<P> for Checkpoint
where
    P::State: SnapshotState,
{
    fn on_round(&mut self, _report: &RoundReport, view: &EngineView<'_, P>) {
        if !view.round().is_multiple_of(self.every) {
            return;
        }
        let mut snap = view.snapshot();
        snap.label = self.label.clone();
        let slot = ((view.round() / self.every) % self.keep as u64) as usize;
        match snap.write_to_file(Checkpoint::slot_path(&self.base, slot)) {
            Ok(()) => self.written += 1,
            Err(e) => self.errors.push((view.round(), e)),
        }
    }
}

/// The result of [`Checkpoint::scan`]: the newest valid checkpoint in a
/// rotation, plus every corrupt file the scan skipped on the way.
#[derive(Debug)]
pub struct RecoveryScan {
    /// The decodable snapshot with the highest round, and its path.
    pub best: Option<(PathBuf, Snapshot)>,
    /// Rotation files that exist but failed to decode (missing files are
    /// not listed — only genuine corruption or version skew).
    pub skipped: Vec<(PathBuf, SnapshotError)>,
}

/// Encodes a [`SimConfig`] (tagged matching model, then the scalar
/// fields; `usize` fields widen to `u64`).
fn encode_config(out: &mut Vec<u8>, cfg: &SimConfig) {
    match cfg.matching {
        MatchingModel::Full => write_u8(out, 0),
        MatchingModel::ExactFraction(gamma) => {
            write_u8(out, 1);
            write_f64(out, gamma);
        }
        MatchingModel::RandomFraction { min_gamma } => {
            write_u8(out, 2);
            write_f64(out, min_gamma);
        }
    }
    write_u64(out, cfg.adversary_budget as u64);
    write_u64(out, cfg.seed);
    write_u64(out, cfg.max_population as u64);
    write_u64(out, cfg.target);
}

/// The inverse of [`encode_config`].
fn decode_config(r: &mut SnapshotReader<'_>) -> Result<SimConfig, SnapshotError> {
    let matching = match r.u8()? {
        0 => MatchingModel::Full,
        1 => MatchingModel::ExactFraction(r.f64()?),
        2 => MatchingModel::RandomFraction {
            min_gamma: r.f64()?,
        },
        _ => return Err(r.malformed("unknown matching model tag")),
    };
    let adversary_budget = read_usize(r, "adversary budget does not fit usize")?;
    let seed = r.u64()?;
    let max_population = read_usize(r, "max population does not fit usize")?;
    let target = r.u64()?;
    Ok(SimConfig {
        matching,
        adversary_budget,
        seed,
        max_population,
        target,
    })
}

/// Reads a `u64` that must fit this platform's `usize`.
fn read_usize(r: &mut SnapshotReader<'_>, what: &'static str) -> Result<usize, SnapshotError> {
    let v = r.u64()?;
    usize::try_from(v).map_err(|_| r.malformed(what))
}

/// One-byte halt tag: `0` running, `1` extinct, `2` exploded.
fn encode_halt(halted: Option<HaltReason>) -> u8 {
    match halted {
        None => 0,
        Some(HaltReason::Extinct) => 1,
        Some(HaltReason::Exploded) => 2,
    }
}

/// The inverse of [`encode_halt`].
fn decode_halt(r: &mut SnapshotReader<'_>) -> Result<Option<HaltReason>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(HaltReason::Extinct)),
        2 => Ok(Some(HaltReason::Exploded)),
        _ => Err(r.malformed("unknown halt tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            label: "clean-1024".into(),
            state_tag: "inert".into(),
            config: SimConfig::builder()
                .seed(0xFEED)
                .matching(MatchingModel::ExactFraction(0.25))
                .adversary_budget(3)
                .target(1024)
                .build()
                .unwrap(),
            round: 17,
            halted: None,
            adv_rng_state: 0xDEAD_BEEF_CAFE_F00D,
            agent_count: 2,
            agent_bytes: vec![1, 2, 3, 4],
        }
    }

    /// Recomputes the checksum trailer after a test hand-patches payload
    /// bytes, so the patch under test is reached instead of the checksum
    /// rejecting the edit first.
    fn reseal(bytes: &mut [u8]) {
        let body = bytes.len() - CHECKSUM_LEN;
        let seal = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&seal.to_le_bytes());
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let snap = sample();
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn every_matching_model_roundtrips() {
        for model in [
            MatchingModel::Full,
            MatchingModel::ExactFraction(0.7),
            MatchingModel::RandomFraction { min_gamma: 0.4 },
        ] {
            let mut snap = sample();
            snap.config.matching = model;
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            assert_eq!(back.config.matching, model);
        }
    }

    #[test]
    fn every_halt_state_roundtrips() {
        for halted in [None, Some(HaltReason::Extinct), Some(HaltReason::Exploded)] {
            let mut snap = sample();
            snap.halted = halted;
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            assert_eq!(back.halted, halted);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_format_versions_are_rejected() {
        // No reseal: the format version is checked before the checksum, so
        // a genuinely newer format (whose trailer location we cannot know)
        // still reports *version*, not corruption.
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&(SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn foreign_stream_versions_are_rejected() {
        // Resealed: a file genuinely written under a foreign stream carries
        // a valid checksum, and must still be rejected for its *streams*.
        let mut bytes = sample().to_bytes();
        bytes[12..16].copy_from_slice(&(AGENT_STREAM_VERSION + 1).to_le_bytes());
        reseal(&mut bytes);
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::StreamMismatch { stream, .. }) => assert_eq!(stream, "agent"),
            other => panic!("expected a stream mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        // The v2 checksum covers every payload byte and the trailer is
        // self-invalidating, so *no* single-bit corruption may decode.
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&flipped).is_err(),
                    "flip of byte {i} bit {bit} decoded"
                );
            }
        }
    }

    #[test]
    fn payload_corruption_reports_a_checksum_mismatch() {
        let mut bytes = sample().to_bytes();
        // Flip a bit in the label region, past the version words.
        bytes[20] ^= 0x10;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        let at = bytes.len() - CHECKSUM_LEN;
        bytes.insert(at, 0);
        reseal(&mut bytes);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Malformed {
                what: "trailing bytes",
                ..
            })
        ));
    }

    #[test]
    fn absurd_agent_counts_are_rejected_by_the_sanity_cap() {
        let mut snap = sample();
        snap.agent_count = MAX_SNAPSHOT_AGENTS + 1;
        let bytes = snap.to_bytes();
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::Malformed { what, section, .. }) => {
                assert!(what.contains("sanity cap"), "{what}");
                assert_eq!(section, "agent column");
            }
            other => panic!("expected the sanity cap to fire, got {other:?}"),
        }
    }

    #[test]
    fn decode_errors_carry_offset_and_section_context() {
        let bytes = sample().to_bytes();
        // Truncate inside the label string, then reseal so the checksum
        // passes and the *parser* reports the damage: the error must name
        // the label section and an offset inside it. (Without the reseal
        // the checksum catches the truncation first — see
        // `truncation_anywhere_is_rejected`.)
        let mut cut = bytes[..22].to_vec();
        cut.extend_from_slice(&[0u8; CHECKSUM_LEN]);
        reseal(&mut cut);
        match Snapshot::from_bytes(&cut) {
            Err(SnapshotError::Truncated { offset, section }) => {
                assert_eq!(section, "label");
                assert!(offset >= 20, "offset {offset} before the label");
            }
            other => panic!("expected contextual truncation, got {other:?}"),
        }
    }

    #[test]
    fn fork_with_salt_zero_is_the_identity() {
        let snap = sample();
        assert_eq!(snap.fork(0), snap);
    }

    #[test]
    fn fork_perturbs_seed_and_adversary_stream_independently() {
        let snap = sample();
        let a = snap.fork(1);
        let b = snap.fork(2);
        // The branch keeps population/round but re-keys future randomness.
        assert_eq!(a.round, snap.round);
        assert_eq!(a.agent_bytes, snap.agent_bytes);
        assert_ne!(a.config.seed, snap.config.seed);
        assert_ne!(a.adv_rng_state, snap.adv_rng_state);
        // Distinct salts yield distinct branches, and forking is a pure
        // function of (snapshot, salt).
        assert_ne!(a.config.seed, b.config.seed);
        assert_eq!(snap.fork(1), a);
    }

    #[test]
    fn reader_primitives_roundtrip() {
        let mut out = Vec::new();
        write_u8(&mut out, 7);
        write_u32(&mut out, 0xAABB_CCDD);
        write_u64(&mut out, u64::MAX - 1);
        write_bool(&mut out, true);
        write_f64(&mut out, -0.125);
        write_str(&mut out, "tag<inner>");
        let mut r = SnapshotReader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xAABB_CCDD);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "tag<inner>");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.u8(), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn bogus_bool_bytes_are_malformed() {
        let mut r = SnapshotReader::new(&[2]);
        r.set_section("bool test");
        match r.bool() {
            Err(SnapshotError::Malformed {
                offset, section, ..
            }) => {
                assert_eq!(offset, 1);
                assert_eq!(section, "bool test");
            }
            other => panic!("expected malformed bool, got {other:?}"),
        }
    }

    #[test]
    fn fnv1a_matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
