//! Trajectory views over recorded metrics, plus CSV export.

use std::io::{self, Write};

use crate::metrics::RoundStats;

/// A read-only view over a run's recorded rounds with convenience analytics.
#[derive(Debug, Clone, Copy)]
pub struct Trajectory<'a> {
    stats: &'a [RoundStats],
}

impl<'a> Trajectory<'a> {
    /// Wraps a slice of recorded rounds.
    pub fn new(stats: &'a [RoundStats]) -> Self {
        Trajectory { stats }
    }

    /// The underlying records.
    pub fn rounds(&self) -> &'a [RoundStats] {
        self.stats
    }

    /// Population value of each recorded round.
    pub fn population_series(&self) -> Vec<usize> {
        self.stats.iter().map(|s| s.population).collect()
    }

    /// Populations sampled at the end of each epoch of length `epoch_len`
    /// (records whose round number is `≡ epoch_len − 1 (mod epoch_len)`).
    pub fn epoch_end_populations(&self, epoch_len: u64) -> Vec<usize> {
        assert!(epoch_len > 0, "epoch_len must be positive");
        self.stats
            .iter()
            .filter(|s| s.round % epoch_len == epoch_len - 1)
            .map(|s| s.population)
            .collect()
    }

    /// Largest absolute population change between consecutive epoch ends.
    pub fn max_epoch_deviation(&self, epoch_len: u64) -> Option<u64> {
        let pops = self.epoch_end_populations(epoch_len);
        pops.windows(2).map(|w| w[1].abs_diff(w[0]) as u64).max()
    }

    /// Whether every recorded population lies in `[lo, hi]`.
    pub fn stays_within(&self, lo: usize, hi: usize) -> bool {
        self.stats.iter().all(|s| (lo..=hi).contains(&s.population))
    }

    /// First recorded round whose population leaves `[lo, hi]`, if any.
    pub fn first_violation(&self, lo: usize, hi: usize) -> Option<u64> {
        self.stats
            .iter()
            .find(|s| !(lo..=hi).contains(&s.population))
            .map(|s| s.round)
    }

    /// Writes the trajectory as CSV (header + one row per record).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(
            out,
            "round,population,active,color0,color1,leaders,recruiting,in_eval,wrong_round,\
             splits,deaths,adv_inserted,adv_deleted,adv_modified"
        )?;
        for s in self.stats {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.round,
                s.population,
                s.active,
                s.color0,
                s.color1,
                s.leaders,
                s.recruiting,
                s.in_eval,
                s.wrong_round,
                s.splits,
                s.deaths,
                s.adv_inserted,
                s.adv_deleted,
                s.adv_modified
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(round: u64, population: usize) -> RoundStats {
        RoundStats {
            round,
            population,
            ..RoundStats::default()
        }
    }

    #[test]
    fn series_and_bounds() {
        let rounds: Vec<_> = (0..10).map(|r| stats_with(r, 100 + r as usize)).collect();
        let t = Trajectory::new(&rounds);
        assert_eq!(t.population_series().len(), 10);
        assert!(t.stays_within(100, 109));
        assert!(!t.stays_within(100, 105));
        assert_eq!(t.first_violation(100, 105), Some(6));
        assert_eq!(t.first_violation(0, 1000), None);
    }

    #[test]
    fn epoch_sampling() {
        let rounds: Vec<_> = (0..20)
            .map(|r| stats_with(r, (r as usize + 1) * 10))
            .collect();
        let t = Trajectory::new(&rounds);
        // epoch_len 5 -> rounds 4, 9, 14, 19
        assert_eq!(t.epoch_end_populations(5), vec![50, 100, 150, 200]);
        assert_eq!(t.max_epoch_deviation(5), Some(50));
    }

    #[test]
    #[should_panic(expected = "epoch_len must be positive")]
    fn zero_epoch_len_panics() {
        let rounds = [stats_with(0, 1)];
        Trajectory::new(&rounds).epoch_end_populations(0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rounds = [stats_with(0, 5), stats_with(1, 6)];
        let mut buf = Vec::new();
        Trajectory::new(&rounds).write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("round,population"));
        assert!(lines[1].starts_with("0,5,"));
        assert!(lines[2].starts_with("1,6,"));
    }
}
