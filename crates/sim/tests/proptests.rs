//! Property-based tests for the substrate: matching validity, engine
//! accounting and budget enforcement, batch-execution determinism, and
//! scratch-buffer transparency.

use proptest::prelude::*;

use popstab_sim::batch::{job_seed, BatchRunner};
use popstab_sim::matching::{sample_matching, MatchingModel, UNMATCHED};
use popstab_sim::protocols::{Inert, InertState};
use popstab_sim::rng::counter_seed;
use popstab_sim::{
    Action, Adversary, Alteration, Engine, Observable, Observation, Protocol, RoundContext,
    SimConfig, SimRng,
};

/// Splits, dies, or kills its partner when matched and the coin lands
/// right. Exercises every population-changing path (including the §1.2
/// partner-kill, whose cross-shard death indices stress the parallel
/// paths) with seed-dependent behavior.
#[derive(Clone, Copy)]
struct Flaky;

#[derive(Debug, Clone)]
struct FState;

impl Observable for FState {
    fn observe(&self) -> Observation {
        Observation::default()
    }
}

impl Protocol for Flaky {
    type State = FState;
    type Message = ();
    fn initial_state(&self, _rng: &mut SimRng) -> FState {
        FState
    }
    fn message(&self, _s: &FState) {}
    fn step(&self, _s: &mut FState, m: Option<&()>, rng: &mut SimRng) -> Action {
        use rand::Rng;
        if m.is_some() {
            match rng.random_range(0..8u8) {
                0 => Action::Split,
                1 => Action::Die,
                2 => Action::KillPartner,
                _ => Action::Continue,
            }
        } else {
            Action::Continue
        }
    }
}

/// Randomly deletes/inserts within the budget.
struct Chaos;

impl Adversary<FState> for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn act(
        &mut self,
        ctx: &RoundContext,
        agents: &[FState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<FState>> {
        use rand::Rng;
        let mut out = Vec::new();
        for _ in 0..ctx.budget {
            if rng.random::<bool>() && !agents.is_empty() {
                out.push(Alteration::Delete(rng.random_range(0..agents.len())));
            } else {
                out.push(Alteration::Insert(FState));
            }
        }
        out
    }
}

fn chaos_config(seed: u64, budget: usize) -> SimConfig {
    SimConfig::builder()
        .seed(seed)
        .adversary_budget(budget)
        .matching(MatchingModel::RandomFraction { min_gamma: 0.3 })
        .build()
        .unwrap()
}

/// One batch job: a full adversarial simulation reduced to its trajectory.
fn chaos_trial(seed: u64, start: usize, rounds: u64) -> Vec<(u64, usize, usize, usize)> {
    let mut engine = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 3), start);
    let mut trace = Vec::new();
    engine.run_until(rounds, |r| {
        trace.push((r.round, r.population_after, r.splits, r.deaths));
        false
    });
    trace
}

proptest! {
    #[test]
    fn matching_is_a_valid_partial_matching(
        population in 0usize..2000,
        seed in 0u64..500,
        gamma in 0.05f64..=1.0,
    ) {
        let m = sample_matching(population, MatchingModel::ExactFraction(gamma), counter_seed(seed, 0, 0));
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in m.pairs() {
            prop_assert_ne!(a, b);
            prop_assert!((a as usize) < population && (b as usize) < population);
            prop_assert!(seen.insert(a));
            prop_assert!(seen.insert(b));
        }
        // Exactly ⌊γ·m/2⌋ pairs (capped by ⌊m/2⌋).
        let expect = (((gamma * population as f64).floor() as usize) / 2).min(population / 2);
        prop_assert_eq!(m.len(), expect);
    }

    #[test]
    fn random_fraction_never_undershoots(
        population in 2usize..1000,
        seed in 0u64..200,
        min_gamma in 0.1f64..=0.9,
    ) {
        let m = sample_matching(population, MatchingModel::RandomFraction { min_gamma }, counter_seed(seed, 1, 0));
        // matched = 2·⌊fraction·m/2⌋ ≥ 2·⌊min_gamma·m/2⌋ − rounding slack.
        let floor = ((min_gamma * population as f64).floor() as usize / 2) * 2;
        prop_assert!(m.matched_agents() + 1 >= floor, "matched {} < floor {}", m.matched_agents(), floor);
    }

    #[test]
    fn partner_table_roundtrips(population in 0usize..500, seed in 0u64..100) {
        let m = sample_matching(population, MatchingModel::Full, counter_seed(seed, 2, 0));
        let table = m.partner_table(population);
        for (i, &p) in table.iter().enumerate() {
            if p != UNMATCHED {
                prop_assert_eq!(table[p as usize], i as u32);
            }
        }
        let matched = table.iter().filter(|&&p| p != UNMATCHED).count();
        prop_assert_eq!(matched, m.matched_agents());
    }

    #[test]
    fn engine_population_identity_holds_every_round(
        seed in 0u64..200,
        start in 1usize..200,
        budget in 0usize..10,
        rounds in 1u64..30,
    ) {
        let cfg = SimConfig::builder().seed(seed).adversary_budget(budget).build().unwrap();
        let mut engine = Engine::with_adversary(Flaky, Chaos, cfg, start);
        for _ in 0..rounds {
            let before = engine.population();
            let r = engine.run_round();
            prop_assert_eq!(r.population_before, before);
            prop_assert_eq!(
                r.population_after as i64,
                before as i64 + r.inserted as i64 - r.deleted as i64
                    + r.splits as i64 - r.deaths as i64
            );
            prop_assert!(r.inserted + r.deleted + r.modified <= budget);
            if engine.halted().is_some() { break; }
        }
    }

    #[test]
    fn engine_is_deterministic_per_seed(seed in 0u64..100, start in 2usize..100) {
        let run = |s: u64| {
            let cfg = SimConfig::builder()
                .seed(s)
                .matching(MatchingModel::RandomFraction { min_gamma: 0.3 })
                .build()
                .unwrap();
            let mut e = Engine::with_population(Inert, cfg, start);
            e.run_rounds(5);
            e.metrics().rounds().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn budget_zero_means_no_alterations(seed in 0u64..100, start in 1usize..100) {
        struct Greedy;
        impl Adversary<InertState> for Greedy {
            fn name(&self) -> &'static str { "greedy" }
            fn act(&mut self, _c: &RoundContext, agents: &[InertState], _r: &mut SimRng) -> Vec<Alteration<InertState>> {
                (0..agents.len()).map(Alteration::Delete).collect()
            }
        }
        let cfg = SimConfig::builder().seed(seed).adversary_budget(0).build().unwrap();
        let mut engine = Engine::with_adversary(Inert, Greedy, cfg, start);
        engine.run_rounds(5);
        prop_assert_eq!(engine.population(), start);
    }

    /// The batch determinism contract: for random job sets, one worker and
    /// many workers return identical results (full per-round trajectories,
    /// not just finals).
    #[test]
    fn batch_runner_is_thread_count_independent(
        master in 0u64..1000,
        jobs in 1usize..12,
        start in 2usize..60,
        rounds in 1u64..25,
    ) {
        let seeds: Vec<u64> = (0..jobs as u64).map(|i| job_seed(master, i)).collect();
        let trial = |_: usize, seed: u64| chaos_trial(seed, start, rounds);
        let serial = BatchRunner::new(1).run(seeds.clone(), trial);
        let parallel = BatchRunner::new(8).run(seeds.clone(), trial);
        prop_assert_eq!(&serial, &parallel);
        let native = BatchRunner::from_env().run(seeds, trial);
        prop_assert_eq!(&serial, &native);
    }

    /// Scratch-buffer reuse is semantically invisible: an engine stepped
    /// through the persistent-scratch path matches an engine stepped with
    /// freshly allocated buffers round-for-round on random configurations.
    #[test]
    fn scratch_engine_matches_fresh_allocation_engine(
        seed in 0u64..300,
        start in 1usize..120,
        budget in 0usize..8,
        rounds in 1u64..40,
    ) {
        let mut reused = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, budget), start);
        let mut fresh = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, budget), start);
        for _ in 0..rounds {
            let a = reused.run_round();
            let b = fresh.run_round_fresh();
            prop_assert_eq!(a, b);
            prop_assert_eq!(reused.population(), fresh.population());
            prop_assert_eq!(reused.halted(), fresh.halted());
            if reused.halted().is_some() {
                break;
            }
        }
        prop_assert_eq!(reused.metrics().rounds(), fresh.metrics().rounds());
    }

    /// The satellite guarantee of the counter-RNG refactor: `par_round` at
    /// **one** worker executes the parallel code path inline and must equal
    /// the serial `run_round` byte for byte — reports, metrics, halt state.
    #[test]
    fn par_round_at_one_worker_equals_serial_round(
        seed in 0u64..300,
        start in 1usize..120,
        budget in 0usize..8,
        rounds in 1u64..30,
    ) {
        let mut serial = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, budget), start);
        let mut par = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, budget), start);
        for _ in 0..rounds {
            let a = serial.run_round();
            let b = par.par_round(1);
            prop_assert_eq!(a, b);
            prop_assert_eq!(serial.population(), par.population());
            prop_assert_eq!(serial.halted(), par.halted());
            if serial.halted().is_some() {
                break;
            }
        }
        prop_assert_eq!(serial.metrics().rounds(), par.metrics().rounds());
    }

    /// The tentpole guarantee: intra-round sharding is bit-identical to the
    /// serial engine for every worker count — same per-round trajectory
    /// under adversarial churn, splits, deaths and partner-kills.
    #[test]
    fn run_until_par_matches_serial_for_every_worker_count(
        seed in 0u64..300,
        start in 2usize..120,
        rounds in 1u64..40,
        workers in 2usize..6,
    ) {
        let serial_trace = chaos_trial(seed, start, rounds);
        let mut engine = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 3), start);
        let mut par_trace = Vec::new();
        engine.run_until_par(rounds, workers, |r| {
            par_trace.push((r.round, r.population_after, r.splits, r.deaths));
            false
        });
        prop_assert_eq!(serial_trace, par_trace);
    }

    /// `run_rounds_par` records through the same stride as `run_rounds`:
    /// identical metrics and final state for any worker count.
    #[test]
    fn run_rounds_par_matches_run_rounds_with_recording(
        seed in 0u64..200,
        start in 2usize..100,
        rounds in 1u64..30,
        workers in 1usize..5,
    ) {
        let mut serial = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        serial.run_rounds(rounds);
        let mut par = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        par.run_rounds_par(rounds, workers);
        prop_assert_eq!(serial.population(), par.population());
        prop_assert_eq!(serial.round(), par.round());
        prop_assert_eq!(serial.halted(), par.halted());
        prop_assert_eq!(serial.metrics().rounds(), par.metrics().rounds());
    }

    /// The fast paths execute bit-identical rounds to `run_rounds`; they only
    /// skip the recording side channel.
    #[test]
    fn fast_paths_match_run_rounds(
        seed in 0u64..300,
        start in 2usize..100,
        epochs in 1u64..5,
        epoch_len in 1u64..12,
    ) {
        let rounds = epochs * epoch_len;
        let mut slow = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        slow.run_rounds(rounds);
        let mut until = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        until.run_until(rounds, |_| false);
        let mut epoched = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        epoched.run_epochs(epochs, epoch_len);
        prop_assert_eq!(slow.population(), until.population());
        prop_assert_eq!(slow.population(), epoched.population());
        prop_assert_eq!(slow.round(), until.round());
        prop_assert_eq!(slow.round(), epoched.round());
        prop_assert_eq!(slow.halted(), until.halted());
        prop_assert_eq!(slow.halted(), epoched.halted());
        // run_epochs records exactly one sample per completed epoch.
        if epoched.halted().is_none() {
            prop_assert_eq!(epoched.metrics().len() as u64, epochs);
        }
    }
}
