//! Property-based tests for the substrate: matching validity, engine
//! accounting and budget enforcement, batch-execution determinism, and
//! scratch-buffer transparency.

use proptest::prelude::*;

use popstab_sim::batch::{job_seed, BatchRunner};
use popstab_sim::matching::{sample_matching, MatchingModel, UNMATCHED};
use popstab_sim::protocols::{Inert, InertState};
use popstab_sim::rng::counter_seed;
use popstab_sim::{
    Action, Adversary, Alteration, Engine, MetricsRecorder, Observable, Observation, OnRound,
    Protocol, RecordStats, RoundContext, RoundReport, RunSpec, SimConfig, SimRng, Stride, Tee,
};

/// Splits, dies, or kills its partner when matched and the coin lands
/// right. Exercises every population-changing path (including the §1.2
/// partner-kill, whose cross-shard death indices stress the parallel
/// paths) with seed-dependent behavior.
#[derive(Clone, Copy)]
struct Flaky;

#[derive(Debug, Clone)]
struct FState;

impl Observable for FState {
    fn observe(&self) -> Observation {
        Observation::default()
    }
}

impl Protocol for Flaky {
    type State = FState;
    type Message = ();
    fn initial_state(&self, _rng: &mut SimRng) -> FState {
        FState
    }
    fn message(&self, _s: &FState) {}
    fn step(&self, _s: &mut FState, m: Option<&()>, rng: &mut SimRng) -> Action {
        use rand::Rng;
        if m.is_some() {
            match rng.random_range(0..8u8) {
                0 => Action::Split,
                1 => Action::Die,
                2 => Action::KillPartner,
                _ => Action::Continue,
            }
        } else {
            Action::Continue
        }
    }
}

/// Randomly deletes/inserts within the budget.
struct Chaos;

impl Adversary<FState> for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn act(
        &mut self,
        ctx: &RoundContext,
        agents: &[FState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<FState>> {
        use rand::Rng;
        let mut out = Vec::new();
        for _ in 0..ctx.budget {
            if rng.random::<bool>() && !agents.is_empty() {
                out.push(Alteration::Delete(rng.random_range(0..agents.len())));
            } else {
                out.push(Alteration::Insert(FState));
            }
        }
        out
    }
}

fn chaos_config(seed: u64, budget: usize) -> SimConfig {
    SimConfig::builder()
        .seed(seed)
        .adversary_budget(budget)
        .matching(MatchingModel::RandomFraction { min_gamma: 0.3 })
        .build()
        .unwrap()
}

/// One batch job: a full adversarial simulation reduced to its trajectory.
fn chaos_trial(seed: u64, start: usize, rounds: u64) -> Vec<(u64, usize, usize, usize)> {
    let mut engine = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 3), start);
    let mut trace = Vec::new();
    engine.run(
        RunSpec::rounds(rounds),
        &mut OnRound(|r: &RoundReport| {
            trace.push((r.round, r.population_after, r.splits, r.deaths))
        }),
    );
    trace
}

proptest! {
    #[test]
    fn matching_is_a_valid_partial_matching(
        population in 0usize..2000,
        seed in 0u64..500,
        gamma in 0.05f64..=1.0,
    ) {
        let m = sample_matching(population, MatchingModel::ExactFraction(gamma), counter_seed(seed, 0, 0));
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in m.pairs() {
            prop_assert_ne!(a, b);
            prop_assert!((a as usize) < population && (b as usize) < population);
            prop_assert!(seen.insert(a));
            prop_assert!(seen.insert(b));
        }
        // Exactly ⌊γ·m/2⌋ pairs (capped by ⌊m/2⌋).
        let expect = (((gamma * population as f64).floor() as usize) / 2).min(population / 2);
        prop_assert_eq!(m.len(), expect);
    }

    #[test]
    fn random_fraction_never_undershoots(
        population in 2usize..1000,
        seed in 0u64..200,
        min_gamma in 0.1f64..=0.9,
    ) {
        let m = sample_matching(population, MatchingModel::RandomFraction { min_gamma }, counter_seed(seed, 1, 0));
        // matched = 2·⌊fraction·m/2⌋ ≥ 2·⌊min_gamma·m/2⌋ − rounding slack.
        let floor = ((min_gamma * population as f64).floor() as usize / 2) * 2;
        prop_assert!(m.matched_agents() + 1 >= floor, "matched {} < floor {}", m.matched_agents(), floor);
    }

    #[test]
    fn partner_table_roundtrips(population in 0usize..500, seed in 0u64..100) {
        let m = sample_matching(population, MatchingModel::Full, counter_seed(seed, 2, 0));
        let table = m.partner_table(population);
        for (i, &p) in table.iter().enumerate() {
            if p != UNMATCHED {
                prop_assert_eq!(table[p as usize], i as u32);
            }
        }
        let matched = table.iter().filter(|&&p| p != UNMATCHED).count();
        prop_assert_eq!(matched, m.matched_agents());
    }

    #[test]
    fn engine_population_identity_holds_every_round(
        seed in 0u64..200,
        start in 1usize..200,
        budget in 0usize..10,
        rounds in 1u64..30,
    ) {
        let cfg = SimConfig::builder().seed(seed).adversary_budget(budget).build().unwrap();
        let mut engine = Engine::with_adversary(Flaky, Chaos, cfg, start);
        for _ in 0..rounds {
            let before = engine.population();
            let r = engine.run(RunSpec::rounds(1), &mut ()).last;
            prop_assert_eq!(r.population_before, before);
            prop_assert_eq!(
                r.population_after as i64,
                before as i64 + r.inserted as i64 - r.deleted as i64
                    + r.splits as i64 - r.deaths as i64
            );
            prop_assert!(r.inserted + r.deleted + r.modified <= budget);
            if engine.halted().is_some() { break; }
        }
    }

    #[test]
    fn engine_is_deterministic_per_seed(seed in 0u64..100, start in 2usize..100) {
        let run = |s: u64| {
            let cfg = SimConfig::builder()
                .seed(s)
                .matching(MatchingModel::RandomFraction { min_gamma: 0.3 })
                .build()
                .unwrap();
            let mut e = Engine::with_population(Inert, cfg, start);
            let mut rec = MetricsRecorder::new();
            e.run(RunSpec::rounds(5), &mut RecordStats::new(&mut rec));
            rec.rounds().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn budget_zero_means_no_alterations(seed in 0u64..100, start in 1usize..100) {
        struct Greedy;
        impl Adversary<InertState> for Greedy {
            fn name(&self) -> &'static str { "greedy" }
            fn act(&mut self, _c: &RoundContext, agents: &[InertState], _r: &mut SimRng) -> Vec<Alteration<InertState>> {
                (0..agents.len()).map(Alteration::Delete).collect()
            }
        }
        let cfg = SimConfig::builder().seed(seed).adversary_budget(0).build().unwrap();
        let mut engine = Engine::with_adversary(Inert, Greedy, cfg, start);
        engine.run(RunSpec::rounds(5), &mut ());
        prop_assert_eq!(engine.population(), start);
    }

    /// The batch determinism contract: for random job sets, one worker and
    /// many workers return identical results (full per-round trajectories,
    /// not just finals).
    #[test]
    fn batch_runner_is_thread_count_independent(
        master in 0u64..1000,
        jobs in 1usize..12,
        start in 2usize..60,
        rounds in 1u64..25,
    ) {
        let seeds: Vec<u64> = (0..jobs as u64).map(|i| job_seed(master, i)).collect();
        let trial = |_: usize, seed: u64| chaos_trial(seed, start, rounds);
        let serial = BatchRunner::new(1).run(seeds.clone(), trial);
        let parallel = BatchRunner::new(8).run(seeds.clone(), trial);
        prop_assert_eq!(&serial, &parallel);
        let native = BatchRunner::from_env().run(seeds, trial);
        prop_assert_eq!(&serial, &native);
    }

    /// Scratch-buffer reuse across driver calls is semantically invisible:
    /// an engine driven one round per `run` call (reusing its persistent
    /// scratch between calls) matches an engine driven in one shot.
    #[test]
    fn incremental_runs_match_one_shot_run(
        seed in 0u64..300,
        start in 1usize..120,
        budget in 0usize..8,
        rounds in 1u64..40,
    ) {
        let mut stepped = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, budget), start);
        let mut trace = Vec::new();
        for _ in 0..rounds {
            let outcome = stepped.run(RunSpec::rounds(1), &mut ());
            if outcome.executed == 0 {
                break;
            }
            trace.push(outcome.last);
        }
        let mut oneshot = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, budget), start);
        let mut oneshot_trace = Vec::new();
        oneshot.run(
            RunSpec::rounds(rounds),
            &mut OnRound(|r: &RoundReport| oneshot_trace.push(*r)),
        );
        prop_assert_eq!(trace, oneshot_trace);
        prop_assert_eq!(stepped.population(), oneshot.population());
        prop_assert_eq!(stepped.halted(), oneshot.halted());
    }

    /// The tentpole guarantee: intra-round sharding is bit-identical to the
    /// serial driver for every worker count (including one, which executes
    /// the parallel code path inline) — same per-round trajectory under
    /// adversarial churn, splits, deaths and partner-kills.
    #[test]
    fn sharded_run_matches_serial_for_every_worker_count(
        seed in 0u64..300,
        start in 2usize..120,
        rounds in 1u64..40,
        workers in 1usize..6,
    ) {
        let serial_trace = chaos_trial(seed, start, rounds);
        let mut engine = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 3), start);
        let mut par_trace = Vec::new();
        engine.run(
            RunSpec::rounds(rounds).sharded(workers),
            &mut OnRound(|r: &RoundReport| par_trace.push((r.round, r.population_after, r.splits, r.deaths))),
        );
        prop_assert_eq!(serial_trace, par_trace);
    }

    /// Sharded runs feed observers the same views as serial runs: identical
    /// recorded metrics and final state for any worker count.
    #[test]
    fn sharded_run_records_identically(
        seed in 0u64..200,
        start in 2usize..100,
        rounds in 1u64..30,
        workers in 1usize..5,
    ) {
        let mut serial = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        let mut serial_rec = MetricsRecorder::new();
        serial.run(RunSpec::rounds(rounds), &mut RecordStats::new(&mut serial_rec));
        let mut par = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        let mut par_rec = MetricsRecorder::new();
        par.run(
            RunSpec::rounds(rounds).sharded(workers),
            &mut RecordStats::new(&mut par_rec),
        );
        prop_assert_eq!(serial.population(), par.population());
        prop_assert_eq!(serial.round(), par.round());
        prop_assert_eq!(serial.halted(), par.halted());
        prop_assert_eq!(serial_rec.rounds(), par_rec.rounds());
    }

    /// Observers are spectators: wrapping a run in `Stride`/`Tee`/recording
    /// combinators never perturbs the trajectory, and the observed reports
    /// are exactly the fast path's.
    #[test]
    fn stride_and_tee_observers_do_not_perturb_the_run(
        seed in 0u64..300,
        start in 2usize..100,
        rounds in 1u64..30,
        every in 1u64..7,
    ) {
        let bare_trace = chaos_trial(seed, start, rounds);
        let mut observed = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 3), start);
        let mut full = Vec::new();
        let mut strided = Vec::new();
        let mut rec = MetricsRecorder::new();
        observed.run(
            RunSpec::rounds(rounds),
            &mut Tee::new(
                OnRound(|r: &RoundReport| full.push((r.round, r.population_after, r.splits, r.deaths))),
                Stride::new(every, Tee::new(
                    OnRound(|r: &RoundReport| strided.push(r.round)),
                    RecordStats::new(&mut rec),
                )),
            ),
        );
        prop_assert_eq!(&full, &bare_trace);
        // The strided observer saw exactly every `every`-th round, and the
        // recording observer recorded exactly those rounds.
        let expect: Vec<u64> = bare_trace
            .iter()
            .enumerate()
            .filter(|(i, _)| (i + 1) % every as usize == 0)
            .map(|(_, r)| r.0)
            .collect();
        prop_assert_eq!(&strided, &expect);
        let recorded: Vec<u64> = rec.rounds().iter().map(|s| s.round).collect();
        prop_assert_eq!(&recorded, &expect);
    }

    /// `Stop::Epochs` is `Stop::Rounds` on the epoch grid, and an epoch-end
    /// `Stride` records exactly one sample per completed epoch.
    #[test]
    fn epoch_specs_match_round_specs(
        seed in 0u64..300,
        start in 2usize..100,
        epochs in 1u64..5,
        epoch_len in 1u64..12,
    ) {
        let rounds = epochs * epoch_len;
        let mut flat = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        flat.run(RunSpec::rounds(rounds), &mut ());
        let mut epoched = Engine::with_adversary(Flaky, Chaos, chaos_config(seed, 2), start);
        let mut rec = MetricsRecorder::new();
        epoched.run(
            RunSpec::epochs(epochs, epoch_len),
            &mut Stride::new(epoch_len, RecordStats::new(&mut rec)),
        );
        prop_assert_eq!(flat.population(), epoched.population());
        prop_assert_eq!(flat.round(), epoched.round());
        prop_assert_eq!(flat.halted(), epoched.halted());
        // One sample per completed epoch.
        if epoched.halted().is_none() {
            prop_assert_eq!(rec.len() as u64, epochs);
        }
    }
}
