//! Property-based tests for the substrate: matching validity, engine
//! accounting and budget enforcement.

use proptest::prelude::*;

use popstab_sim::matching::{sample_matching, MatchingModel};
use popstab_sim::protocols::{Inert, InertState};
use popstab_sim::rng::rng_from_seed;
use popstab_sim::{
    Action, Adversary, Alteration, Engine, Observable, Observation, Protocol, RoundContext,
    SimConfig, SimRng,
};

proptest! {
    #[test]
    fn matching_is_a_valid_partial_matching(
        population in 0usize..2000,
        seed in 0u64..500,
        gamma in 0.05f64..=1.0,
    ) {
        let mut rng = rng_from_seed(seed);
        let m = sample_matching(population, MatchingModel::ExactFraction(gamma), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in m.pairs() {
            prop_assert_ne!(a, b);
            prop_assert!((a as usize) < population && (b as usize) < population);
            prop_assert!(seen.insert(a));
            prop_assert!(seen.insert(b));
        }
        // Exactly ⌊γ·m/2⌋ pairs (capped by ⌊m/2⌋).
        let expect = (((gamma * population as f64).floor() as usize) / 2).min(population / 2);
        prop_assert_eq!(m.len(), expect);
    }

    #[test]
    fn random_fraction_never_undershoots(
        population in 2usize..1000,
        seed in 0u64..200,
        min_gamma in 0.1f64..=0.9,
    ) {
        let mut rng = rng_from_seed(seed);
        let m = sample_matching(population, MatchingModel::RandomFraction { min_gamma }, &mut rng);
        // matched = 2·⌊fraction·m/2⌋ ≥ 2·⌊min_gamma·m/2⌋ − rounding slack.
        let floor = ((min_gamma * population as f64).floor() as usize / 2) * 2;
        prop_assert!(m.matched_agents() + 1 >= floor, "matched {} < floor {}", m.matched_agents(), floor);
    }

    #[test]
    fn partner_table_roundtrips(population in 0usize..500, seed in 0u64..100) {
        let mut rng = rng_from_seed(seed);
        let m = sample_matching(population, MatchingModel::Full, &mut rng);
        let table = m.partner_table(population);
        for (i, p) in table.iter().enumerate() {
            if let Some(j) = p {
                prop_assert_eq!(table[*j as usize], Some(i as u32));
            }
        }
        let matched = table.iter().filter(|p| p.is_some()).count();
        prop_assert_eq!(matched, m.matched_agents());
    }

    #[test]
    fn engine_population_identity_holds_every_round(
        seed in 0u64..200,
        start in 1usize..200,
        budget in 0usize..10,
        rounds in 1u64..30,
    ) {
        /// Splits when matched and a coin lands heads; dies on double tails.
        struct Flaky;
        #[derive(Debug, Clone)]
        struct FState;
        impl Observable for FState {
            fn observe(&self) -> Observation { Observation::default() }
        }
        impl Protocol for Flaky {
            type State = FState;
            type Message = ();
            fn initial_state(&self, _rng: &mut SimRng) -> FState { FState }
            fn message(&self, _s: &FState) {}
            fn step(&self, _s: &mut FState, m: Option<&()>, rng: &mut SimRng) -> Action {
                use rand::Rng;
                if m.is_some() {
                    match rng.random_range(0..4u8) {
                        0 => Action::Split,
                        1 => Action::Die,
                        _ => Action::Continue,
                    }
                } else {
                    Action::Continue
                }
            }
        }
        /// Randomly deletes/inserts within the budget.
        struct Chaos;
        impl Adversary<FState> for Chaos {
            fn name(&self) -> &'static str { "chaos" }
            fn act(&mut self, ctx: &RoundContext, agents: &[FState], rng: &mut SimRng) -> Vec<Alteration<FState>> {
                use rand::Rng;
                let mut out = Vec::new();
                for _ in 0..ctx.budget {
                    if rng.random::<bool>() && !agents.is_empty() {
                        out.push(Alteration::Delete(rng.random_range(0..agents.len())));
                    } else {
                        out.push(Alteration::Insert(FState));
                    }
                }
                out
            }
        }
        let cfg = SimConfig::builder().seed(seed).adversary_budget(budget).build().unwrap();
        let mut engine = Engine::with_adversary(Flaky, Chaos, cfg, start);
        for _ in 0..rounds {
            let before = engine.population();
            let r = engine.run_round();
            prop_assert_eq!(r.population_before, before);
            prop_assert_eq!(
                r.population_after as i64,
                before as i64 + r.inserted as i64 - r.deleted as i64
                    + r.splits as i64 - r.deaths as i64
            );
            prop_assert!(r.inserted + r.deleted + r.modified <= budget);
            if engine.halted().is_some() { break; }
        }
    }

    #[test]
    fn engine_is_deterministic_per_seed(seed in 0u64..100, start in 2usize..100) {
        let run = |s: u64| {
            let cfg = SimConfig::builder()
                .seed(s)
                .matching(MatchingModel::RandomFraction { min_gamma: 0.3 })
                .build()
                .unwrap();
            let mut e = Engine::with_population(Inert, cfg, start);
            e.run_rounds(5);
            e.metrics().rounds().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn budget_zero_means_no_alterations(seed in 0u64..100, start in 1usize..100) {
        struct Greedy;
        impl Adversary<InertState> for Greedy {
            fn name(&self) -> &'static str { "greedy" }
            fn act(&mut self, _c: &RoundContext, agents: &[InertState], _r: &mut SimRng) -> Vec<Alteration<InertState>> {
                (0..agents.len()).map(Alteration::Delete).collect()
            }
        }
        let cfg = SimConfig::builder().seed(seed).adversary_budget(0).build().unwrap();
        let mut engine = Engine::with_adversary(Inert, Greedy, cfg, start);
        engine.run_rounds(5);
        prop_assert_eq!(engine.population(), start);
    }
}
