//! Adversarial attack demo: the protocol holds its population while a
//! worst-case adversary inserts forged leaders, desynchronized clocks and
//! deletes leaders, at the paper's budget `K = N^{1/4−ε}` — metered per
//! epoch, the scale-faithful translation of the paper's per-round budget
//! (see `popstab_adversary::throttle` for why raw per-round budgets
//! overwhelm any simulable `N`).
//!
//! ```sh
//! cargo run --release --example adversarial_attack
//! ```

use population_stability::adversary::{
    throttled_suite, ColorFlooder, Composite, DesyncInserter, LeaderSniper, Throttle,
};
use population_stability::prelude::*;
use population_stability::sim::RunSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 4096;
    let params = Params::for_target(n)?;
    let epoch = u64::from(params.epoch_len());
    let k = params.adversary_tolerance(0.05); // K = N^{0.20}
    let m_star = equilibrium_population(&params);

    println!("N = {n}, adversary budget K = {k} alterations/epoch, m* = {m_star}");
    println!();

    // Individual attacks from the suite, each throttled to K per epoch.
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>8}",
        "adversary", "min pop", "max pop", "final", "in band"
    );
    for adversary in throttled_suite(&params, k) {
        let name = adversary.name();
        let protocol = PopulationStability::new(params.clone());
        let cfg = SimConfig::builder()
            .seed(7)
            .target(n)
            .adversary_budget(k)
            .build()?;
        let mut engine = Engine::with_adversary(protocol, adversary, cfg, n as usize);
        let outcome = engine.run(RunSpec::rounds(12 * epoch), &mut ());
        let (lo, hi) = outcome.population_range();
        let in_band = lo as f64 > 0.5 * m_star && (hi as f64) < 1.5 * m_star;
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>8}",
            name,
            lo,
            hi,
            engine.population(),
            if in_band { "yes" } else { "NO" }
        );
    }

    // A combined assault: snipe leaders of one color, flood the other,
    // desynchronize clocks — all at once, sharing the per-epoch budget.
    let combo = Throttle::per_epoch(
        Composite::new(
            "combined-assault",
            vec![
                Box::new(LeaderSniper::new(k / 3, Some(Color::One))),
                Box::new(ColorFlooder::new(params.clone(), k / 3, Color::Zero)),
                Box::new(DesyncInserter::new(params.clone(), k / 3, 11)),
            ],
        ),
        params.epoch_len(),
    );
    let protocol = PopulationStability::new(params.clone());
    let cfg = SimConfig::builder()
        .seed(8)
        .target(n)
        .adversary_budget(k)
        .build()?;
    let mut engine = Engine::with_adversary(protocol, combo, cfg, n as usize);
    let outcome = engine.run(RunSpec::rounds(12 * epoch), &mut ());
    let (lo, hi) = outcome.population_range();
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>8}",
        "combined-assault",
        lo,
        hi,
        engine.population(),
        if lo as f64 > 0.5 * m_star && (hi as f64) < 1.5 * m_star {
            "yes"
        } else {
            "NO"
        }
    );
    Ok(())
}
