//! Baseline comparison: the paper's strawmen next to the real protocol.
//!
//! * **Attempt 2** (independent coloring) random-walks away from the target
//!   with *no adversary at all*;
//! * **Attempt 1** (non-interactive leader election) holds without an
//!   adversary but collapses under a one-insertion-per-epoch attack;
//! * the **real protocol** holds in both settings.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use population_stability::baselines::attempt1::SignalFlooder;
use population_stability::baselines::{Attempt1, Attempt2};
use population_stability::prelude::*;
use population_stability::sim::RunSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 1024;
    let rounds: u64 = 12_000;
    let params = Params::for_target(n)?;
    let m_star = equilibrium_population(&params);

    println!("N = {n}, horizon = {rounds} rounds\n");
    println!(
        "{:<36} {:>9} {:>9} {:>9}",
        "protocol / adversary", "min", "max", "final"
    );

    // Real protocol, no adversary.
    {
        let cfg = SimConfig::builder().seed(1).target(n).build()?;
        let mut e =
            Engine::with_population(PopulationStability::new(params.clone()), cfg, n as usize);
        let (lo, hi) = e.run(RunSpec::rounds(rounds), &mut ()).population_range();
        println!(
            "{:<36} {:>9} {:>9} {:>9}",
            "paper protocol / none",
            lo,
            hi,
            e.population()
        );
    }

    // Attempt 2, no adversary: random walk.
    {
        let cfg = SimConfig::builder()
            .seed(2)
            .target(n)
            .max_population(64 * n as usize)
            .build()?;
        let mut e = Engine::with_population(Attempt2::new(n), cfg, n as usize);
        let (lo, hi) = e.run(RunSpec::rounds(rounds), &mut ()).population_range();
        println!(
            "{:<36} {:>9} {:>9} {:>9}",
            "attempt 2 (indep. colors) / none",
            lo,
            hi,
            e.population()
        );
    }

    // Attempt 1, no adversary: holds (crudely).
    let a1 = Attempt1::new(n);
    let a1_epoch = a1.epoch_len();
    {
        let cfg = SimConfig::builder()
            .seed(3)
            .target(n)
            .max_population(64 * n as usize)
            .build()?;
        let mut e = Engine::with_population(a1.clone(), cfg, n as usize);
        let (lo, hi) = e.run(RunSpec::rounds(rounds), &mut ()).population_range();
        println!(
            "{:<36} {:>9} {:>9} {:>9}",
            "attempt 1 (leader bit) / none",
            lo,
            hi,
            e.population()
        );
    }

    // Attempt 1 vs one inserted signal agent per epoch: collapse.
    {
        let cfg = SimConfig::builder()
            .seed(4)
            .target(n)
            .adversary_budget(1)
            .max_population(64 * n as usize)
            .build()?;
        let mut e =
            Engine::with_adversary(a1.clone(), SignalFlooder::new(a1_epoch), cfg, n as usize);
        let (lo, hi) = e.run(RunSpec::rounds(rounds), &mut ()).population_range();
        println!(
            "{:<36} {:>9} {:>9} {:>9}",
            "attempt 1 / 1 forged signal/epoch",
            lo,
            hi,
            e.population()
        );
    }

    // Real protocol under the full-budget deviation amplifier (metered per
    // epoch — see `popstab_adversary::throttle` for the budget translation):
    // holds.
    {
        let k = params.adversary_tolerance(0.05);
        let adv = population_stability::adversary::Throttle::per_epoch(
            population_stability::adversary::DeviationAmplifier::new(params.clone(), k),
            params.epoch_len(),
        );
        let cfg = SimConfig::builder()
            .seed(5)
            .target(n)
            .adversary_budget(k)
            .build()?;
        let mut e = Engine::with_adversary(
            PopulationStability::new(params.clone()),
            adv,
            cfg,
            n as usize,
        );
        let (lo, hi) = e.run(RunSpec::rounds(rounds), &mut ()).population_range();
        println!(
            "{:<36} {:>9} {:>9} {:>9}",
            format!("paper protocol / amplifier K={k}/epoch"),
            lo,
            hi,
            e.population()
        );
    }

    println!("\n(equilibrium for the paper protocol is m* = {m_star}; baselines target N = {n})");
    Ok(())
}
