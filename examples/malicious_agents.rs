//! Malicious agents in the extended model of §1.2.
//!
//! The base model is provably helpless against inserted agents running
//! arbitrary programs — a malicious agent that ignores everyone and
//! replicates at every opportunity outgrows any protocol. The paper's
//! extension grants honest agents the ability to detect a partner whose
//! program differs and remove it, and bounds the malicious replication
//! rate. This example shows the race: containment iff the per-round
//! replication rate 1/ρ is below the contact-kill rate γ·h.
//!
//! ```sh
//! cargo run --release --example malicious_agents
//! ```

use population_stability::extensions::{malicious_count, MaliciousInserter, WithMalice};
use population_stability::prelude::*;
use population_stability::sim::RunSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 1024;
    let params = Params::for_target(n)?;
    let epoch = u64::from(params.epoch_len());

    println!("extended model: honest agents kill detected-foreign partners");
    println!("1 malicious insertion per round; replication period ρ; full matching\n");
    println!(
        "{:<6} {:>16} {:>12} {:>10}",
        "rho", "malicious alive", "population", "outcome"
    );
    for rho in [1u32, 2, 4, 16] {
        let protocol = WithMalice::new(PopulationStability::new(params.clone()));
        let adversary = MaliciousInserter::new(1, rho);
        let cfg = SimConfig::builder()
            .seed(7)
            .target(n)
            .adversary_budget(1)
            .max_population(16 * n as usize)
            .build()?;
        let mut engine = Engine::with_adversary(protocol, adversary, cfg, n as usize);
        engine.run(RunSpec::rounds(4 * epoch), &mut ());
        let mal = malicious_count(engine.agents());
        let outcome = if engine.halted().is_some() {
            "EXPLODED"
        } else if mal < 100 {
            "contained"
        } else {
            "growing"
        };
        println!(
            "{rho:<6} {mal:>16} {:>12} {outcome:>10}",
            engine.population()
        );
    }
    println!();
    println!("ρ = 1 is the paper's impossibility argument: splitting every round outruns");
    println!("any kill rate (a same-round daughter survives its parent's death). Any");
    println!("bounded rate ρ ≥ 2 is purged on contact and the population stays stable.");
    Ok(())
}
