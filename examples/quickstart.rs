//! Quickstart: run the population stability protocol for a few epochs and
//! watch the population hold its equilibrium.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use population_stability::prelude::*;
use population_stability::sim::{MetricsRecorder, RecordStats, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 4096;
    let params = Params::for_target(n)?;
    let epoch = u64::from(params.epoch_len());
    let m_star = equilibrium_population(&params);

    println!("population stability protocol, N = {n}");
    println!("  epoch length        T = {epoch} rounds");
    println!(
        "  Pr[leader]            = 1/{}",
        (1.0 / params.leader_probability()).round()
    );
    println!(
        "  Pr[split | same color] = {:.4}",
        params.split_probability()
    );
    println!("  predicted equilibrium m* = N − 8·√N = {m_star}");
    println!();

    let protocol = PopulationStability::new(params.clone());
    let cfg = SimConfig::builder().seed(2024).target(n).build()?;
    let mut engine = Engine::with_population(protocol, cfg, n as usize);

    // Metrics live with the caller: a RecordStats observer fills this
    // recorder while the driver runs.
    let mut rec = MetricsRecorder::new();
    println!("epoch  population  active   c0     c1   |c0-c1|");
    for e in 0..10 {
        engine.run(RunSpec::rounds(epoch - 1), &mut RecordStats::new(&mut rec));
        // Peek at the coloring right before the evaluation round.
        let pre_eval = rec.last().copied().unwrap_or_default();
        engine.run(RunSpec::rounds(1), &mut RecordStats::new(&mut rec));
        println!(
            "{:>5}  {:>10}  {:>6}  {:>5}  {:>5}  {:>6}",
            e,
            engine.population(),
            pre_eval.active,
            pre_eval.color0,
            pre_eval.color1,
            (pre_eval.color0 as i64 - pre_eval.color1 as i64).abs()
        );
    }

    let traj = rec.trajectory();
    let (lo, hi) = rec.population_range().expect("metrics recorded");
    println!();
    println!(
        "population range over {} rounds: [{lo}, {hi}]",
        engine.round()
    );
    println!(
        "max per-epoch deviation: {} (Õ(√N) = {} per Lemma 7)",
        traj.max_epoch_deviation(epoch).unwrap_or(0),
        params.sqrt_n()
    );
    Ok(())
}
