//! Size estimation from color variance (§1.3.2 of the paper).
//!
//! The protocol never counts anything, yet the population size is encoded
//! in the *variance* of the color distribution: with more leaders, the
//! color split is closer to 50/50. This example harvests the per-epoch
//! color imbalance `d = c₀ − c₁` at evaluation time and inverts
//! `E[d²] = m·√N/8` to recover the population size — without any agent
//! ever holding more than a handful of bits.
//!
//! ```sh
//! cargo run --release --example size_estimation
//! ```

use population_stability::prelude::*;
use population_stability::sim::{MetricsRecorder, RecordStats, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 4096;
    let params = Params::for_target(n)?;
    let epoch = u64::from(params.epoch_len());
    let m_star = equilibrium_population(&params);

    let protocol = PopulationStability::new(params.clone());
    let cfg = SimConfig::builder().seed(99).target(n).build()?;
    let mut engine = Engine::with_population(protocol, cfg, n as usize);

    let mut estimator = VarianceEstimator::new(&params);
    // The caller owns the metrics: one recorder accumulates across runs.
    let mut rec = MetricsRecorder::new();
    println!("true equilibrium m* = {m_star}");
    println!();
    println!("epochs  estimate   rel.err   (expected rel. stderr)");
    for e in 1..=60u64 {
        engine.run(RunSpec::rounds(epoch), &mut RecordStats::new(&mut rec));
        if e % 10 == 0 {
            // Re-harvest every evaluation-round record seen so far.
            estimator = VarianceEstimator::new(&params);
            estimator.push_trace(&params, rec.rounds());
            if let Some(m_hat) = estimator.estimate() {
                println!(
                    "{:>6}  {:>8.0}  {:>7.1}%   (±{:.0}%)",
                    estimator.samples(),
                    m_hat,
                    100.0 * (m_hat - m_star) / m_star,
                    100.0 * estimator.relative_stderr().unwrap_or(f64::NAN)
                );
            }
        }
    }
    println!();
    println!(
        "final estimate {:.0} vs true {:.0} — individual epochs are χ²-noisy, the average concentrates",
        estimator.estimate().unwrap_or(f64::NAN),
        m_star
    );
    Ok(())
}
