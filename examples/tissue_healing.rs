//! Tissue healing: the biological scenario from the paper's introduction.
//! A lizard loses its tail — 60 % of the cells vanish at once — and the
//! population must regrow toward its equilibrium. Then an inflammation
//! event adds 60 % more cells and the tissue must shrink back.
//!
//! Healing is *gradual*: the restoring drift is `Θ(√N)` per epoch on a
//! deficit of `Θ(N)`, so the deficit decays exponentially with a time
//! constant of hundreds of epochs. The paper's guarantee is *prevention*
//! (bounded per-round damage never accumulates), not instant repair.
//!
//! ```sh
//! cargo run --release --example tissue_healing
//! ```

use population_stability::adversary::{Trauma, TraumaKind};
use population_stability::analysis::equilibrium::{exact_epoch_drift, exact_equilibrium};
use population_stability::prelude::*;
use population_stability::sim::RunSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 4096;
    let params = Params::for_target(n)?;
    let epoch = u64::from(params.epoch_len());
    let m_eq = exact_equilibrium(&params, 1.0);
    let total_epochs = 150u64;

    println!("N = {n}, exact equilibrium m° = {m_eq:.0}, shock at epoch 3\n");
    for (label, kind, fraction) in [
        ("injury: lose 60% of cells", TraumaKind::Injury, 0.6),
        (
            "inflammation: +60% blank cells",
            TraumaKind::Proliferation,
            0.6,
        ),
    ] {
        println!("== {label} ==");
        let trauma = Trauma::new(params.clone(), kind, fraction, 3 * epoch);
        let protocol = PopulationStability::new(params.clone());
        // The shock deliberately exceeds the per-round budget K: we are
        // asking about recovery, not prevention.
        let cfg = SimConfig::builder()
            .seed(13)
            .target(n)
            .adversary_budget(usize::MAX)
            .build()?;
        let mut engine = Engine::with_adversary(protocol, trauma, cfg, n as usize);

        engine.run(RunSpec::rounds(3 * epoch + 1), &mut ());
        let wounded = engine.population() as f64;
        let rate = exact_epoch_drift(&params, wounded, 1.0);
        println!("population after shock: {wounded:.0} (model drift there: {rate:+.1}/epoch)");
        println!("epoch  population  deficit healed");
        let deficit0 = m_eq - wounded;
        for e in (13..=total_epochs).step_by(10) {
            engine.run(RunSpec::rounds(10 * epoch), &mut ());
            let pop = engine.population() as f64;
            let healed = (pop - wounded) / deficit0;
            println!("{e:>5}  {:>10.0}  {:>13.0}%", pop, 100.0 * healed);
        }
        let tc = population_stability::analysis::equilibrium::time_constant_epochs(&params, 1.0);
        println!(
            "(asymptotic healing time constant ≈ {tc:.0} epochs — recovery is slow by design)\n"
        );
    }
    Ok(())
}
