//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The statistical machinery of the real crate is replaced by a plain
//! measure-and-print harness: each benchmark runs a fixed warm-up, then a
//! timed batch, and reports the mean time per iteration (plus throughput
//! when declared). That keeps `cargo bench` functional and `cargo bench
//! --no-run` meaningful while the build environment has no crates.io
//! access.

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP_ITERS: u32 = 3;
const MEASURE_ITERS: u32 = 30;

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, None, f);
        self
    }
}

/// A named group; carries the group's throughput declaration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, enabling per-element
    /// rates in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`, which receives `input` alongside the [`Bencher`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, f);
        self
    }

    /// Ends the group (a no-op here; the report is printed as it runs).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters: WARMUP_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.iters = MEASURE_ITERS;
    bencher.elapsed = Duration::ZERO;
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / f64::from(MEASURE_ITERS);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            println!(
                "bench {label:<40} {:>12.3} us/iter {rate:>14.0} elem/s",
                per_iter * 1e6
            );
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter / (1 << 20) as f64;
            println!(
                "bench {label:<40} {:>12.3} us/iter {rate:>11.1} MiB/s",
                per_iter * 1e6
            );
        }
        None => println!("bench {label:<40} {:>12.3} us/iter", per_iter * 1e6),
    }
}

/// Times the routine handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, accumulating wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Bundles benchmark functions into a group runner, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`; the shim
            // runs everything unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert_eq!(count, WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut sum = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| sum += n)
        });
        group.bench_function("plain", |b| b.iter(|| ()));
        group.finish();
        assert_eq!(sum, u64::from(WARMUP_ITERS + MEASURE_ITERS) * 4);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("full", 16).label, "full/16");
        assert_eq!(BenchmarkId::from_parameter(1024).label, "1024");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }
}
