//! Collection strategies (`proptest::collection`).

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

use crate::strategy::Strategy;

/// Generates `Vec`s whose length is drawn from `len` and whose elements are
/// drawn from `element`.
pub fn vec<S, L>(element: S, len: L) -> VecStrategy<S, L>
where
    S: Strategy,
    L: SampleRange<usize> + Clone,
{
    VecStrategy { element, len }
}

/// Output of [`vec()`].
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S, L> Strategy for VecStrategy<S, L>
where
    S: Strategy,
    L: SampleRange<usize> + Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = test_rng("collection::vec");
        let strat = vec(0u32..5, 2usize..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
