//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The [`proptest!`] macro expands each `#[test] fn name(arg in strategy, …)`
//! into a plain `#[test]` that draws [`ProptestConfig::cases`] inputs from
//! the strategies and runs the body on each. Two deliberate simplifications
//! versus the real crate:
//!
//! * **deterministic seeds** — the RNG is seeded from a hash of the test's
//!   name, so a failure reproduces on every run and every machine with no
//!   `proptest-regressions` files,
//! * **no shrinking** — a failing case reports the panic directly; with
//!   deterministic seeds, re-running under a debugger sees the same values.
//!
//! `prop_assert*` therefore map to the std `assert*` macros and
//! [`prop_assume!`] skips the current case rather than resampling.

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy, Union};

/// Shim for `proptest::prelude` — the only import path the workspace uses.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Shim for the `proptest::prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of inputs drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable
    /// (matching the real crate's escape hatch for slow CI tiers).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: the seed is an FNV-1a hash of the test name,
/// so every property has its own fixed stream.
pub fn test_rng(test_name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

/// Runs one generated case. Exists so that `prop_assume!`'s early `return`
/// skips a single case instead of the remaining cases of the property.
pub fn run_case<F: FnOnce()>(case: F) {
    case();
}

/// See the crate docs; supports the `#![proptest_config(..)]` inner
/// attribute and one or more `#[test] fn name(arg in strategy, …) { … }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $crate::run_case(move || $body);
            }
        }
    )*};
}

/// Skips the current case when the hypothesis does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts within a property (no shrinking, so this is std `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Union::arm($strat) ),+ ])
    };
}
