//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Random, Rng, SampleRange};

/// A recipe for generating values (`proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Post-maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy producing uniform values of a primitive type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Uniform values of a primitive type: `any::<bool>()`, `any::<u64>()`, ….
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types [`any`] can generate (`proptest::arbitrary::Arbitrary`).
pub trait Arbitrary {
    /// Draws a value from the type's canonical distribution.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Random> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> T {
        rng.random()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies with a common value type; built by the
/// `prop_oneof!` macro.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; `prop_oneof!` guarantees at least one arm.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one arm (a helper for `prop_oneof!` so the macro can collect
    /// differently-typed strategies into one `Vec`).
    pub fn arm<S>(strategy: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(strategy)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Numeric ranges are strategies, e.g. `0u32..500` or `0.1f64..=1.0`.
impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = test_rng("strategy::compose");
        let strat = (0u32..10, 5u8..=5, any::<bool>()).prop_map(|(a, b, c)| (a + 1, b, c));
        for _ in 0..200 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!((1..11).contains(&a));
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = test_rng("strategy::just");
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = test_rng("strategy::union");
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }
}
