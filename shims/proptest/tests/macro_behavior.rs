//! The `proptest!` macro can only be exercised from an external crate (its
//! expansion references `$crate` paths and registers `#[test]` functions),
//! so its behavioral contract lives here: case counts, config handling,
//! assume-skips, determinism, and multi-argument generation.

use std::cell::Cell;

use popstab_proptest_shim::prelude::*;
use popstab_proptest_shim::test_rng;

thread_local! {
    static CASES_SEEN: Cell<u32> = const { Cell::new(0) };
    static ASSUMED_THROUGH: Cell<u32> = const { Cell::new(0) };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(17))]

    #[test]
    fn configured_case_count_is_honored(x in 0u32..1000) {
        let _ = x;
        CASES_SEEN.with(|c| c.set(c.get() + 1));
    }

    #[test]
    fn assume_skips_single_cases(x in 0u32..100) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
        ASSUMED_THROUGH.with(|c| c.set(c.get() + 1));
    }
}

proptest! {
    #[test]
    fn default_config_applies_and_args_generate(
        v in prop::collection::vec(any::<bool>(), 3..10),
        (lo, hi) in (0u64..50, 50u64..100),
        tag in prop_oneof![Just('a'), Just('b')],
    ) {
        prop_assert!((3..10).contains(&v.len()));
        prop_assert!(lo < hi, "lo {} hi {}", lo, hi);
        prop_assert_ne!(tag, 'z');
        prop_assume!(!v.is_empty());
        prop_assert!(v.iter().filter(|b| **b).count() <= v.len());
    }
}

#[test]
fn zz_case_counter_saw_configured_count() {
    // Invoke the expanded properties directly and observe the counters.
    // The counters are thread-local, so the harness-spawned copies of the
    // same properties (running on other threads) cannot interfere.
    CASES_SEEN.with(|c| c.set(0));
    configured_case_count_is_honored();
    assert_eq!(CASES_SEEN.with(Cell::get), 17);

    ASSUMED_THROUGH.with(|c| c.set(0));
    assume_skips_single_cases();
    let through = ASSUMED_THROUGH.with(Cell::get);
    assert!(
        through > 0 && through < 17,
        "assume skipped nothing or everything: {through}"
    );
}

#[test]
fn per_test_rng_is_deterministic_and_name_dependent() {
    use popstab_proptest_shim::Strategy;
    let mut a = test_rng("some::module::prop_a");
    let mut b = test_rng("some::module::prop_a");
    let mut c = test_rng("some::module::prop_b");
    let strat = 0u64..u64::MAX;
    let (xa, xb, xc) = (
        strat.generate(&mut a),
        strat.generate(&mut b),
        strat.generate(&mut c),
    );
    assert_eq!(xa, xb, "same name must give the same stream");
    assert_ne!(xa, xc, "different names must give different streams");
}
