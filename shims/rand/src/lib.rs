//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: the [`RngCore`] raw-output trait, the [`Rng`] extension methods
//! (`random`, `random_bool`, `random_range`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no crates.io access, so the workspace maps the
//! dependency name `rand` onto this crate (see the root `Cargo.toml`).
//! Mirroring the real crate, the surface is split in two layers:
//!
//! * [`RngCore`] — the object-safe core every generator implements: one
//!   required method, [`next_u64`](RngCore::next_u64). Downstream crates
//!   implement this for their own generators (e.g. the simulator's
//!   counter-output `CounterRng`) and get the full extension surface for
//!   free.
//! * [`Rng`] — the user-facing extension trait, blanket-implemented for
//!   every `RngCore` exactly like `rand`'s `impl<R: RngCore + ?Sized> Rng
//!   for R`.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a fast,
//! high-quality, *non-cryptographic* generator that is deterministic per
//! seed on every platform, which is the property the simulations rely on.

pub mod rngs;
pub mod seq;
mod uniform;

pub use uniform::{Random, SampleRange};

/// Seeding interface; the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw output stream of a generator (`rand`'s object-safe core trait).
pub trait RngCore {
    /// The raw 64-bit output stream; everything else derives from it.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Random-value generation interface (the `rand` 0.9 method names),
/// blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.next_f64() < p
    }

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
