//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman–Vigna).
///
/// Unlike the real `rand::rngs::StdRng` this is not cryptographically
/// strong; it is fast, passes BigCrush, and — the property the simulator
/// actually depends on — produces an identical stream for a given seed on
/// every platform and in every future build of this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64, as the xoshiro authors
        // recommend, so that similar seeds yield uncorrelated states.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams collide {same}/100 times");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let zeros = (0..100).filter(|_| r.next_u64() == 0).count();
        assert_eq!(zeros, 0);
    }
}
