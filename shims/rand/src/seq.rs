//! Slice utilities (`rand::seq`).

use crate::Rng;

/// Random operations on slices; only `shuffle` is used by the workspace.
pub trait SliceRandom {
    /// Uniform in-place permutation (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "identity permutation after shuffle is wildly improbable"
        );
    }

    #[test]
    fn shuffle_of_short_slices_is_fine() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [1u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [1]);
    }
}
