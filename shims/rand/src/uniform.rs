//! Uniform sampling of primitive values and ranges.

use std::ops::{Range, RangeInclusive};

use crate::Rng;

/// Types with a canonical uniform distribution (`rand`'s `StandardUniform`).
pub trait Random {
    /// Draws a uniform value.
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Random for f32 {
    fn random<R: Rng>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    fn random<R: Rng>(rng: &mut R) -> i128 {
        u128::random(rng) as i128
    }
}

/// Ranges that can be sampled uniformly (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Maps a raw 64-bit draw onto `[0, span)` by 128-bit multiply-shift
/// (Lemire's method without the rejection step; the bias is at most
/// `span / 2^64`, far below anything the simulations can observe).
fn scale(raw: u64, span: u128) -> u128 {
    (u128::from(raw) * span) >> 64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + scale(rng.next_u64(), span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start() as i128, *self.end() as i128);
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start + 1) as u128;
                (start + scale(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let x = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // Guard against rounding up onto the excluded endpoint.
                if x >= self.end { self.start } else { x }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let x = rng.random_range(0.25f64..=1.0);
            assert!((0.25..=1.0).contains(&x));
            let y = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
    }

    #[test]
    fn full_range_ints_hit_both_halves() {
        let mut rng = StdRng::seed_from_u64(10);
        let highs = (0..1000)
            .filter(|_| rng.random_range(0u64..=u64::MAX) > u64::MAX / 2)
            .count();
        assert!((300..700).contains(&highs), "suspicious split {highs}/1000");
    }
}
