//! # population-stability
//!
//! Facade crate for the reproduction of *Population Stability: Regulating
//! Size in the Presence of an Adversary* (Goldwasser, Ostrovsky, Scafuro,
//! Sealfon — PODC 2018).
//!
//! This crate re-exports the whole workspace so downstream users can depend
//! on a single crate:
//!
//! * [`sim`] — the synchronous population-model substrate (rounds, random
//!   matchings, split/die semantics, adversary interface, the unified
//!   `RunSpec`/`Observer` run driver, metrics),
//! * [`core`] — the paper's protocol (Algorithms 1–7): coloring epochs,
//!   three-bit messages, `polylog(N)` states,
//! * [`adversary`] — the attack library (leader snipers, color flooders,
//!   round desynchronizers, churn, trauma events, …),
//! * [`baselines`] — the strawman protocols the paper discusses (Attempt 1,
//!   Attempt 2, the empty protocol, the high-memory unique-ID protocol),
//! * [`analysis`] — statistics, concentration bounds, invariant checkers for
//!   the paper's lemmas, the finite-size equilibrium models and the
//!   variance-based population estimator,
//! * [`extensions`] — the §1.2 extended model in which agents can remove
//!   maliciously-programmed partners they detect.
//!
//! # Quickstart
//!
//! Everything runs through one driver: build an [`Engine`](prelude::Engine),
//! describe the run with a [`RunSpec`](prelude::RunSpec) (stop condition +
//! thread configuration) and watch it with an
//! [`Observer`](prelude::Observer) (`()` observes nothing; a
//! [`RecordStats`](prelude::RecordStats) adapter collects a
//! [`MetricsRecorder`](prelude::MetricsRecorder) trace).
//!
//! ```
//! use population_stability::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's protocol with target N = 1024 agents.
//! let params = Params::for_target(1024)?;
//! let protocol = PopulationStability::new(params.clone());
//! let cfg = SimConfig::builder().seed(7).target(1024).build()?;
//! let mut engine = Engine::with_population(protocol, cfg, 1024);
//!
//! // Run three epochs on the recording-free fast path and check the
//! // population stayed near the finite-size equilibrium m* = N − 8√N.
//! let epoch = u64::from(params.epoch_len());
//! let outcome = engine.run(RunSpec::rounds(3 * epoch), &mut ());
//! let m_star = equilibrium_population(&params);
//! assert!((engine.population() as f64 - m_star).abs() < 0.5 * m_star);
//!
//! // Same API, now with a metrics trace (recorded every round) and the
//! // step phase of each round sharded over 2 workers — the trajectory is
//! // bit-identical by the determinism contract.
//! let (min, max) = outcome.population_range();
//! let mut rec = MetricsRecorder::new();
//! engine.run(
//!     RunSpec::rounds(epoch).sharded(2),
//!     &mut RecordStats::new(&mut rec),
//! );
//! assert_eq!(rec.len() as u64, epoch);
//! assert!(min <= max);
//! # Ok(())
//! # }
//! ```
//!
//! # Migrating from the pre-driver API
//!
//! PR 5 collapsed the engine's eight `run_*` entry points and two recording
//! side channels into `Engine::run(RunSpec, &mut impl Observer)`:
//!
//! | old entry point | replacement |
//! |---|---|
//! | `engine.run_round()` | `engine.run(RunSpec::rounds(1), &mut obs).last` |
//! | `engine.run_rounds(n)` | `engine.run(RunSpec::rounds(n), &mut obs).executed` |
//! | `engine.run_until(max, pred)` | `engine.run(RunSpec::until(max, pred), &mut obs)` |
//! | `engine.run_range(n)` | `engine.run(RunSpec::rounds(n), &mut ()).population_range()` |
//! | `engine.run_epochs(e, len)` | `engine.run(RunSpec::epochs(e, len), &mut Stride::new(len, RecordStats::new(&mut rec)))` |
//! | `engine.par_round(w)` | `engine.run(RunSpec::rounds(1).sharded(w), &mut obs).last` |
//! | `engine.run_rounds_par(n, w)` | `engine.run(RunSpec::rounds(n).sharded(w), &mut obs)` |
//! | `engine.run_until_par(max, w, pred)` | `engine.run(RunSpec::until(max, pred).sharded(w), &mut obs)` |
//! | `engine.set_recording(false)` | pass `&mut ()` as the observer |
//! | `engine.metrics()` / `engine.trajectory()` | own a `MetricsRecorder`, fill it via `RecordStats::new(&mut rec)` |
//! | `SimConfig::metrics_every` / `metrics_phase` | `RecordStats::stride(&mut rec, every, phase)` |
//!
//! `Engine::run` carries the `P: Sync, P::State: Send + Sync, P::Message:
//! Send` bounds the sharded arm needs (every protocol in this workspace
//! satisfies them); a protocol with non-thread-safe state can still run
//! serially through the bound-free [`Engine::run_serial`](prelude::Engine)
//! entry point (PR 7 removed the deprecated `run_round`/`run_rounds`/
//! `run_until` wrappers that used to fill this role).
//!
//! The named `(protocol, adversary, config)` combos the experiment harness
//! runs are declared as [`sim::Scenario`] values; `experiments --list`
//! prints the registry and `experiments scenario <name>` runs one.
//!
//! # Checkpoint, resume, fork
//!
//! [`Engine::snapshot`](prelude::Engine) serializes an engine mid-run into
//! a versioned, dependency-free [`Snapshot`](prelude::Snapshot) (config,
//! round counter, halt state, every agent's protocol state, and the
//! adversary RNG's exact stream position — the protocol and adversary
//! *instances* are rebuilt by the caller). Because every other per-round
//! random quantity is counter-addressable, `Engine::restore` + run to `2R`
//! is bit-identical to the uninterrupted run, serial or sharded.
//! [`Scenario::fork`](prelude::Scenario) runs the shared prefix once and
//! fans N [`ForkBranch`](prelude::ForkBranch)es (seed salt + adversary +
//! optional budget override) over a [`BatchRunner`](prelude::BatchRunner)
//! for counterfactual "what if the attack had differed from round R?"
//! ensembles; salt `0` is the identity branch. On the CLI:
//! `experiments snapshot <name> --at <round> -o <file>`,
//! `experiments resume <file> --rounds <n> [--trace]`, and the `fork-*`
//! registry scenarios.
//!
//! # Memory layout & scaling
//!
//! The engine stores agents as a plain `Vec<AgentState>` and, on request,
//! mirrors them into a struct-of-arrays column store tuned for
//! million-agent populations:
//!
//! * **Opt-in, never a semantic switch.**
//!   [`Engine::set_columnar(true)`](prelude::Engine) swaps the step phase
//!   onto [`core::columns::StabilityColumns`] — 1-bit and 1-byte columns
//!   (alive/color/phase flags, packed wire bytes) evaluated 64 agents per
//!   machine word with the lane-batched `_x8` [`CounterRng`](prelude::SimRng)
//!   kernels. The columns stay *resident* across rounds on the fast path
//!   (`()`/`OnRound` observers, no-op adversary) and transpose back to the
//!   vector only when something actually reads it (a recording observer,
//!   an acting adversary, [`Engine::snapshot`](prelude::Engine),
//!   [`Engine::agents`](prelude::Engine)). On the CLI, `experiments
//!   --columnar` (or `POPSTAB_COLUMNAR=1`) opts every scenario /
//!   snapshot / resume engine in.
//! * **Bit-for-bit identical, by construction and by gate.** Batching can
//!   never move a draw: every agent draw is already addressed by `(seed,
//!   round, slot)`, so evaluating eight slots per call reads exactly the
//!   words the scalar loop would have read. No stream version changes —
//!   agent stream v3, matching stream v2 and snapshot format v2 are
//!   untouched, old snapshots restore, and the golden fixtures pass
//!   unchanged against the columnar path. `tests/columnar_equivalence.rs`
//!   drives random `(seed, rounds, workers)` through both paths (clean and
//!   adversarial) comparing traces, full agent vectors and snapshot bytes;
//!   a CI leg repeats the diff at N = 2²⁰ and byte-compares mid-run
//!   snapshots from both paths.
//! * **Byte budget.** At large N the resident footprint is the agent
//!   vector plus a few dozen bits of column state per agent — ~50 B/agent
//!   total at N = 2²⁰/2²² ([`Engine::approx_mem_bytes`](prelude::Engine)),
//!   recorded per workload as `mem_bytes_per_agent` in `BENCH_engine.json`
//!   (`experiments bench`, scales overridable via `--n`). The committed
//!   baseline tracks ~2× fast-path rounds/sec over the scalar loop at
//!   N = 65536 on one core.
//!
//! # Failure semantics & recovery
//!
//! The fault-tolerance layer (PR 8) keeps crashes, panics and corrupted
//! files from either losing work or — worse — silently changing results:
//!
//! * **Job panics are contained.**
//!   [`BatchRunner::run_faulty`](prelude::BatchRunner) catches a panicking
//!   job, retries it under a bounded
//!   [`RetryPolicy`](prelude::RetryPolicy), and quarantines jobs that fail
//!   every attempt into a structured
//!   [`BatchReport`](prelude::BatchReport) of
//!   [`JobOutcome`](prelude::JobOutcome)s instead of aborting the sweep.
//!   Because a retry re-derives the identical `(index, &job)` inputs, a
//!   job that succeeds on attempt three returns exactly the bytes it would
//!   have returned on attempt one: fault recovery never perturbs results.
//!   Inside a round, a panicking worker shard cannot wedge the
//!   `ShardPool` barrier — `dispatch` re-raises the panic only after every
//!   shard has finished, and `try_dispatch` reports it as a
//!   [`ShardPanic`](prelude::ShardPanic) error naming the shard, leaving
//!   the pool usable.
//! * **Snapshots are tamper-evident and torn-write-proof.** Format v2
//!   appends an FNV-1a 64 checksum over the entire payload, verified at
//!   decode before any field is parsed; `Snapshot::write_to_file` writes
//!   through a temp file + fsync + atomic rename, so a crash mid-write
//!   leaves the previous file intact. Every decode error carries the byte
//!   offset and section name of the damage
//!   ([`SnapshotError`](prelude::SnapshotError)), and a malformed file of
//!   any shape — truncated anywhere, any single bit flipped, absurd length
//!   prefixes — is rejected with `Err`, never a panic or an OOM.
//! * **Long runs auto-checkpoint and crash-recover.** The
//!   [`Checkpoint`](prelude::Checkpoint) observer snapshots a running
//!   engine every `k` rounds into a rotation of files, and
//!   [`Checkpoint::scan`](prelude::Checkpoint) finds the newest rotation
//!   slot that still decodes cleanly — corrupt slots are reported and
//!   skipped ([`RecoveryScan`](prelude::RecoveryScan)). On the CLI,
//!   `experiments run-recoverable <name> --rounds N` resumes from that
//!   checkpoint automatically; a run that crashes, recovers and finishes
//!   is bit-identical to one that never crashed (the CI fault-injection
//!   leg diffs the traces every push).
//! * **Faults themselves are deterministic.** A
//!   [`FaultPlan`](prelude::FaultPlan) schedules job panics, worker stalls
//!   and snapshot corruption as a pure function of `(fault_seed, domain,
//!   key)`, so every fault-tolerance property above is pinned by
//!   reproducible proptests (`tests/fault_tolerance.rs`) rather than by
//!   flaky chaos.
//!
//! # Determinism contract & how it's enforced
//!
//! Every trajectory is a pure function of `(seed, RunSpec)`: the agent
//! stream is keyed by `(seed, round, slot)` and the matching stream by
//! `(match_key, round)`, so serial and sharded runs are bit-identical and
//! any round can be replayed in isolation. Golden fixtures under
//! `tests/golden/` pin both streams byte-for-byte; bumping
//! `AGENT_STREAM_VERSION` or `MATCHING_STREAM_VERSION` is a coordinated
//! event (constant + fixtures + README table + `BENCH_engine.json`
//! together). Snapshots extend the contract across process boundaries:
//! every snapshot embeds the stream versions it was captured under (plus
//! `SNAPSHOT_FORMAT_VERSION` for the byte layout itself), and restore
//! refuses a file from a different stream scheme.
//!
//! The contract is enforced *statically* by `popstab-lint`
//! (`cargo run -p popstab-lint`, a CI gate). The lint lexes every
//! workspace source file into code/comment channels, parses the code
//! channel into items (`fn`s, `use`/`type` aliases), links an approximate
//! workspace-wide call graph filtered by the manifests' dependency
//! closure, and checks nine rules over it. The table below is generated
//! from the rule registry (`cargo run -p popstab-lint -- --rules-md`) and
//! a docs-drift test asserts this copy matches it:
//!
//! | rule | guards against |
//! |------|----------------|
//! | `taint-ambient-nondeterminism` | clock / env / OS-RNG / hash-order reads reachable from result-affecting fns, traced through the call graph and `use`/`type` aliases |
//! | `forbid-unordered-iteration` | `HashMap`/`HashSet` (per-process `RandomState` iteration order) anywhere in a result-affecting crate |
//! | `float-order-determinism` | order-sensitive `f64` reductions (`sum`, `fold`) outside the order-fixed `ordered_sum` helper in result/statistics crates |
//! | `sendptr-bounds` | `SendPtr`/`ColPtr` crossing a pool dispatch or deref'd in a helper without `shard_range`-derived disjoint indices |
//! | `unsafe-needs-safety-comment` | `unsafe` blocks, fns, or impls without an adjacent `// SAFETY:` soundness argument |
//! | `simd-scalar-twin` | lane-batched `_x8` kernels without a same-file scalar twin and lane-for-lane equivalence test |
//! | `stream-version-coherence` | partial stream bumps — version constants, golden-fixture tables, and `BENCH_engine.json` disagreeing |
//! | `workspace-manifest-invariants` | workspace crates missing the per-package dev/test `opt-level` overrides that keep `cargo test` fast |
//! | `unused-allow` | `lint:allow` escapes that no longer suppress any finding (stale exceptions rot into holes) |
//!
//! A finding is suppressed with a justified escape on, or in the comment
//! block directly above, the offending line:
//!
//! ```text
//! // lint:allow(taint-ambient-nondeterminism): worker-count knob only —
//! // results are worker-count-invariant by the determinism contract.
//! std::env::var("POPSTAB_JOBS")
//! ```
//!
//! (`lint:allow-file(<rule>): <justification>` within the first 20 lines
//! suppresses a rule for a whole file.) The justification is mandatory and
//! must be at least 15 characters — an argument, not a rubber stamp;
//! unjustified, unknown-rule, or no-longer-needed escapes are themselves
//! findings. CI consumes the machine-readable report
//! (`popstab-lint --format json`, schema asserted like
//! `BENCH_engine.json`); `--format github` emits inline PR annotations.

pub use popstab_adversary as adversary;
pub use popstab_analysis as analysis;
pub use popstab_baselines as baselines;
pub use popstab_core as core;
pub use popstab_extensions as extensions;
pub use popstab_sim as sim;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use popstab_analysis::equilibrium::equilibrium_population;
    pub use popstab_analysis::estimator::VarianceEstimator;
    pub use popstab_analysis::invariants::InvariantReport;
    pub use popstab_analysis::stats::Summary;
    pub use popstab_core::params::Params;
    pub use popstab_core::protocol::PopulationStability;
    pub use popstab_core::state::{AgentState, Color};
    pub use popstab_sim::{
        Action, Adversary, Alteration, BatchReport, BatchRunner, Checkpoint, Engine, FaultPlan,
        ForkBranch, HaltReason, JobFailure, JobOutcome, MatchingModel, MetricsRecorder, Observable,
        Observation, Observer, OnRound, Protocol, RecordStats, RecoveryScan, RetryPolicy,
        RoundContext, RunOutcome, RunSpec, Scenario, ShardPanic, SimConfig, SimRng, Snapshot,
        SnapshotError, SnapshotState, Stride, Tee, Threads, Trajectory, SNAPSHOT_FORMAT_VERSION,
    };
}
