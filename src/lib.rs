//! # population-stability
//!
//! Facade crate for the reproduction of *Population Stability: Regulating
//! Size in the Presence of an Adversary* (Goldwasser, Ostrovsky, Scafuro,
//! Sealfon — PODC 2018).
//!
//! This crate re-exports the whole workspace so downstream users can depend
//! on a single crate:
//!
//! * [`sim`] — the synchronous population-model substrate (rounds, random
//!   matchings, split/die semantics, adversary interface, metrics),
//! * [`core`] — the paper's protocol (Algorithms 1–7): coloring epochs,
//!   three-bit messages, `polylog(N)` states,
//! * [`adversary`] — the attack library (leader snipers, color flooders,
//!   round desynchronizers, churn, trauma events, …),
//! * [`baselines`] — the strawman protocols the paper discusses (Attempt 1,
//!   Attempt 2, the empty protocol, the high-memory unique-ID protocol),
//! * [`analysis`] — statistics, concentration bounds, invariant checkers for
//!   the paper's lemmas, the finite-size equilibrium models and the
//!   variance-based population estimator,
//! * [`extensions`] — the §1.2 extended model in which agents can remove
//!   maliciously-programmed partners they detect.
//!
//! # Quickstart
//!
//! ```
//! use population_stability::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's protocol with target N = 1024 agents.
//! let params = Params::for_target(1024)?;
//! let protocol = PopulationStability::new(params.clone());
//! let cfg = SimConfig::builder().seed(7).target(1024).build()?;
//! let mut engine = Engine::with_population(protocol, cfg, 1024);
//!
//! // Run three epochs and check the population stayed near the finite-size
//! // equilibrium m* = N − 8√N.
//! engine.run_rounds(3 * u64::from(params.epoch_len()));
//! let m_star = equilibrium_population(&params);
//! let pop = engine.population() as f64;
//! assert!((pop - m_star).abs() < 0.5 * m_star);
//! # Ok(())
//! # }
//! ```

pub use popstab_adversary as adversary;
pub use popstab_analysis as analysis;
pub use popstab_baselines as baselines;
pub use popstab_core as core;
pub use popstab_extensions as extensions;
pub use popstab_sim as sim;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use popstab_analysis::equilibrium::equilibrium_population;
    pub use popstab_analysis::estimator::VarianceEstimator;
    pub use popstab_analysis::invariants::InvariantReport;
    pub use popstab_analysis::stats::Summary;
    pub use popstab_core::params::Params;
    pub use popstab_core::protocol::PopulationStability;
    pub use popstab_core::state::{AgentState, Color};
    pub use popstab_sim::{
        Action, Adversary, Alteration, BatchRunner, Engine, HaltReason, MatchingModel, Observable,
        Observation, Protocol, RoundContext, SimConfig, SimRng, Trajectory,
    };
}
