//! Integration: the recruitment machinery builds exactly the structure the
//! analysis relies on (Lemmas 4, 5, 6).

use std::collections::HashMap;

use population_stability::prelude::*;
use population_stability::sim::RunSpec;

const N: u64 = 4096;

fn run_to_pre_eval(seed: u64) -> Engine<PopulationStability> {
    let params = Params::for_target(N).unwrap();
    let epoch = u64::from(params.epoch_len());
    let cfg = SimConfig::builder().seed(seed).target(N).build().unwrap();
    let mut engine = Engine::with_population(PopulationStability::new(params), cfg, N as usize);
    engine.run(RunSpec::rounds(epoch - 1), &mut ());
    engine
}

#[test]
fn every_cluster_has_exactly_sqrt_n_members() {
    let engine = run_to_pre_eval(42);
    let sqrt_n = engine.protocol().params().cluster_size();
    let mut clusters: HashMap<u64, u64> = HashMap::new();
    for a in engine.agents() {
        if a.active {
            *clusters.entry(a.lineage).or_insert(0) += 1;
        }
    }
    assert!(clusters.len() >= 3, "too few clusters to be meaningful");
    for (lineage, size) in clusters {
        assert_eq!(size, sqrt_n, "cluster {lineage}");
    }
}

#[test]
fn all_recruitment_quotas_are_exhausted() {
    // Lemma 5: every active agent enters evaluation with to_recruit = 0.
    let engine = run_to_pre_eval(43);
    for a in engine.agents() {
        if a.active {
            assert_eq!(
                a.to_recruit, 0,
                "agent in cluster {} still owes recruits",
                a.lineage
            );
        }
    }
}

#[test]
fn clusters_are_monochromatic() {
    let engine = run_to_pre_eval(44);
    let mut colors: HashMap<u64, Color> = HashMap::new();
    for a in engine.agents() {
        if a.active {
            let prev = colors.insert(a.lineage, a.color);
            if let Some(c) = prev {
                assert_eq!(c, a.color, "cluster {} mixes colors", a.lineage);
            }
        }
    }
}

#[test]
fn active_fraction_is_about_one_eighth() {
    // Leaders ≈ m/(8√N), clusters of √N ⇒ active ≈ m/8. The leader count
    // is Poisson(8) at N=4096, so allow wide but meaningful bounds across
    // several seeds.
    let mut total_active = 0usize;
    let mut total_pop = 0usize;
    for seed in 50..58u64 {
        let engine = run_to_pre_eval(seed);
        total_active += engine.agents().iter().filter(|a| a.active).count();
        total_pop += engine.population();
    }
    let frac = total_active as f64 / total_pop as f64;
    assert!(
        (0.07..0.19).contains(&frac),
        "active fraction {frac}, expected ≈ 1/8"
    );
}

#[test]
fn leaders_match_cluster_count() {
    let engine = run_to_pre_eval(45);
    let leaders = engine
        .agents()
        .iter()
        .filter(|a| a.is_leader && a.active)
        .count();
    let mut lineages: Vec<u64> = engine
        .agents()
        .iter()
        .filter(|a| a.active)
        .map(|a| a.lineage)
        .collect();
    lineages.sort_unstable();
    lineages.dedup();
    assert_eq!(leaders, lineages.len(), "one leader per cluster");
}

#[test]
fn epoch_boundary_resets_all_agents() {
    let params = Params::for_target(N).unwrap();
    let epoch = u64::from(params.epoch_len());
    let cfg = SimConfig::builder().seed(46).target(N).build().unwrap();
    let mut engine = Engine::with_population(PopulationStability::new(params), cfg, N as usize);
    engine.run(RunSpec::rounds(epoch), &mut ());
    for a in engine.agents() {
        assert!(
            !a.active && !a.recruiting && !a.is_leader,
            "agent not reset: {a:?}"
        );
        assert_eq!(a.round, 0);
    }
}
