//! Integration: the columnar (struct-of-arrays) step path is bit-identical
//! to the scalar `Protocol::step` loop on the paper's protocol.
//!
//! The columnar store keeps the population resident across rounds on the
//! fast path (`()`/`OnRound` observers, no-op adversary) and transposes
//! back on demand, so these properties drive every gating decision the
//! engine makes: long resident stretches, per-round materialization for a
//! recording observer, column reloads after adversarial churn, and
//! snapshot/restore through the columnar path — comparing per-round
//! reports, the **full agent state vector** (every field, every slot), the
//! halt state, and the encoded snapshot bytes across random
//! `(seed, rounds, workers)`. The golden fixtures pin the same trajectories
//! against history; this suite pins the two live paths against each other.

use proptest::prelude::*;

use population_stability::adversary::{Trauma, TraumaKind};
use population_stability::core::state::AgentState;
use population_stability::prelude::*;
use population_stability::sim::{
    MetricsRecorder, NoOpAdversary, OnRound, RecordStats, RoundReport, RunSpec, Threads,
};

const TARGET: u64 = 1024;

fn clean_engine(seed: u64) -> Engine<PopulationStability> {
    let params = Params::for_target(TARGET).unwrap();
    let cfg = SimConfig::builder()
        .seed(seed)
        .target(TARGET)
        .build()
        .unwrap();
    Engine::with_population(PopulationStability::new(params), cfg, TARGET as usize)
}

fn trauma_engine(seed: u64) -> Engine<PopulationStability, Trauma> {
    let params = Params::for_target(TARGET).unwrap();
    let epoch = u64::from(params.epoch_len());
    let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.4, epoch / 3);
    let cfg = SimConfig::builder()
        .seed(seed)
        .target(TARGET)
        .adversary_budget(usize::MAX)
        .build()
        .unwrap();
    Engine::with_adversary(PopulationStability::new(params), adv, cfg, TARGET as usize)
}

/// Runs `rounds` rounds and fingerprints everything observable afterwards:
/// the per-round report trace, the final agent vector, the round counter,
/// and the engine's snapshot bytes (label-free, so byte-comparable).
fn fingerprint<A>(
    mut engine: Engine<PopulationStability, A>,
    columnar: bool,
    rounds: u64,
    threads: Threads,
) -> (Vec<RoundReport>, Vec<AgentState>, u64, Vec<u8>)
where
    A: Adversary<AgentState>,
{
    engine.set_columnar(columnar);
    assert_eq!(engine.columnar_enabled(), columnar);
    let mut trace = Vec::new();
    engine.run(
        RunSpec::rounds(rounds).threads(threads),
        &mut OnRound(|r: &RoundReport| trace.push(*r)),
    );
    let bytes = engine.snapshot().to_bytes();
    (trace, engine.agents().to_vec(), engine.round(), bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clean runs: the resident fast path (an `OnRound` observer never
    /// needs the vector, so the columns stay loaded for the entire run)
    /// equals the scalar loop for every worker count.
    #[test]
    fn columnar_runs_bit_identical_to_scalar(
        seed in 0u64..1000,
        rounds in 1u64..1100,
        workers in 2usize..5,
    ) {
        for threads in [Threads::Serial, Threads::Sharded(workers)] {
            let scalar = fingerprint(clean_engine(seed), false, rounds, threads);
            let columnar = fingerprint(clean_engine(seed), true, rounds, threads);
            prop_assert_eq!(&scalar.0, &columnar.0, "report traces diverged");
            prop_assert_eq!(&scalar.1, &columnar.1, "agent vectors diverged");
            prop_assert_eq!(scalar.2, columnar.2);
            prop_assert_eq!(&scalar.3, &columnar.3, "snapshot bytes diverged");
        }
    }

    /// Adversarial runs: every round materializes the vector for the
    /// adversary and reloads the columns after its alterations, so the
    /// load/store transposes round-trip mid-run, not just at the edges.
    #[test]
    fn columnar_adversarial_runs_bit_identical_to_scalar(
        seed in 0u64..1000,
        rounds in 1u64..700,
        workers in 2usize..5,
    ) {
        for threads in [Threads::Serial, Threads::Sharded(workers)] {
            let scalar = fingerprint(trauma_engine(seed), false, rounds, threads);
            let columnar = fingerprint(trauma_engine(seed), true, rounds, threads);
            prop_assert_eq!(&scalar.0, &columnar.0, "report traces diverged");
            prop_assert_eq!(&scalar.1, &columnar.1, "agent vectors diverged");
            prop_assert_eq!(scalar.2, columnar.2);
            prop_assert_eq!(&scalar.3, &columnar.3, "snapshot bytes diverged");
        }
    }
}

/// A recording observer reads the agent slice after every round, forcing a
/// per-round materialize *without* invalidating the resident columns — the
/// stats and the trajectory must still match the scalar path exactly.
#[test]
fn columnar_recorded_stats_match_scalar() {
    let params = Params::for_target(TARGET).unwrap();
    let rounds = 2 * u64::from(params.epoch_len()) + 7;
    let run = |columnar: bool| {
        let mut engine = clean_engine(0xC01);
        engine.set_columnar(columnar);
        let mut rec = MetricsRecorder::new();
        engine.run(RunSpec::rounds(rounds), &mut RecordStats::new(&mut rec));
        (
            rec.rounds().to_vec(),
            engine.agents().to_vec(),
            engine.population(),
        )
    };
    assert_eq!(run(false), run(true));
}

/// Snapshot mid-run on the columnar path, restore, continue columnar: the
/// stitched trajectory equals both the uninterrupted columnar run and the
/// scalar run — format v2 passes through the columns unchanged.
#[test]
fn columnar_snapshot_resume_round_trips() {
    let params = Params::for_target(TARGET).unwrap();
    let epoch = u64::from(params.epoch_len());
    let (r, total) = (epoch / 2 + 3, epoch + 11);

    let scalar = fingerprint(clean_engine(7), false, total, Threads::Serial);
    let straight = fingerprint(clean_engine(7), true, total, Threads::Serial);
    assert_eq!(scalar.1, straight.1);
    assert_eq!(scalar.3, straight.3);

    let mut prefix = clean_engine(7);
    let mut sink = Vec::new();
    prefix.run(
        RunSpec::rounds(r),
        &mut OnRound(|rep: &RoundReport| sink.push(*rep)),
    );
    let snap = Snapshot::from_bytes(&prefix.snapshot().to_bytes()).expect("round-trip");
    let restored =
        Engine::restore(PopulationStability::new(params), NoOpAdversary, &snap).expect("restore");
    let tail = fingerprint(restored, true, total - r, Threads::Serial);
    assert_eq!(tail.1, straight.1, "resumed columnar agents diverged");
    assert_eq!(tail.2, straight.2);
    assert_eq!(tail.3, straight.3, "resumed snapshot bytes diverged");
}
