//! Integration: Algorithm 7 (`CheckRoundConsistency`) purges adversarially
//! desynchronized agents (Lemma 3).

use population_stability::adversary::{DesyncInserter, Throttle};
use population_stability::prelude::*;
use population_stability::sim::{MetricsRecorder, RecordStats, RunSpec};

/// Runs `rounds` rounds recording every round into a fresh recorder.
fn run_recorded<A: population_stability::sim::Adversary<AgentState>>(
    engine: &mut Engine<PopulationStability, A>,
    rounds: u64,
) -> MetricsRecorder {
    let mut rec = MetricsRecorder::new();
    engine.run(RunSpec::rounds(rounds), &mut RecordStats::new(&mut rec));
    rec
}

const N: u64 = 1024;

#[test]
fn desynced_agents_are_purged_and_bounded() {
    let params = Params::for_target(N).unwrap();
    let epoch = u64::from(params.epoch_len());
    let k = 4; // per-epoch insertions
    let adv = Throttle::per_epoch(
        DesyncInserter::new(params.clone(), k, epoch as u32 / 2),
        params.epoch_len(),
    );
    let cfg = SimConfig::builder()
        .seed(9)
        .target(N)
        .adversary_budget(k)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        adv,
        cfg,
        N as usize,
    );
    let rec = run_recorded(&mut engine, 12 * epoch);

    // Lemma 3 (scale-adjusted): survivors bounded by the purge residue plus
    // one epoch's insertions — slack·((1+γ⁻¹)N^{1/4} + k).
    let bound = 4.0 * (2.0 * (N as f64).powf(0.25) + k as f64);
    let max_wrong = rec.max_wrong_round() as f64;
    assert!(
        max_wrong <= bound,
        "wrong-round agents peaked at {max_wrong} > {bound}"
    );

    // And the population still held.
    let (lo, hi) = rec.population_range().unwrap();
    assert!(lo > N as usize / 2, "fell to {lo}");
    assert!(hi < 2 * N as usize, "rose to {hi}");
}

#[test]
fn continuous_desync_insertion_saturates_at_one_epochs_volume() {
    // With k per ROUND (the regime beyond the paper's assumption), the
    // desynced cohort must still saturate at Θ(k·T) — one epoch's worth —
    // rather than compounding: each honest evaluation boundary purges the
    // backlog. This pins the purge *mechanism* even where the paper's
    // numeric bound is out of reach.
    let params = Params::for_target(N).unwrap();
    let epoch = u64::from(params.epoch_len());
    let k = 1usize;
    let adv = DesyncInserter::new(params.clone(), k, epoch as u32 / 2);
    let cfg = SimConfig::builder()
        .seed(9)
        .target(N)
        .adversary_budget(k)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        adv,
        cfg,
        N as usize,
    );
    let rec = run_recorded(&mut engine, 12 * epoch);
    let cap = (2 * k as u64 * epoch) as usize; // 2× one epoch's insertions
    let max_wrong = rec.max_wrong_round();
    assert!(max_wrong <= cap, "cohort compounded: {max_wrong} > {cap}");
    // Compounding would also show as monotone growth of the cohort across
    // epochs; check the last epoch's peak is no bigger than 2× the first's.
    let peaks: Vec<usize> = (0..12u64)
        .map(|e| {
            rec.rounds()
                .iter()
                .filter(|s| s.round / epoch == e)
                .map(|s| s.wrong_round)
                .max()
                .unwrap_or(0)
        })
        .collect();
    assert!(
        peaks[11] <= 2 * peaks[1].max(k * 100),
        "cohort grows across epochs: {peaks:?}"
    );
}

#[test]
fn a_burst_of_desynced_agents_dies_out() {
    // Insert a large one-shot batch of desynced agents with no further
    // insertions; they must be eliminated (they meet honest agents at the
    // honest evaluation round boundary and self-destruct).
    let params = Params::for_target(N).unwrap();
    let epoch = u64::from(params.epoch_len());

    #[derive(Debug)]
    struct Burst {
        params: Params,
        done: bool,
    }
    impl Adversary<AgentState> for Burst {
        fn name(&self) -> &'static str {
            "burst"
        }
        fn act(
            &mut self,
            ctx: &RoundContext,
            _agents: &[AgentState],
            _rng: &mut SimRng,
        ) -> Vec<Alteration<AgentState>> {
            if self.done || ctx.round != 10 {
                return Vec::new();
            }
            self.done = true;
            // 100 agents whose clock is offset by half an epoch.
            let round = 10 + self.params.epoch_len() / 2;
            (0..100)
                .map(|_| {
                    Alteration::Insert(AgentState::desynced(
                        &self.params,
                        round % self.params.epoch_len(),
                    ))
                })
                .collect()
        }
    }

    let adv = Burst {
        params: params.clone(),
        done: false,
    };
    let cfg = SimConfig::builder()
        .seed(10)
        .target(N)
        .adversary_budget(1000)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        adv,
        cfg,
        N as usize,
    );
    let rec = run_recorded(&mut engine, 3 * epoch);

    // After three epochs every surviving agent should agree on the clock.
    let last = rec.last().unwrap();
    assert_eq!(
        last.wrong_round, 0,
        "desynced stragglers remain: {}",
        last.wrong_round
    );
}

#[test]
fn honest_casualties_of_the_purge_are_limited() {
    // The consistency check kills one honest agent per desynced agent at
    // most; with per-epoch metering the loss is ≤ 2k per epoch, within the
    // protocol's absorption capacity.
    let params = Params::for_target(N).unwrap();
    let epoch = u64::from(params.epoch_len());
    let k = 2;
    let adv = Throttle::per_epoch(
        DesyncInserter::new(params.clone(), k, 50),
        params.epoch_len(),
    );
    let cfg = SimConfig::builder()
        .seed(11)
        .target(N)
        .adversary_budget(k)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        adv,
        cfg,
        N as usize,
    );
    let rec = run_recorded(&mut engine, 10 * epoch);
    let (lo, _) = rec.population_range().unwrap();
    assert!(lo > (N as usize * 6) / 10, "fell to {lo}");
}
