//! Golden-trace differential tests for the engine.
//!
//! Each scenario runs a fixed-seed simulation and formats every per-round
//! [`RoundReport`] as one line; the concatenation must match the committed
//! fixture under `tests/golden/` **byte for byte**, so any change to the
//! round semantics, the RNG consumption order, or the matching sampler
//! shows up here as a diff. Every scenario is driven twice through the
//! unified driver — `Threads::Serial` and `Threads::Sharded(3)` — and both
//! trajectories must match the fixture, pinning the engine's determinism
//! contract alongside its semantics. The fixtures are pinned to the stream
//! versions `popstab_sim::rng::AGENT_STREAM_VERSION` and
//! `popstab_sim::matching::MATCHING_STREAM_VERSION`; see
//! `tests/golden/README.md` for the version history and the re-capture
//! protocol.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test engine_golden
//! ```
//!
//! and commit the updated fixtures together with an explanation.

use std::fmt::Write as _;
use std::path::PathBuf;

use population_stability::adversary::{Trauma, TraumaKind};
use population_stability::baselines::Attempt1;
use population_stability::prelude::*;
use population_stability::sim::protocols::Inert;
use population_stability::sim::{Adversary, OnRound, Protocol, RoundReport, RunSpec, Threads};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn format_trace(reports: &[RoundReport]) -> String {
    let mut out = String::with_capacity(reports.len() * 44);
    out.push_str("round pop_before pop_after inserted deleted modified matched splits deaths\n");
    for r in reports {
        writeln!(
            out,
            "{} {} {} {} {} {} {} {} {}",
            r.round,
            r.population_before,
            r.population_after,
            r.inserted,
            r.deleted,
            r.modified,
            r.matched,
            r.splits,
            r.deaths
        )
        .expect("write to string");
    }
    out
}

/// Compares `reports` against `tests/golden/<name>.txt`, or rewrites the
/// fixture when `GOLDEN_REGEN` is set.
fn check_golden(name: &str, reports: &[RoundReport]) {
    let path = golden_dir().join(format!("{name}.txt"));
    let actual = format_trace(reports);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; run with GOLDEN_REGEN=1",
            path.display()
        )
    });
    if expected != actual {
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| {
                format!(
                    "first differing line {}:\n  expected: {}\n  actual:   {}",
                    i,
                    expected.lines().nth(i).unwrap_or("<missing>"),
                    actual.lines().nth(i).unwrap_or("<missing>")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: expected {}, actual {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!("golden trace `{name}` diverged from the pre-refactor engine\n{first_diff}");
    }
}

fn collect_rounds<P, A>(
    engine: &mut Engine<P, A>,
    rounds: u64,
    threads: Threads,
) -> Vec<RoundReport>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    P::Message: Send,
    A: Adversary<P::State>,
{
    let mut reports = Vec::new();
    engine.run(
        RunSpec::rounds(rounds).threads(threads),
        &mut OnRound(|r: &RoundReport| reports.push(*r)),
    );
    reports
}

/// Runs the scenario built by `build` through the serial *and* the sharded
/// driver and requires both trajectories to match the fixture byte for
/// byte: the `RunSpec` thread configuration must never change a
/// simulation.
fn check_golden_all_specs<P, A>(name: &str, rounds: u64, build: impl Fn() -> Engine<P, A>)
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    P::Message: Send,
    A: Adversary<P::State>,
{
    check_golden(name, &collect_rounds(&mut build(), rounds, Threads::Serial));
    check_golden(
        name,
        &collect_rounds(&mut build(), rounds, Threads::Sharded(3)),
    );
}

#[test]
fn golden_inert_partial_matching() {
    check_golden_all_specs("inert_partial_matching", 64, || {
        let cfg = SimConfig::builder()
            .seed(0xA11CE)
            .matching(MatchingModel::RandomFraction { min_gamma: 0.4 })
            .build()
            .unwrap();
        Engine::with_population(Inert, cfg, 192)
    });
}

#[test]
fn golden_popstab_n1024() {
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    // One full epoch plus a few rounds of the next (crosses the epoch
    // boundary: leader selection, recruitment, evaluation all exercised).
    check_golden_all_specs("popstab_n1024", epoch + 17, || {
        let cfg = SimConfig::builder()
            .seed(0xB0B)
            .target(1024)
            .build()
            .unwrap();
        Engine::with_population(PopulationStability::new(params.clone()), cfg, 1024)
    });
}

#[test]
fn golden_attempt1_oblivious_deleter() {
    use population_stability::baselines::ObliviousDeleter;
    let proto = Attempt1::new(1024);
    let epoch = u64::from(proto.epoch_len());
    check_golden_all_specs("attempt1_oblivious_deleter", 2 * epoch, || {
        let cfg = SimConfig::builder()
            .seed(0xC0FFEE)
            .adversary_budget(2)
            .target(1024)
            .max_population(16 * 1024)
            .build()
            .unwrap();
        Engine::with_adversary(
            proto.clone(),
            ObliviousDeleter::with_period(2, 3),
            cfg,
            1024,
        )
    });
}

#[test]
fn golden_popstab_trauma_adversary() {
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    check_golden_all_specs("popstab_trauma_adversary", epoch + 11, || {
        let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.5, epoch / 2);
        let cfg = SimConfig::builder()
            .seed(0xDEAD)
            .target(1024)
            .adversary_budget(usize::MAX)
            .build()
            .unwrap();
        Engine::with_adversary(PopulationStability::new(params.clone()), adv, cfg, 1024)
    });
}
