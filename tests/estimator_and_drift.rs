//! Integration: the variance estimator (§1.3.2) and the restoring drift
//! (Lemma 8) measured end-to-end.
//!
//! Predictions use the **exact** finite-`N` Poisson model
//! (`popstab_analysis::equilibrium::exact_epoch_drift`): at simulable `N`
//! the leader count per epoch is single-digit and the CLT/linear model is
//! off by whole agents per epoch. The exact equilibrium at `N = 1024` is
//! ≈ 600 (vs the asymptotic `m* = 768`).
//!
//! The suite is sharded into per-scenario `#[test]`s so the libtest harness
//! parallelizes across scenarios, and every trial loop inside a scenario
//! runs through [`BatchRunner`] (via `measure_drift` or directly), so the
//! runner parallelizes within one. Results are worker-count-independent by
//! the batch determinism contract.

use population_stability::analysis::drift::{drift_field, measure_drift};
use population_stability::analysis::equilibrium::{exact_epoch_drift, exact_equilibrium};
use population_stability::prelude::*;
use population_stability::sim::{BatchRunner, MetricsRecorder, RecordStats, RunSpec, Stride};

#[test]
fn drift_field_is_monotone_restoring() {
    // Sample far from the exact equilibrium where |E[Δ]| dominates noise:
    // at 0.4·m* the model drift is only ≈ +0.7/epoch (per-trial σ ≈ 4.6),
    // so a sign assertion there needs hundreds of trials; at 0.3·m* and
    // 1.7·m* the drift is ≈ +1.0 / −3.2 and 96 trials give a ≥ 2.4σ margin.
    let params = Params::for_target(1024).unwrap();
    let points = drift_field(&params, &[0.3, 1.0, 1.7], 1.0, 96, 2024);
    assert_eq!(points.len(), 3);
    assert!(
        points[0].observed.mean() > 0.0,
        "drift at 0.3·m*: {}",
        points[0].observed.mean()
    );
    assert!(
        points[2].observed.mean() < 0.0,
        "drift at 1.7·m*: {}",
        points[2].observed.mean()
    );
    assert!(
        points[0].observed.mean() > points[2].observed.mean(),
        "restoring force not decreasing: {:?}",
        points.iter().map(|p| p.observed.mean()).collect::<Vec<_>>()
    );
}

/// Shared body of the `observed_drift_tracks_exact_model_*` shards: checks
/// the exact Poisson model at one starting population.
fn check_drift_tracks_model(frac_of_n: f64, trials: u32, seed: u64) {
    let params = Params::for_target(1024).unwrap();
    let m0 = (frac_of_n * 1024.0) as usize;
    let observed = measure_drift(&params, m0, 1.0, trials, seed);
    let predicted = exact_epoch_drift(&params, m0 as f64, 1.0);
    let tolerance = 4.0 * observed.stderr() + 0.5;
    assert!(
        (observed.mean() - predicted).abs() <= tolerance,
        "m0={m0}: observed {} vs predicted {predicted} (tolerance {tolerance})",
        observed.mean()
    );
}

#[test]
fn observed_drift_tracks_exact_model_below_equilibrium() {
    check_drift_tracks_model(0.3, 48, 31);
}

#[test]
fn observed_drift_tracks_exact_model_near_equilibrium() {
    check_drift_tracks_model(0.75, 48, 32);
}

#[test]
fn observed_drift_tracks_exact_model_above_equilibrium() {
    check_drift_tracks_model(1.5, 48, 33);
}

#[test]
fn drift_scales_with_n() {
    // The restoring force far below equilibrium grows with N (the paper's
    // Ω(√N) at Θ(N) deviations, with finite-N constants). Compare the
    // measured drift at 0.3·N across two sizes.
    let p1 = Params::for_target(1024).unwrap();
    let p2 = Params::for_target(4096).unwrap();
    let d1 = measure_drift(&p1, 307, 1.0, 96, 7);
    let d2 = measure_drift(&p2, 1228, 1.0, 96, 8);
    assert!(
        d1.mean() > 0.0 && d2.mean() > 0.0,
        "drifts must be positive: {} {}",
        d1.mean(),
        d2.mean()
    );
    let pred1 = exact_epoch_drift(&p1, 307.0, 1.0);
    let pred2 = exact_epoch_drift(&p2, 1228.0, 1.0);
    assert!(pred2 > 1.5 * pred1, "model sanity: {pred1} -> {pred2}");
    assert!(
        d2.mean() > d1.mean(),
        "drift failed to grow with N: {} -> {}",
        d1.mean(),
        d2.mean()
    );
}

#[test]
fn exact_equilibrium_matches_long_run_fixed_point() {
    // Run 200 epochs from the exact equilibrium; the time-average should
    // stay near it (within the wide OU wander of this small system). An
    // epoch-end `Stride` observer records exactly one sample per epoch.
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    let m_eq = exact_equilibrium(&params, 1.0);
    let cfg = SimConfig::builder().seed(17).target(1024).build().unwrap();
    let mut engine =
        Engine::with_population(PopulationStability::new(params.clone()), cfg, m_eq as usize);
    let mut rec = MetricsRecorder::new();
    engine.run(
        RunSpec::epochs(200, epoch),
        &mut Stride::new(epoch, RecordStats::new(&mut rec)),
    );
    let pops = rec.trajectory().population_series();
    assert_eq!(pops.len(), 200);
    let mean = pops.iter().sum::<usize>() as f64 / pops.len() as f64;
    assert!(
        (mean - m_eq).abs() < 0.35 * m_eq,
        "time-average {mean} far from exact equilibrium {m_eq}"
    );
}

#[test]
fn variance_estimator_tracks_population_changes() {
    // Run two systems of very different sizes as one batch; the estimator
    // must order them correctly and land within a factor 2.5 of each.
    // Each run records on the evaluation-round stride (`RecordStats` with
    // every = epoch, phase = eval round) — the recording-light path that
    // captures exactly the snapshots `push_trace` harvests.
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    let estimates = BatchRunner::from_env().run(vec![(700usize, 5u64), (1500, 6)], |_, job| {
        let (pop0, seed) = job;
        let cfg = SimConfig::builder()
            .seed(seed)
            .target(1024)
            .build()
            .unwrap();
        let mut engine =
            Engine::with_population(PopulationStability::new(params.clone()), cfg, pop0);
        let mut rec = MetricsRecorder::new();
        engine.run(
            RunSpec::rounds(50 * epoch),
            &mut RecordStats::stride(&mut rec, epoch, epoch - 1),
        );
        let mut est = VarianceEstimator::new(&params);
        est.push_trace(&params, rec.rounds());
        (est.estimate().unwrap(), engine.population())
    });
    let (m_small, final_small) = estimates[0];
    let (m_large, final_large) = estimates[1];
    assert!(
        m_small < m_large,
        "estimator ordered sizes wrongly: {m_small} vs {m_large}"
    );
    assert!(
        m_small > final_small as f64 / 2.5 && m_small < final_small as f64 * 2.5,
        "small estimate {m_small} vs final {final_small}"
    );
    assert!(
        m_large > final_large as f64 / 2.5 && m_large < final_large as f64 * 2.5,
        "large estimate {m_large} vs final {final_large}"
    );
}

#[test]
fn eval_round_stride_records_exactly_the_estimator_samples() {
    // The offset stride must be a pure filter of full recording: an engine
    // recording every round and an engine recording only on the
    // (epoch, eval-round) stride produce identical evaluation snapshots —
    // and therefore identical estimates — at a fraction of the recording
    // cost.
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    let eval = params.eval_round();
    let run = |strided: bool| {
        let cfg = SimConfig::builder().seed(41).target(1024).build().unwrap();
        let mut engine =
            Engine::with_population(PopulationStability::new(params.clone()), cfg, 1024);
        let mut rec = MetricsRecorder::new();
        let mut obs = if strided {
            RecordStats::stride(&mut rec, epoch, epoch - 1)
        } else {
            RecordStats::new(&mut rec)
        };
        engine.run(RunSpec::rounds(20 * epoch), &mut obs);
        drop(obs);
        rec.rounds().to_vec()
    };
    let full = run(false);
    let strided = run(true);
    assert_eq!(strided.len(), 20, "one record per epoch");
    let eval_only: Vec<_> = full
        .iter()
        .filter(|s| s.majority_round == Some(eval) && s.active > 0)
        .copied()
        .collect();
    assert_eq!(
        strided
            .iter()
            .filter(|s| s.majority_round == Some(eval) && s.active > 0)
            .copied()
            .collect::<Vec<_>>(),
        eval_only,
        "stride is not a filter of full recording"
    );
    let estimate = |stats: &[population_stability::sim::RoundStats]| {
        let mut est = VarianceEstimator::new(&params);
        est.push_trace(&params, stats);
        est.estimate()
    };
    assert_eq!(estimate(&full), estimate(&strided));
}

#[test]
fn trauma_recovery_moves_toward_equilibrium() {
    // Lose 70% of the population at N = 4096 (down to ~1230, far below the
    // exact equilibrium ≈ 2900) and check it recovers at a rate consistent
    // with the exact drift (≈ 3.5/epoch there). Two seeds beat the
    // per-trajectory noise (sd ≈ √epochs·10 ≈ 100) comfortably: the model
    // gain over 100 epochs is ≈ 300. Seeds run as one batch on the
    // recording-free fast path (only final populations matter here).
    use population_stability::adversary::{Trauma, TraumaKind};
    let params = Params::for_target(4096).unwrap();
    let epoch = u64::from(params.epoch_len());
    let m_eq = exact_equilibrium(&params, 1.0);
    let seeds: Vec<u64> = vec![0, 1];
    let outcomes = BatchRunner::from_env().run(seeds, |_, seed| {
        let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.7, 2 * epoch);
        let cfg = SimConfig::builder()
            .seed(seed)
            .target(4096)
            .adversary_budget(usize::MAX)
            .build()
            .unwrap();
        let mut engine =
            Engine::with_adversary(PopulationStability::new(params.clone()), adv, cfg, 4096);
        engine.run(RunSpec::rounds(2 * epoch + 1), &mut ());
        let wounded = engine.population() as f64;
        engine.run(RunSpec::rounds(100 * epoch), &mut ());
        (wounded, engine.population() as f64)
    });
    let seeds_run = outcomes.len() as f64;
    for &(wounded, _) in &outcomes {
        assert!(
            wounded < 0.6 * m_eq,
            "trauma did not wound: {wounded} vs m_eq {m_eq}"
        );
    }
    let mean_wounded = outcomes.iter().map(|o| o.0).sum::<f64>() / seeds_run;
    let mean_healed = outcomes.iter().map(|o| o.1).sum::<f64>() / seeds_run;
    let rate = exact_epoch_drift(&params, mean_wounded, 1.0);
    assert!(rate > 2.0, "model sanity: rate {rate}");
    assert!(
        mean_healed > mean_wounded + 100.0,
        "no recovery: {mean_wounded} -> {mean_healed} (model rate {rate}/epoch)"
    );
    assert!(
        mean_healed < 1.3 * m_eq,
        "overshoot: {mean_healed} vs m_eq {m_eq}"
    );
}
