//! Facade-level properties of the fault-tolerance layer (PR 8):
//!
//! * a run that crashes, recovers from the newest valid checkpoint and
//!   finishes is bit-identical to a run that never crashed, for random
//!   `(seed, rounds, crash point, checkpoint cadence, workers)` — serial
//!   and sharded alike,
//! * a batch sweep with deterministically injected job panics
//!   ([`FaultPlan`]) retried by [`BatchRunner::run_faulty`] returns the
//!   exact bytes of a fault-free sweep,
//! * persistently failing jobs are quarantined without perturbing the
//!   rest of the batch,
//! * malformed snapshot bytes — truncated at every boundary, any single
//!   bit flipped, foreign format versions — always decode to `Err`,
//!   never a panic,
//! * recovery scans skip corrupted checkpoints and fall back to the
//!   newest one that still verifies.
//!
//! As in `snapshot_resume.rs`, the protocol is defined against the public
//! facade surface, exactly as a downstream crate would.

use std::path::{Path, PathBuf};
use std::sync::Once;

use proptest::prelude::*;

use population_stability::prelude::*;
use population_stability::sim::batch::job_seed;
use population_stability::sim::snapshot::{write_u64, write_u8, SnapshotReader};
use population_stability::sim::RoundReport;

/// Seed-dependent splits/deaths plus a per-agent payload the byte format
/// must round-trip exactly (see `snapshot_resume.rs`).
#[derive(Debug, Clone)]
struct Drift;

#[derive(Debug, Clone, PartialEq)]
struct DriftState {
    age: u64,
    lineage: u8,
}

impl Observable for DriftState {
    fn observe(&self) -> Observation {
        Observation::default()
    }
}

impl Protocol for Drift {
    type State = DriftState;
    type Message = ();
    fn initial_state(&self, _rng: &mut SimRng) -> DriftState {
        DriftState { age: 0, lineage: 0 }
    }
    fn message(&self, _s: &DriftState) {}
    fn step(&self, s: &mut DriftState, m: Option<&()>, rng: &mut SimRng) -> Action {
        use rand::Rng;
        s.age += 1;
        if m.is_some() {
            match rng.random_range(0..10u8) {
                0 => {
                    s.lineage = s.lineage.wrapping_add(1);
                    Action::Split
                }
                1 => Action::Die,
                _ => Action::Continue,
            }
        } else {
            Action::Continue
        }
    }
}

impl SnapshotState for DriftState {
    fn state_tag() -> String {
        "fault-drift-test".to_string()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        write_u64(out, self.age);
        write_u8(out, self.lineage);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DriftState {
            age: r.u64()?,
            lineage: r.u8()?,
        })
    }
}

/// Deletes/inserts within budget off the *sequential* adversary stream,
/// so a correct recovery also has to reposition that stream exactly.
struct Chaos;

impl Adversary<DriftState> for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn act(
        &mut self,
        ctx: &RoundContext,
        agents: &[DriftState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<DriftState>> {
        use rand::Rng;
        (0..ctx.budget)
            .map(|_| {
                if rng.random::<bool>() && !agents.is_empty() {
                    Alteration::Delete(rng.random_range(0..agents.len()))
                } else {
                    Alteration::Insert(DriftState {
                        age: 0,
                        lineage: u8::MAX,
                    })
                }
            })
            .collect()
    }
}

fn engine(seed: u64, start: usize, budget: usize) -> Engine<Drift, Chaos> {
    let cfg = SimConfig::builder()
        .seed(seed)
        .adversary_budget(budget)
        .matching(MatchingModel::RandomFraction { min_gamma: 0.4 })
        .build()
        .unwrap();
    Engine::with_adversary(Drift, Chaos, cfg, start)
}

fn trace(engine: &mut Engine<Drift, Chaos>, rounds: u64, threads: Threads) -> Vec<RoundReport> {
    let mut out = Vec::new();
    engine.run(
        RunSpec::rounds(rounds).threads(threads),
        &mut OnRound(|r: &RoundReport| out.push(*r)),
    );
    out
}

/// A checkpoint rotation base unique to one test case, under the
/// cargo-managed scratch dir (a compile-time path: no ambient env reads).
fn tmp_base(label: &str) -> PathBuf {
    Path::new(env!("CARGO_TARGET_TMPDIR")).join(label)
}

/// Removes every rotation slot so a re-run never scans stale files.
fn clean_slots(base: &Path, keep: usize) {
    for slot in 0..keep {
        let _ = std::fs::remove_file(Checkpoint::slot_path(base, slot));
    }
}

/// Silences the default panic printout for *scheduled* faults (their
/// messages carry the `FaultPlan` prefix); anything else still reports —
/// a real bug must not hide behind the injection machinery.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.starts_with("injected fault:") || m.contains("always fails"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// A small trajectory digest for batch jobs: the full report sequence, so
/// any perturbation anywhere shows up as inequality.
fn small_sim(seed: u64) -> (Vec<RoundReport>, usize) {
    let mut engine = engine(seed, 16, 1);
    let reports = trace(&mut engine, 8, Threads::Serial);
    (reports, engine.population())
}

proptest! {
    /// The headline invariant: crash mid-run, recover from the newest
    /// valid checkpoint, finish — the stitched trajectory equals the
    /// uninterrupted one report-for-report, under both drivers.
    #[test]
    fn crash_recovery_is_bit_identical(
        seed in 0u64..200,
        start in 8usize..80,
        r in 4u64..14,
        every in 1u64..6,
        crash_sel in 0u64..1000,
        workers in 2usize..5,
    ) {
        let total = 2 * r;
        let crash_at = 1 + crash_sel % (total - 1);
        for threads in [Threads::Serial, Threads::Sharded(workers)] {
            let sharded = matches!(threads, Threads::Sharded(_));
            let base = tmp_base(&format!(
                "ck-{seed}-{start}-{r}-{every}-{crash_at}-{workers}-{sharded}"
            ));
            clean_slots(&base, 3);

            let mut straight = engine(seed, start, 2);
            let full = trace(&mut straight, total, threads);

            // The doomed run: checkpoint every `every` rounds, then stop
            // cold after `crash_at` rounds — nothing after the last
            // checkpoint survives, exactly like a killed process.
            let mut doomed = engine(seed, start, 2);
            let mut ck = Checkpoint::every(every, &base).keep(3);
            doomed.run(
                RunSpec::rounds(crash_at).threads(threads),
                &mut Tee(&mut ck, ()),
            );
            prop_assert!(ck.errors().is_empty(), "checkpoint writes failed");

            // Recovery: newest valid checkpoint, or from scratch when the
            // crash predates the first checkpoint.
            let scan = Checkpoint::scan(&base, 3);
            prop_assert!(scan.skipped.is_empty(), "uncorrupted slots were skipped");
            let (mut resumed, from) = match scan.best {
                Some((_, snap)) => {
                    let from = snap.round();
                    let engine = Engine::restore(Drift, Chaos, &snap)
                        .expect("a checkpoint written by this run restores");
                    (engine, from)
                }
                None => (engine(seed, start, 2), 0),
            };
            let executed = full.len() as u64;
            if crash_at.min(executed) >= every {
                prop_assert!(from > 0, "a checkpoint was due before the crash");
            }
            let tail = trace(&mut resumed, total - from, threads);
            prop_assert_eq!(&tail[..], &full[from as usize..]);
            prop_assert_eq!(resumed.population(), straight.population());
            prop_assert_eq!(resumed.halted(), straight.halted());
            clean_slots(&base, 3);
        }
    }

    /// Injected job panics (deterministic subset, first attempts) are
    /// absorbed by the retry policy: the faulty sweep is clean and
    /// bit-identical to the fault-free one.
    #[test]
    fn injected_job_panics_do_not_perturb_batch_results(
        seed in 0u64..300,
        fault_seed in 0u64..300,
        njobs in 1usize..24,
        workers in 1usize..5,
    ) {
        quiet_injected_panics();
        let jobs: Vec<u64> = (0..njobs as u64).map(|i| job_seed(seed, i)).collect();
        let runner = BatchRunner::new(workers);
        let clean = runner.run(jobs.clone(), |_, job| small_sim(job));

        let plan = FaultPlan::new(fault_seed).panic_rate(0.4).panic_attempts(2);
        let report = runner.run_faulty(jobs, RetryPolicy::attempts(3), |i, attempt, job| {
            plan.maybe_panic(i, attempt);
            small_sim(*job)
        });
        prop_assert!(report.is_clean(), "retries within the policy must recover");
        prop_assert_eq!(report.into_results().unwrap(), clean);
    }
}

#[test]
fn persistent_failures_are_quarantined_without_collateral() {
    quiet_injected_panics();
    let jobs: Vec<u64> = (0..12).map(|i| job_seed(3, i)).collect();
    let runner = BatchRunner::new(3);
    let clean = runner.run(jobs.clone(), |_, job| small_sim(job));

    let report = runner.run_faulty(jobs, RetryPolicy::attempts(2), |i, _, job| {
        if i == 5 {
            panic!("job 5 always fails");
        }
        small_sim(*job)
    });
    assert!(!report.is_clean());
    let failures: Vec<_> = report.failures().cloned().collect();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, 5);
    assert_eq!(failures[0].attempts, 2);
    assert_eq!(failures[0].message, "job 5 always fails");
    // Every other job's outcome equals the clean sweep's, in order.
    for (i, outcome) in report.outcomes().iter().enumerate() {
        match outcome.as_ok() {
            Some(result) => assert_eq!(result, &clean[i], "job {i} perturbed"),
            None => assert_eq!(i, 5),
        }
    }
}

#[test]
fn malformed_snapshots_always_err_and_never_panic() {
    let mut prefix = engine(11, 24, 1);
    trace(&mut prefix, 6, Threads::Serial);
    let bytes = prefix.snapshot().to_bytes();

    // Truncation at every possible boundary.
    for cut in 0..bytes.len() {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
    // Every single-bit flip over the whole buffer.
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut dirty = bytes.clone();
            dirty[i] ^= 1 << bit;
            assert!(
                Snapshot::from_bytes(&dirty).is_err(),
                "bit flip at byte {i} bit {bit} was accepted"
            );
        }
    }
    // Foreign format versions report as such (the version field sits right
    // after the 8-byte magic, before the checksum is consulted).
    let mut foreign = bytes.clone();
    foreign[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&foreign),
        Err(SnapshotError::UnsupportedVersion { found: 99 })
    ));
    // Seeded corruption through the fault plan exercises the same paths.
    for key in 0..32u64 {
        let plan = FaultPlan::new(key);
        let mut dirty = bytes.clone();
        plan.corrupt(&mut dirty, key).unwrap();
        assert!(Snapshot::from_bytes(&dirty).is_err());
        let cut = plan.truncate_len(bytes.len(), key);
        assert!(Snapshot::from_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn recovery_scan_skips_corrupt_checkpoints_and_falls_back() {
    let base = tmp_base("fallback-scan");
    clean_slots(&base, 3);
    let mut e = engine(5, 40, 2);
    let mut ck = Checkpoint::every(5, &base).keep(3);
    e.run(RunSpec::rounds(17), &mut Tee(&mut ck, ()));
    assert_eq!(ck.written(), 3); // rounds 5, 10, 15

    let scan = Checkpoint::scan(&base, 3);
    assert!(scan.skipped.is_empty());
    let (newest, snap) = scan.best.expect("three checkpoints on disk");
    assert_eq!(snap.round(), 15);

    // Corrupt the newest checkpoint: the scan must report it and fall
    // back to round 10, which restores and matches the original engine's
    // history (bit-identical recovery is pinned by the proptest above).
    let mut dirty = std::fs::read(&newest).unwrap();
    FaultPlan::new(9).corrupt(&mut dirty, 0).unwrap();
    std::fs::write(&newest, &dirty).unwrap();

    let scan = Checkpoint::scan(&base, 3);
    assert_eq!(scan.skipped.len(), 1);
    assert_eq!(scan.skipped[0].0, newest);
    let (_, snap) = scan.best.expect("older checkpoints remain valid");
    assert_eq!(snap.round(), 10);
    let resumed = Engine::restore(Drift, Chaos, &snap).expect("fallback restores");
    assert_eq!(resumed.round(), 10);
    clean_slots(&base, 3);
}
