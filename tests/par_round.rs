//! Integration: intra-round parallel execution is bit-identical to the
//! serial engine on the paper's protocol.
//!
//! The property suite in `crates/sim` checks serial ≡ parallel on a
//! synthetic protocol; these tests check it end-to-end on
//! [`PopulationStability`] — leader coins, recruitment, evaluation splits,
//! adversarial churn — comparing the **full agent state vector** (every
//! field, every slot, via `AgentState: Eq`), the recorded metrics and the
//! per-round reports across worker counts. This is the same guarantee the
//! CI determinism step checks at the `experiments` level with
//! `--round-threads 1` vs `--round-threads 4`.

use population_stability::adversary::{Trauma, TraumaKind};
use population_stability::core::state::AgentState;
use population_stability::prelude::*;
use population_stability::sim::{
    MetricsRecorder, OnRound, RecordStats, RoundReport, RoundStats, RunSpec, Stride, Threads,
};

type Snapshot = (Vec<AgentState>, Vec<RoundStats>, u64, usize);

fn run_clean(workers: Option<usize>) -> Snapshot {
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    let cfg = SimConfig::builder()
        .seed(0xFEED)
        .target(1024)
        .build()
        .unwrap();
    let mut engine = Engine::with_population(PopulationStability::new(params), cfg, 1024);
    let rounds = 2 * epoch + 5;
    let threads = match workers {
        None => Threads::Serial,
        Some(w) => Threads::Sharded(w),
    };
    let mut rec = MetricsRecorder::new();
    engine.run(
        RunSpec::rounds(rounds).threads(threads),
        &mut Stride::new(epoch, RecordStats::new(&mut rec)),
    );
    (
        engine.agents().to_vec(),
        rec.rounds().to_vec(),
        engine.round(),
        engine.population(),
    )
}

#[test]
fn paper_protocol_par_rounds_bit_identical_across_worker_counts() {
    let serial = run_clean(None);
    for workers in [1usize, 2, 4] {
        let par = run_clean(Some(workers));
        assert_eq!(
            serial, par,
            "parallel run at {workers} workers diverged from serial"
        );
    }
}

#[test]
fn adversarial_par_fast_path_matches_serial_fast_path() {
    let params = Params::for_target(1024).unwrap();
    let epoch = u64::from(params.epoch_len());
    let run = |workers: Option<usize>| {
        let adv = Trauma::new(params.clone(), TraumaKind::Injury, 0.5, epoch / 2);
        let cfg = SimConfig::builder()
            .seed(0xD00D)
            .target(1024)
            .adversary_budget(usize::MAX)
            .build()
            .unwrap();
        let mut engine =
            Engine::with_adversary(PopulationStability::new(params.clone()), adv, cfg, 1024);
        let mut trace = Vec::new();
        let collect = |trace: &mut Vec<(u64, usize, usize, usize)>,
                       r: &population_stability::sim::RoundReport| {
            trace.push((r.round, r.population_after, r.splits, r.deaths));
            false
        };
        let threads = match workers {
            None => Threads::Serial,
            Some(w) => Threads::Sharded(w),
        };
        engine.run(
            RunSpec::until(epoch + 11, |r| collect(&mut trace, r)).threads(threads),
            &mut (),
        );
        (trace, engine.agents().to_vec(), engine.population())
    };
    let serial = run(None);
    for workers in [1usize, 3, 4] {
        assert_eq!(serial, run(Some(workers)), "{workers} workers diverged");
    }
}

#[test]
fn par_rounds_bit_identical_above_the_keyed_permutation_threshold() {
    // Populations ≥ 2¹⁶ take the sharded keyed-permutation matching branch
    // (the smaller suites above all run the inline keyed shuffle), so this
    // is the one end-to-end check that the *parallel matching* construction
    // merges bit-identically for every worker count.
    use population_stability::sim::protocols::Inert;
    let run = |workers: Option<usize>| {
        let cfg = SimConfig::builder()
            .seed(0xBEEF)
            .matching(MatchingModel::RandomFraction { min_gamma: 0.5 })
            .build()
            .unwrap();
        let mut engine = Engine::with_population(Inert, cfg, 70_000);
        let mut matched = Vec::new();
        let threads = match workers {
            None => Threads::Serial,
            Some(w) => Threads::Sharded(w),
        };
        engine.run(
            RunSpec::rounds(4).threads(threads),
            &mut OnRound(|r: &RoundReport| matched.push(r.matched)),
        );
        matched
    };
    let serial = run(None);
    assert!(
        serial.iter().all(|&m| m >= 35_000),
        "matching undershoots γ"
    );
    for workers in [1usize, 2, 4] {
        assert_eq!(serial, run(Some(workers)), "{workers} workers diverged");
    }
}

#[test]
fn single_sharded_round_equals_single_serial_round() {
    let params = Params::for_target(1024).unwrap();
    let mk = || {
        let cfg = SimConfig::builder().seed(9).target(1024).build().unwrap();
        Engine::with_population(PopulationStability::new(params.clone()), cfg, 1024)
    };
    let mut serial = mk();
    let mut par = mk();
    for _ in 0..5 {
        let a = serial.run(RunSpec::rounds(1), &mut ()).last;
        let b = par.run(RunSpec::rounds(1).sharded(4), &mut ()).last;
        assert_eq!(a, b);
        assert_eq!(serial.agents(), par.agents());
    }
}
