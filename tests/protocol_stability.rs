//! Integration: multi-epoch stability of the full protocol (Theorem 1),
//! with and without adversaries, across seeds.
//!
//! Budgets are metered **per epoch** (via `Throttle`): the paper's
//! per-round budget regime requires `K·T ≤ N^{1/4}/8`, unreachable at any
//! simulable `N` — see `popstab_adversary::throttle`. The protocol's
//! per-epoch absorption capacity is `γ(√N − 8)/8` (3 agents/epoch at
//! N = 1024), so per-epoch budgets of 1–2 are the strongest pressure the
//! theory predicts it survives indefinitely at this scale.
//!
//! Seed and adversary sweeps run as [`BatchRunner`] batches; population
//! bands are folded out of the per-round reports on the engine's
//! recording-free fast path wherever the full metrics trace is not needed.

use population_stability::adversary::{
    throttled_suite, ColorFlooder, Composite, DesyncInserter, LeaderSniper, Throttle,
};
use population_stability::prelude::*;
use population_stability::sim::{BatchRunner, MetricsRecorder, RecordStats, RunSpec};

const N: u64 = 1024;

fn params() -> Params {
    Params::for_target(N).unwrap()
}

#[test]
fn stable_without_adversary_across_seeds() {
    let params = params();
    let epoch = u64::from(params.epoch_len());
    let m_star = equilibrium_population(&params);
    let outcomes = BatchRunner::from_env().run((0..5u64).collect(), |_, seed| {
        let cfg = SimConfig::builder().seed(seed).target(N).build().unwrap();
        let mut engine =
            Engine::with_population(PopulationStability::new(params.clone()), cfg, N as usize);
        let range = engine
            .run(RunSpec::rounds(20 * epoch), &mut ())
            .population_range();
        (seed, engine.halted(), range)
    });
    for (seed, halted, (lo, hi)) in outcomes {
        assert_eq!(halted, None, "seed {seed} halted");
        assert!(lo as f64 >= 0.7 * m_star, "seed {seed}: fell to {lo}");
        assert!(
            hi as f64 <= 1.3 * m_star.max(N as f64),
            "seed {seed}: rose to {hi}"
        );
    }
}

#[test]
fn stable_under_every_suite_adversary_per_epoch_budget() {
    let params = params();
    let epoch = u64::from(params.epoch_len());
    let m_star = equilibrium_population(&params);
    let k = 2; // per-epoch alterations; absorption capacity is 3/epoch
    let suite_len = throttled_suite(&params, k).len();
    // One job per suite adversary; each job rebuilds the (deterministic)
    // suite locally, so the boxed adversaries never cross threads.
    let outcomes = BatchRunner::from_env().run((0..suite_len).collect(), |_, idx| {
        let adversary = throttled_suite(&params, k).swap_remove(idx);
        let name = adversary.name();
        let cfg = SimConfig::builder()
            .seed(77)
            .target(N)
            .adversary_budget(k)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(
            PopulationStability::new(params.clone()),
            adversary,
            cfg,
            N as usize,
        );
        let range = engine
            .run(RunSpec::rounds(15 * epoch), &mut ())
            .population_range();
        (name, engine.halted(), range)
    });
    for (name, halted, (lo, hi)) in outcomes {
        assert_eq!(halted, None, "{name} halted the run");
        // Under ±2/epoch forcing the shifted equilibria are 256·(3±2)
        // = 256 or 1280; over 15 epochs from N the trajectory stays well
        // inside [0.55·m*, 1.7·m*].
        assert!(lo as f64 >= 0.55 * m_star, "{name}: fell to {lo}");
        assert!(hi as f64 <= 1.7 * m_star, "{name}: rose to {hi}");
    }
}

#[test]
fn stable_under_combined_assault() {
    let params = params();
    let epoch = u64::from(params.epoch_len());
    let m_star = equilibrium_population(&params);
    let combo = Composite::new(
        "combined",
        vec![
            Box::new(Throttle::per_epoch(
                LeaderSniper::new(1, Some(Color::One)),
                params.epoch_len(),
            )),
            Box::new(Throttle::per_epoch(
                ColorFlooder::new(params.clone(), 1, Color::Zero),
                params.epoch_len(),
            )),
            Box::new(Throttle::per_epoch(
                DesyncInserter::new(params.clone(), 1, 13),
                params.epoch_len(),
            )),
        ],
    );
    let cfg = SimConfig::builder()
        .seed(3)
        .target(N)
        .adversary_budget(3)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        combo,
        cfg,
        N as usize,
    );
    let (lo, hi) = engine
        .run(RunSpec::rounds(15 * epoch), &mut ())
        .population_range();
    assert!(lo as f64 >= 0.55 * m_star, "fell to {lo}");
    assert!(hi as f64 <= 1.7 * m_star, "rose to {hi}");
}

#[test]
fn lemma_invariants_hold_under_attack() {
    use population_stability::analysis::invariants::check_invariants;
    let params = params();
    let epoch = u64::from(params.epoch_len());
    let k = 2;
    let suite_len = throttled_suite(&params, k).len();
    // Full metrics stay on here: the invariant checker consumes the trace.
    let reports = BatchRunner::from_env().run((0..suite_len).collect(), |_, idx| {
        let adversary = throttled_suite(&params, k).swap_remove(idx);
        let name = adversary.name();
        let cfg = SimConfig::builder()
            .seed(11)
            .target(N)
            .adversary_budget(k)
            .build()
            .unwrap();
        let mut engine = Engine::with_adversary(
            PopulationStability::new(params.clone()),
            adversary,
            cfg,
            N as usize,
        );
        let mut rec = MetricsRecorder::new();
        engine.run(RunSpec::rounds(10 * epoch), &mut RecordStats::new(&mut rec));
        (name, check_invariants(&params, 1.0, rec.rounds()))
    });
    for (name, report) in reports {
        assert!(
            report.lemma3_wrong_round.pass,
            "{name}: lemma 3 {:?}",
            report.lemma3_wrong_round
        );
        assert!(
            report.lemma4_active_fraction.pass,
            "{name}: lemma 4 {:?}",
            report.lemma4_active_fraction
        );
        assert!(
            report.lemma6_color_deviation.pass,
            "{name}: lemma 6 {:?}",
            report.lemma6_color_deviation
        );
        assert!(
            report.lemma7_epoch_deviation.pass,
            "{name}: lemma 7 {:?}",
            report.lemma7_epoch_deviation
        );
    }
}

#[test]
fn partial_matching_gamma_quarter_still_stable() {
    let params = params();
    let epoch = u64::from(params.epoch_len());
    let cfg = SimConfig::builder()
        .seed(5)
        .target(N)
        .matching(MatchingModel::ExactFraction(0.25))
        .build()
        .unwrap();
    let mut engine =
        Engine::with_population(PopulationStability::new(params.clone()), cfg, N as usize);
    let (lo, hi) = engine
        .run(RunSpec::rounds(20 * epoch), &mut ())
        .population_range();
    assert_eq!(engine.halted(), None);
    // γ = 1/4 quarters both drift and noise; recruitment still completes
    // because T_inner = log²N ≫ 1/γ·log N. Constants shift, so use a loose
    // band.
    assert!(lo > N as usize / 2, "fell to {lo}");
    assert!(hi < 2 * N as usize, "rose to {hi}");
}

#[test]
fn sustained_pressure_beyond_capacity_breaks_the_protocol() {
    // Negative control: the absorption ceiling γ(√N−8)/8 = 3/epoch is real.
    // A deleter taking 8/epoch (continuous, not throttled: 8 ≈ 3 + margin)
    // must drag the population below the band — stability is a property of
    // the budget regime, not an artifact of the tests.
    use population_stability::adversary::RandomDeleter;
    let params = params();
    let epoch = u64::from(params.epoch_len());
    let m_star = equilibrium_population(&params);
    let adv = Throttle::per_epoch(RandomDeleter::new(8), params.epoch_len());
    let cfg = SimConfig::builder()
        .seed(13)
        .target(N)
        .adversary_budget(8)
        .build()
        .unwrap();
    let mut engine = Engine::with_adversary(
        PopulationStability::new(params.clone()),
        adv,
        cfg,
        N as usize,
    );
    engine.run(RunSpec::rounds(80 * epoch), &mut ());
    assert!(
        (engine.population() as f64) < 0.55 * m_star,
        "population {} should have been dragged below the band by -8/epoch \
         (capacity is +3/epoch)",
        engine.population()
    );
}
