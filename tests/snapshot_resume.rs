//! Facade-level property tests for the checkpoint subsystem: for random
//! `(seed, R, workers)`, snapshotting at round `R`, round-tripping the
//! snapshot through its byte format, restoring into a fresh engine and
//! running on to `2R` must be bit-identical to the uninterrupted run —
//! under the serial and the sharded drivers alike — and the zero-salt
//! fork branch must replay the straight-line future.
//!
//! The protocol here is defined *in this test* against the public
//! `SnapshotState` surface, exactly as a downstream protocol crate would
//! implement it, so these properties also pin the trait's usability from
//! outside the workspace.

use proptest::prelude::*;

use population_stability::prelude::*;
use population_stability::sim::snapshot::{write_u64, write_u8, SnapshotReader};
use population_stability::sim::RoundReport;

/// Seed-dependent splits/deaths plus a per-agent payload (`age`,
/// `lineage`) the byte format must round-trip exactly: a state encoding
/// bug shows up as a trajectory divergence after resume.
#[derive(Debug, Clone)]
struct Drift;

#[derive(Debug, Clone, PartialEq)]
struct DriftState {
    age: u64,
    lineage: u8,
}

impl Observable for DriftState {
    fn observe(&self) -> Observation {
        Observation::default()
    }
}

impl Protocol for Drift {
    type State = DriftState;
    type Message = ();
    fn initial_state(&self, _rng: &mut SimRng) -> DriftState {
        DriftState { age: 0, lineage: 0 }
    }
    fn message(&self, _s: &DriftState) {}
    fn step(&self, s: &mut DriftState, m: Option<&()>, rng: &mut SimRng) -> Action {
        use rand::Rng;
        s.age += 1;
        if m.is_some() {
            match rng.random_range(0..10u8) {
                0 => {
                    s.lineage = s.lineage.wrapping_add(1);
                    Action::Split
                }
                1 => Action::Die,
                _ => Action::Continue,
            }
        } else {
            Action::Continue
        }
    }
}

impl SnapshotState for DriftState {
    fn state_tag() -> String {
        "facade-drift-test".to_string()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        write_u64(out, self.age);
        write_u8(out, self.lineage);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DriftState {
            age: r.u64()?,
            lineage: r.u8()?,
        })
    }
}

/// Deletes/inserts within budget off the *sequential* adversary stream,
/// so a correct resume also has to reposition that stream exactly.
struct Chaos;

impl Adversary<DriftState> for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn act(
        &mut self,
        ctx: &RoundContext,
        agents: &[DriftState],
        rng: &mut SimRng,
    ) -> Vec<Alteration<DriftState>> {
        use rand::Rng;
        (0..ctx.budget)
            .map(|_| {
                if rng.random::<bool>() && !agents.is_empty() {
                    Alteration::Delete(rng.random_range(0..agents.len()))
                } else {
                    Alteration::Insert(DriftState {
                        age: 0,
                        lineage: u8::MAX,
                    })
                }
            })
            .collect()
    }
}

fn engine(seed: u64, start: usize, budget: usize) -> Engine<Drift, Chaos> {
    let cfg = SimConfig::builder()
        .seed(seed)
        .adversary_budget(budget)
        .matching(MatchingModel::RandomFraction { min_gamma: 0.4 })
        .build()
        .unwrap();
    Engine::with_adversary(Drift, Chaos, cfg, start)
}

/// Runs `rounds` more rounds under `threads` and returns the full
/// per-round reports (every field — the comparisons below are exact).
fn trace(engine: &mut Engine<Drift, Chaos>, rounds: u64, threads: Threads) -> Vec<RoundReport> {
    let mut out = Vec::new();
    engine.run(
        RunSpec::rounds(rounds).threads(threads),
        &mut OnRound(|r: &RoundReport| out.push(*r)),
    );
    out
}

proptest! {
    /// The acceptance property: snapshot at `R`, byte round-trip, restore
    /// fresh, run on — the stitched trajectory equals the uninterrupted
    /// one report-for-report, serial and sharded. (Stitching, rather than
    /// tail-indexing, keeps the property well-formed when the adversary
    /// drives the run extinct before `R`.)
    #[test]
    fn resumed_runs_are_bit_identical_to_uninterrupted_ones(
        seed in 0u64..400,
        start in 2usize..120,
        r in 1u64..25,
        workers in 1usize..5,
    ) {
        for threads in [Threads::Serial, Threads::Sharded(workers)] {
            let mut straight = engine(seed, start, 2);
            let full = trace(&mut straight, 2 * r, threads);

            let mut prefix = engine(seed, start, 2);
            let pre = trace(&mut prefix, r, threads);
            let bytes = prefix.snapshot().to_bytes();
            let snap = Snapshot::from_bytes(&bytes).expect("snapshot bytes round-trip");
            prop_assert_eq!(snap.round(), prefix.round());
            prop_assert_eq!(snap.population(), prefix.population());

            let mut resumed =
                Engine::restore(Drift, Chaos, &snap).expect("a fresh snapshot restores");
            prop_assert_eq!(resumed.round(), prefix.round());
            prop_assert_eq!(resumed.population(), prefix.population());

            let tail = trace(&mut resumed, 2 * r - pre.len() as u64, threads);
            let mut stitched = pre.clone();
            stitched.extend(tail);
            prop_assert_eq!(stitched, full);
            prop_assert_eq!(resumed.population(), straight.population());
            prop_assert_eq!(resumed.halted(), straight.halted());
        }
    }

    /// `Snapshot::fork(0)` is the identity branch — same seed, same
    /// adversary stream position — so under the prefix adversary it
    /// replays the straight-line run; nonzero salts keep the captured
    /// state but decorrelate the branch seed.
    #[test]
    fn zero_salt_fork_replays_the_straight_line(
        seed in 0u64..300,
        start in 8usize..100,
        r in 1u64..20,
    ) {
        let mut straight = engine(seed, start, 1);
        let full = trace(&mut straight, 2 * r, Threads::Serial);

        let mut prefix = engine(seed, start, 1);
        let pre = trace(&mut prefix, r, Threads::Serial);
        let snap = prefix.snapshot();

        let identity = snap.fork(0);
        prop_assert_eq!(&identity, &snap);
        let mut branch = Engine::restore(Drift, Chaos, &identity).expect("identity fork restores");
        let tail = trace(&mut branch, 2 * r - pre.len() as u64, Threads::Serial);
        let mut stitched = pre.clone();
        stitched.extend(tail);
        prop_assert_eq!(stitched, full);

        let salted = snap.fork(1);
        prop_assert_eq!(salted.round(), snap.round());
        prop_assert_eq!(salted.population(), snap.population());
        prop_assert_ne!(salted.config().seed, snap.config().seed);
    }
}
