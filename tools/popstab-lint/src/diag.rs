//! Lint diagnostics.

use std::fmt;

/// One finding: a rule violation at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The rule that produced the finding.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; `line` is 1-based (pass 0 for whole-file).
    pub fn new(file: &str, line: usize, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}
